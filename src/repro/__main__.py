"""Allow ``python -m repro <experiment>`` as an alias for the ``pilote`` CLI."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
