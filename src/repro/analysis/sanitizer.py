"""Runtime race sanitizer for the concurrent serving stack.

The scheduler, its per-device :class:`~repro.fleet.router.DeviceStats` rows,
and the control plane's :class:`~repro.control.signals.SignalBus` are all
designed for a *single-writer* discipline: every mutation happens on the
thread driving the event loop (the caller of ``submit``/``drain``, or the
asyncio bridge's pump thread), while executor worker threads only ever hand
results back through queues and futures.  Nothing enforces that — a stray
mutation from a worker thread would be a data race that only shows up as a
corrupted ledger thousands of requests later.

This module makes the discipline observable: :class:`Sanitizer.attach` wraps
a live :class:`~repro.serving.ServingClient`'s mutable state in recording
proxies that log ``(thread_id, target, field, op)`` for every write and
assert the single-writer invariant — the first thread to write a target
becomes its owner; any later write from a different thread is a violation.
Ownership is per *target* (one stats row, the scheduler's method surface, the
signal bus), so handing the whole client from a main thread to a pump thread
before traffic starts is fine, while two threads interleaving writes to one
row is not.

Enabled via ``pilote chaos --sanitize`` or the ``REPRO_SANITIZE=1``
environment variable (picked up by the test-suite fixture), so the existing
chaos suite doubles as a race detector.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Deque, Dict, FrozenSet, Iterator, List, Optional

from repro.exceptions import SanitizerViolationError

__all__ = [
    "AccessRecord",
    "AccessLog",
    "RecordingProxy",
    "Sanitizer",
    "auto_sanitize",
    "sanitize_enabled",
]

#: Scheduler entry points that mutate lane/queue/stats state.  All of them
#: must be driven from one thread; the executor's worker threads never call
#: them (they communicate through futures and queues).
SCHEDULER_MUTATORS = (
    "submit",
    "submit_many",
    "submit_assigned",
    "drain",
    "fail_pending",
    "replace_device",
)

#: Methods that mutate a DeviceStats row beyond plain attribute assignment.
STATS_MUTATORS: FrozenSet[str] = frozenset({"note_deadline"})

#: SignalBus methods that mutate its rolling state.
BUS_MUTATORS: FrozenSet[str] = frozenset({"observe_submit", "tick"})


def sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` requests the sanitizer (1/true/yes)."""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in ("1", "true", "yes")


@dataclass(frozen=True)
class AccessRecord:
    """One observed access: which thread touched which field, and how."""

    thread_id: int
    thread_name: str
    target: str
    field: str
    op: str  # "write" | "call"

    def to_dict(self) -> dict:
        return {
            "thread_id": self.thread_id,
            "thread_name": self.thread_name,
            "target": self.target,
            "field": self.field,
            "op": self.op,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AccessRecord":
        return cls(
            thread_id=int(payload["thread_id"]),
            thread_name=payload["thread_name"],
            target=payload["target"],
            field=payload["field"],
            op=payload["op"],
        )


class AccessLog:
    """Thread-safe bounded log of writes plus single-writer bookkeeping.

    The log itself is the *observer*, so it synchronises internally; the
    invariant it checks is about the observed objects, which are meant to be
    mutated without any synchronisation by exactly one thread each.
    """

    def __init__(self, maxlen: int = 10_000) -> None:
        self._mutex = threading.Lock()
        self.records: Deque[AccessRecord] = deque(maxlen=maxlen)
        self.owners: Dict[str, AccessRecord] = {}
        self.violations: List[dict] = []

    def record(self, target: str, field: str, op: str) -> None:
        thread = threading.current_thread()
        entry = AccessRecord(
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            target=target,
            field=field,
            op=op,
        )
        with self._mutex:
            self.records.append(entry)
            owner = self.owners.setdefault(target, entry)
            if owner.thread_id != entry.thread_id:
                self.violations.append(
                    {
                        "target": target,
                        "field": field,
                        "op": op,
                        "owner_thread": f"{owner.thread_name}({owner.thread_id})",
                        "writer_thread": f"{entry.thread_name}({entry.thread_id})",
                    }
                )

    @property
    def write_count(self) -> int:
        with self._mutex:
            return len(self.records)


_PROXY_SLOTS = ("_san_target", "_san_label", "_san_log", "_san_mutators")


class RecordingProxy:
    """Transparent attribute-forwarding proxy that logs every write.

    ``proxy.field = x`` and ``proxy.field += x`` record a ``write``;
    calling a method listed in ``mutators`` records a ``call``.  Reads
    forward untouched, so report building and metrics never notice the
    proxy.
    """

    def __init__(self, target, label: str, log: AccessLog, mutators: FrozenSet[str] = frozenset()):
        object.__setattr__(self, "_san_target", target)
        object.__setattr__(self, "_san_label", label)
        object.__setattr__(self, "_san_log", log)
        object.__setattr__(self, "_san_mutators", mutators)

    def __getattr__(self, name: str):
        target = object.__getattribute__(self, "_san_target")
        value = getattr(target, name)
        if name in object.__getattribute__(self, "_san_mutators"):
            label = object.__getattribute__(self, "_san_label")
            log = object.__getattribute__(self, "_san_log")

            def recorded(*args, **kwargs):
                log.record(label, name, "call")
                return value(*args, **kwargs)

            return recorded
        return value

    def __setattr__(self, name: str, value) -> None:
        log = object.__getattribute__(self, "_san_log")
        label = object.__getattribute__(self, "_san_label")
        log.record(label, name, "write")
        setattr(object.__getattribute__(self, "_san_target"), name, value)

    def __repr__(self) -> str:
        return f"RecordingProxy({object.__getattribute__(self, '_san_target')!r})"


class _RecordingStatsDict(dict):
    """Scheduler ``_stats`` replacement: wraps rows in recording proxies.

    The scheduler lazily creates rows with ``setdefault`` during submit and
    drain; overriding the insert paths means every row is proxied no matter
    which code path created it.
    """

    def __init__(self, log: AccessLog, initial: Optional[dict] = None):
        super().__init__()
        self._san_log = log
        for key, value in (initial or {}).items():
            self[key] = value

    def _wrap(self, key, value):
        # Already reporting to this log (same sanitizer re-attaching): keep.
        # A proxy bound to a *different* log (a second sanitizer stacking on
        # the first) is wrapped again so both logs observe every write.
        if (
            isinstance(value, RecordingProxy)
            and object.__getattribute__(value, "_san_log") is self._san_log
        ):
            return value
        return RecordingProxy(
            value, f"stats[{key}]", self._san_log, mutators=STATS_MUTATORS
        )

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, self._wrap(key, value))

    def setdefault(self, key, default=None):
        if key in self:
            return self[key]
        self[key] = default
        return self[key]


class Sanitizer:
    """Attachable single-writer race detector for serving clients."""

    def __init__(self, maxlen: int = 10_000) -> None:
        self.log = AccessLog(maxlen=maxlen)
        self._seen_schedulers: set = set()

    # -- attachment --------------------------------------------------------
    def attach(self, client) -> "Sanitizer":
        """Instrument a :class:`~repro.serving.ServingClient` in place.

        Wraps the scheduler's per-device stats rows, its mutating entry
        points, and — when a control plane is attached — the signal bus.
        Safe to call on a client that already carries traffic; ownership is
        established by the *next* write to each target.
        """
        scheduler = client.scheduler
        self._instrument_scheduler(scheduler, label=getattr(client, "label", "fleet"))
        plane = getattr(client, "control", None)
        bus = getattr(plane, "bus", None)
        if bus is not None and not isinstance(bus, RecordingProxy):
            plane.bus = RecordingProxy(
                bus, f"bus[{client.label}]", self.log, mutators=BUS_MUTATORS
            )
        return self

    def _instrument_scheduler(self, scheduler, label: str) -> None:
        tag = f"scheduler[{label}]"
        # Idempotence is per scheduler *instance*: a restarted client reuses
        # the label but needs its fresh scheduler instrumented.
        if id(scheduler) in self._seen_schedulers:
            return
        self._seen_schedulers.add(id(scheduler))
        scheduler._stats = _RecordingStatsDict(self.log, scheduler._stats)
        for name in SCHEDULER_MUTATORS:
            original = getattr(scheduler, name, None)
            if original is None:
                continue
            setattr(scheduler, name, self._recorded_call(tag, name, original))

    def _recorded_call(self, target: str, field: str, bound: Callable) -> Callable:
        log = self.log

        def recorded(*args, **kwargs):
            log.record(target, field, "call")
            return bound(*args, **kwargs)

        recorded.__name__ = getattr(bound, "__name__", field)
        return recorded

    # -- results -----------------------------------------------------------
    @property
    def violations(self) -> List[dict]:
        return list(self.log.violations)

    def report(self) -> dict:
        per_target: Dict[str, int] = {}
        for record in list(self.log.records):
            per_target[record.target] = per_target.get(record.target, 0) + 1
        return {
            "writes": self.log.write_count,
            "targets": dict(sorted(per_target.items())),
            "violations": list(self.log.violations),
            "clean": not self.log.violations,
        }

    def assert_clean(self) -> None:
        """Raise :class:`~repro.exceptions.SanitizerViolationError` if any
        cross-thread write was observed."""
        if not self.log.violations:
            return
        lines = [
            f"  {v['target']}.{v['field']} ({v['op']}) written by "
            f"{v['writer_thread']}, owned by {v['owner_thread']}"
            for v in self.log.violations
        ]
        raise SanitizerViolationError(
            f"{len(self.log.violations)} unsynchronized cross-thread write(s):\n"
            + "\n".join(lines)
        )


@contextmanager
def auto_sanitize() -> Iterator[Sanitizer]:
    """Attach one shared :class:`Sanitizer` to every client built inside.

    Patches ``ServingClient.__init__`` for the duration of the context so
    tests (the ``REPRO_SANITIZE=1`` fixture) and the chaos runner need no
    per-call plumbing.  The control-plane bus is instrumented lazily on
    ``attach_control`` since planes attach after construction.
    """
    from repro.serving.client import ServingClient

    sanitizer = Sanitizer()
    original_init = ServingClient.__init__
    original_attach = ServingClient.attach_control

    def init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        sanitizer.attach(self)

    def attach_control(self, plane):
        original_attach(self, plane)
        sanitizer.attach(self)

    ServingClient.__init__ = init
    ServingClient.attach_control = attach_control
    try:
        yield sanitizer
    finally:
        ServingClient.__init__ = original_init
        ServingClient.attach_control = original_attach
