"""AST-walking lint engine for the repro invariant linter.

The engine owns everything rule-agnostic: discovering ``*.py`` files under a
root, parsing each one exactly once, collecting ``# repro: noqa[...]``
suppressions from the token stream, dispatching AST nodes to the rules that
registered interest in their types, and rendering the resulting
:class:`Finding` records as text or JSON.  Rules themselves live in
:mod:`repro.analysis.rules` and are pure visitors — they never touch the
filesystem.

Suppression convention (mirrors flake8's ``noqa`` but namespaced so it can
never collide with other tools):

* a *trailing* comment ``# repro: noqa[rule-id]`` suppresses the listed rules
  on that physical line only;
* a comment on a line *of its own* suppresses the listed rules for the whole
  file;
* omitting the bracket (``# repro: noqa``) suppresses every rule;
* free text after the closing bracket is an (encouraged) human reason and is
  ignored by the parser: ``# repro: noqa[repro-errors] abstract method``.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import AnalysisError

__all__ = [
    "Finding",
    "FileContext",
    "LintEngine",
    "run_lint",
    "render_text",
    "render_json",
]

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([^\]]*)\])?", re.IGNORECASE)

# Sentinel rule-id meaning "all rules" in a suppression set.
_ALL = "*"


@dataclass(frozen=True)
class Finding:
    """One lint violation: a rule id anchored to ``path:line:col``."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict:
        return {
            "rule_id": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        return cls(
            rule_id=payload["rule_id"],
            path=payload["path"],
            line=int(payload["line"]),
            col=int(payload["col"]),
            message=payload["message"],
        )

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


def _parse_noqa_sets(comment: str) -> Optional[Set[str]]:
    """Return the set of suppressed rule ids in ``comment`` (or ``None``)."""
    match = _NOQA_RE.search(comment)
    if match is None:
        return None
    ids = match.group(1)
    if ids is None or not ids.strip():
        return {_ALL}
    return {part.strip() for part in ids.split(",") if part.strip()}


@dataclass
class FileContext:
    """Everything the engine knows about one parsed source file."""

    path: Path
    rel_path: str
    source: str
    tree: ast.AST
    # line number -> suppressed rule ids for that line; line 0 = whole file.
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        for scope in (0, line):
            ids = self.suppressions.get(scope)
            if ids is not None and (_ALL in ids or rule_id in ids):
                return True
        return False


def _collect_suppressions(source: str) -> Dict[int, Set[str]]:
    """Scan the token stream for ``# repro: noqa`` comments.

    A comment token that is the first non-whitespace content on its line is a
    file-level suppression (line 0); anything trailing code is line-level.
    """
    suppressions: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            ids = _parse_noqa_sets(token.string)
            if ids is None:
                continue
            line_text = token.line[: token.start[1]]
            scope = 0 if not line_text.strip() else token.start[0]
            suppressions.setdefault(scope, set()).update(ids)
    except tokenize.TokenError:
        # Unterminated string/bracket: ast.parse will report the real error.
        pass
    return suppressions


class LintEngine:
    """Run a set of rules over a source tree and collect findings.

    Parameters
    ----------
    rules:
        Rule instances (see :class:`repro.analysis.rules.Rule`).  Defaults to
        one instance of every registered rule.
    select:
        Optional iterable of rule ids restricting the run; unknown ids raise
        :class:`~repro.exceptions.AnalysisError` so typos fail loudly.
    """

    def __init__(self, rules: Optional[Sequence] = None, select: Optional[Iterable[str]] = None):
        if rules is None:
            from repro.analysis.rules import default_rules

            rules = default_rules()
        if select is not None:
            wanted = set(select)
            known = {rule.rule_id for rule in rules}
            unknown = wanted - known
            if unknown:
                raise AnalysisError(
                    f"unknown rule id(s): {sorted(unknown)}; known: {sorted(known)}"
                )
            rules = [rule for rule in rules if rule.rule_id in wanted]
        self.rules = list(rules)

    # -- discovery ---------------------------------------------------------
    @staticmethod
    def discover(root: Path) -> List[Path]:
        root = Path(root)
        if root.is_file():
            return [root]
        if not root.exists():
            raise AnalysisError(f"lint root does not exist: {root}")
        return sorted(root.rglob("*.py"))

    # -- per-file pipeline -------------------------------------------------
    def _parse(self, path: Path, root: Path) -> Tuple[Optional[FileContext], List[Finding]]:
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            return None, [Finding("repro-parse", rel, 0, 0, f"unreadable source: {error}")]
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            return None, [
                Finding(
                    "repro-parse",
                    rel,
                    error.lineno or 0,
                    error.offset or 0,
                    f"syntax error: {error.msg}",
                )
            ]
        context = FileContext(
            path=path,
            rel_path=rel,
            source=source,
            tree=tree,
            suppressions=_collect_suppressions(source),
        )
        return context, []

    def run(self, root: Path) -> List[Finding]:
        root = Path(root)
        files = self.discover(root)
        lint_root = root if root.is_dir() else root.parent
        findings: List[Finding] = []
        contexts: List[FileContext] = []
        for path in files:
            context, errors = self._parse(path, lint_root)
            findings.extend(errors)
            if context is None:
                continue
            contexts.append(context)
            findings.extend(self._run_file(context))
        # Project-level rules (e.g. registry completeness) see every file.
        for rule in self.rules:
            for finding in rule.finish(contexts):
                source = next(
                    (c for c in contexts if c.rel_path == finding.path), None
                )
                if source is not None and source.is_suppressed(finding.rule_id, finding.line):
                    continue
                findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return findings

    def _run_file(self, context: FileContext) -> List[Finding]:
        active = [rule for rule in self.rules if rule.applies_to(context.rel_path)]
        if not active:
            return []
        for rule in active:
            rule.begin_file(context)
        # Single walk; dispatch each node to the rules that want its type.
        dispatch: List[Tuple[object, tuple]] = [
            (rule, rule.visits) for rule in active if rule.visits
        ]
        findings: List[Finding] = []
        if dispatch:
            for node in ast.walk(context.tree):
                for rule, node_types in dispatch:
                    if isinstance(node, node_types):
                        findings.extend(rule.visit(node, context))
        for rule in active:
            findings.extend(rule.end_file(context))
        return [
            finding
            for finding in findings
            if not context.is_suppressed(finding.rule_id, finding.line)
        ]


def run_lint(root: Path, select: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint ``root`` with the default (or ``select``-ed) rule set."""
    return LintEngine(select=select).run(root)


# -- reporters ------------------------------------------------------------
def render_text(findings: Sequence[Finding]) -> str:
    if not findings:
        return "lint: clean (0 findings)"
    lines = [str(finding) for finding in findings]
    lines.append(f"lint: {len(findings)} finding(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    payload = {
        "version": 1,
        "count": len(findings),
        "by_rule": dict(sorted(by_rule.items())),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
