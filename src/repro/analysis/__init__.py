"""Correctness tooling for the repro serving stack.

Two layers:

* **Static linter** — :mod:`repro.analysis.engine` (AST walking, suppression
  handling, reporters) + :mod:`repro.analysis.rules` (the declarative rule
  registry).  Run via ``pilote lint`` or :func:`run_lint`.
* **Runtime sanitizer** — :mod:`repro.analysis.sanitizer` wraps scheduler,
  stats and signal-bus state in recording proxies and asserts single-writer
  invariants while the chaos suite runs (``pilote chaos --sanitize``,
  ``REPRO_SANITIZE=1``).
"""

from repro.analysis.engine import (
    FileContext,
    Finding,
    LintEngine,
    render_json,
    render_text,
    run_lint,
)
from repro.analysis.rules import RULES, Rule, default_rules, list_rules, make_rule, register_rule
from repro.analysis.sanitizer import (
    AccessLog,
    AccessRecord,
    RecordingProxy,
    Sanitizer,
    auto_sanitize,
    sanitize_enabled,
)

__all__ = [
    "Finding",
    "FileContext",
    "LintEngine",
    "run_lint",
    "render_text",
    "render_json",
    "Rule",
    "RULES",
    "register_rule",
    "make_rule",
    "default_rules",
    "list_rules",
    "AccessLog",
    "AccessRecord",
    "RecordingProxy",
    "Sanitizer",
    "auto_sanitize",
    "sanitize_enabled",
]
