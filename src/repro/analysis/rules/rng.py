"""R1 ``repro-rng``: all randomness flows through the seeded RNG seam.

Flags calls on the ``np.random`` / ``numpy.random`` module (including
``np.random.default_rng`` — seeded or not, it bypasses
:func:`repro.utils.rng.resolve_rng` and its global-seed hook), calls on the
stdlib ``random`` module, and calls of names imported *from* either module.
``utils/rng.py`` is the whitelisted seam.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.engine import FileContext, Finding
from repro.analysis.rules import Rule, register_rule

__all__ = ["RngRule"]


def _dotted(node: ast.AST) -> List[str]:
    """``a.b.c`` attribute chain as ``["a", "b", "c"]`` (empty if not one)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


@register_rule
class RngRule(Rule):
    rule_id = "repro-rng"
    description = (
        "no raw np.random.*/random.* calls outside utils/rng.py; "
        "use repro.utils.rng.resolve_rng"
    )
    whitelist = ("*utils/rng.py",)
    visits = (ast.Import, ast.ImportFrom, ast.Call)

    def begin_file(self, context: FileContext) -> None:
        # Names the stdlib `random` module is bound to in this file, and
        # names imported *from* random / numpy.random.
        self._random_aliases: Set[str] = set()
        self._tainted_names: Set[str] = set()

    def visit(self, node, context: FileContext) -> List[Finding]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    self._random_aliases.add(alias.asname or alias.name)
            return []
        if isinstance(node, ast.ImportFrom):
            if node.module in ("random", "numpy.random", "np.random"):
                for alias in node.names:
                    self._tainted_names.add(alias.asname or alias.name)
            return []

        chain = _dotted(node.func)
        if not chain:
            return []
        # np.random.<fn>(...) / numpy.random.<fn>(...)
        if len(chain) >= 3 and chain[0] in ("np", "numpy") and chain[1] == "random":
            return [
                self.finding(
                    node,
                    context,
                    f"call to {'.'.join(chain)} bypasses the seeded RNG seam; "
                    "use repro.utils.rng.resolve_rng",
                )
            ]
        # random.<fn>(...) on the stdlib module (only if this file imported it)
        if len(chain) >= 2 and chain[0] in self._random_aliases:
            return [
                self.finding(
                    node,
                    context,
                    f"call to {'.'.join(chain)} uses the global stdlib RNG; "
                    "use repro.utils.rng.resolve_rng",
                )
            ]
        # default_rng(...) etc. imported directly from random/numpy.random
        if len(chain) == 1 and chain[0] in self._tainted_names:
            return [
                self.finding(
                    node,
                    context,
                    f"call to {chain[0]} (imported from a random module) bypasses "
                    "the seeded RNG seam; use repro.utils.rng.resolve_rng",
                )
            ]
        return []
