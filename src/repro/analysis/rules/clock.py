"""R2 ``repro-clock``: no wall-clock reads in simulated-clock modules.

The scheduler's per-lane ``available_at`` timeline, the fleet's modeled
device-seconds, and the control plane's windows all run on *simulated*
clocks; a stray ``time.time()`` silently mixes wall time into a simulated
quantity.  Code that legitimately measures elapsed wall time goes through the
single seam :func:`repro.utils.clock.perf_seconds` (the whitelist), which is
patchable in tests.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.engine import FileContext, Finding
from repro.analysis.rules import Rule, register_rule
from repro.analysis.rules.rng import _dotted

__all__ = ["ClockRule"]

_TIME_FUNCS = frozenset(
    {"time", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
)
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})


@register_rule
class ClockRule(Rule):
    rule_id = "repro-clock"
    description = (
        "no time.time/monotonic/perf_counter or datetime.now in "
        "simulated-clock modules; use repro.utils.clock.perf_seconds"
    )
    scope = (
        "*serving/*",
        "*fleet/*",
        "*control/*",
        "*server/*",
        "*edge/profiler.py",
        "*nn/trainer.py",
    )
    whitelist = ("*utils/clock.py",)
    visits = (ast.ImportFrom, ast.Call)

    def begin_file(self, context: FileContext) -> None:
        self._tainted_names: Set[str] = set()

    def visit(self, node, context: FileContext) -> List[Finding]:
        if isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for alias in node.names:
                    if alias.name in _TIME_FUNCS:
                        self._tainted_names.add(alias.asname or alias.name)
            return []

        chain = _dotted(node.func)
        if not chain:
            return []
        # time.<fn>() — root must be exactly `time` so loop.time() is fine.
        if len(chain) == 2 and chain[0] == "time" and chain[1] in _TIME_FUNCS:
            return [self._flag(node, context, ".".join(chain))]
        # datetime.datetime.now() / datetime.now() / date.today()
        if (
            len(chain) >= 2
            and chain[-1] in _DATETIME_FUNCS
            and chain[0] in ("datetime", "date")
        ):
            return [self._flag(node, context, ".".join(chain))]
        # perf_counter() imported directly from time
        if len(chain) == 1 and chain[0] in self._tainted_names:
            return [self._flag(node, context, chain[0])]
        return []

    def _flag(self, node: ast.Call, context: FileContext, name: str) -> Finding:
        return self.finding(
            node,
            context,
            f"wall-clock call {name}() in a simulated-clock module; "
            "use repro.utils.clock.perf_seconds",
        )
