"""R5 ``repro-lock-callback``: no user callbacks fired under a held lock.

Invoking a user-supplied callback (``add_done_callback`` targets, controller
``after_submit``/``after_drain`` hooks) while holding a lock hands the
callback a chance to re-enter the serving API and deadlock on the same lock —
the class of bug the scheduler and asyncio bridge dodged by careful design.
This rule flags any call whose name looks like a user-callback invocation
lexically inside a ``with <lock>:`` (or ``async with``) block, where the
context manager's terminal identifier contains ``lock``/``mutex`` or is a
``threading.Lock``/``RLock``/``Condition``/``Semaphore`` constructor call.
"""

from __future__ import annotations

import ast
import re
from typing import List

from repro.analysis.engine import FileContext, Finding
from repro.analysis.rules import Rule, register_rule
from repro.analysis.rules.rng import _dotted

__all__ = ["LockCallbackRule"]

_LOCKISH_NAME = re.compile(r"(lock|mutex)", re.IGNORECASE)
_LOCK_CTORS = frozenset({"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"})
_CALLBACK_NAME = re.compile(
    r"^(callbacks?|cb|hooks?|handler|add_done_callback|fire_callbacks?"
    r"|run_callbacks?|invoke_callbacks?|on_[a-z0-9_]+"
    r"|after_[a-z0-9_]+|before_[a-z0-9_]+)$"
)


def _is_lockish(expr: ast.expr) -> bool:
    """Does this with-item context expression look like a lock acquisition?"""
    # with self._lock: / with lock: / with state.mutex:
    if isinstance(expr, ast.Call):
        chain = _dotted(expr.func)
        if chain and chain[-1] in _LOCK_CTORS:
            return True
        # with self._lock.acquire_timeout(...):  — recurse into the callee root
        if chain and any(_LOCKISH_NAME.search(part) for part in chain):
            return True
        return False
    chain = _dotted(expr)
    return bool(chain) and bool(_LOCKISH_NAME.search(chain[-1]))


@register_rule
class LockCallbackRule(Rule):
    rule_id = "repro-lock-callback"
    description = (
        "no user-callback invocation (add_done_callback targets, controller "
        "hooks) inside a `with <lock>:` block"
    )
    visits = (ast.With, ast.AsyncWith)

    def visit(self, node, context: FileContext) -> List[Finding]:
        if not any(_is_lockish(item.context_expr) for item in node.items):
            return []
        findings: List[Finding] = []
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Call):
                continue
            chain = _dotted(inner.func)
            if not chain:
                continue
            terminal = chain[-1]
            if _CALLBACK_NAME.match(terminal):
                findings.append(
                    self.finding(
                        inner,
                        context,
                        f"call to {terminal}(...) inside a `with lock:` block "
                        "can re-enter the API and deadlock; fire callbacks "
                        "after releasing the lock",
                    )
                )
        return findings
