"""Declarative rule registry for the repro invariant linter.

Mirrors the registry shape of :mod:`repro.backend.registry`: each rule is a
class with a stable ``rule_id``, registered in a module-level dict, looked up
by id through a factory that raises :class:`~repro.exceptions.AnalysisError`
for unknown names.  The engine (:mod:`repro.analysis.engine`) stays rule-
agnostic; adding a rule is "write the class, call :func:`register_rule`".

Shipped rules
-------------
``repro-rng``
    No raw ``np.random.*`` / ``random.*`` calls outside ``utils/rng.py`` —
    all randomness flows through the seeded :func:`~repro.utils.rng.resolve_rng`
    seam.
``repro-clock``
    No wall-clock reads (``time.time``/``monotonic``/``perf_counter``,
    ``datetime.now``) in simulated-clock modules; use
    :func:`repro.utils.clock.perf_seconds`.
``repro-errors``
    Every constructed ``raise`` in ``serving/``, ``server/``, ``control/``
    must be a :class:`~repro.exceptions.ServingError` (or
    :class:`~repro.exceptions.ConfigurationError`) subclass; bare ``except:``
    and silent ``except Exception: pass`` are banned.
``repro-registry``
    Concrete ``Executor``/``Controller``/``RoutingPolicy``/``RolloutPolicy``/
    ``Backend`` implementations must appear in their registry dict and their
    package ``__all__``.
``repro-lock-callback``
    No user-callback invocation inside a ``with <lock>:`` block — the
    deadlock class the scheduler/executor dodged by hand.
``repro-roundtrip``
    Public dataclasses with ``to_dict`` must define a field-complete
    ``from_dict``.
"""

from __future__ import annotations

import fnmatch
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.analysis.engine import FileContext, Finding
from repro.exceptions import AnalysisError

__all__ = [
    "Rule",
    "RULES",
    "register_rule",
    "make_rule",
    "default_rules",
    "list_rules",
]


class Rule:
    """Base class for lint rules.

    Subclasses set:

    ``rule_id``
        Stable kebab-case identifier used in reports, ``--select``, and
        ``# repro: noqa[...]`` suppressions.
    ``description``
        One-line summary shown by ``pilote lint --help`` style listings.
    ``scope``
        Optional tuple of :func:`fnmatch.fnmatch` patterns over the
        repo-relative posix path; ``None`` means every file.
    ``whitelist``
        Tuple of patterns naming files *exempt* from the rule (the sanctioned
        seam, e.g. ``utils/rng.py`` for ``repro-rng``).
    ``visits``
        Tuple of :mod:`ast` node types the rule wants dispatched to
        :meth:`visit`; empty means the rule only uses the file/project hooks.
    """

    rule_id: str = "abstract"
    description: str = ""
    scope: Optional[Tuple[str, ...]] = None
    whitelist: Tuple[str, ...] = ()
    visits: tuple = ()

    def applies_to(self, rel_path: str) -> bool:
        if any(fnmatch.fnmatch(rel_path, pattern) for pattern in self.whitelist):
            return False
        if self.scope is None:
            return True
        return any(fnmatch.fnmatch(rel_path, pattern) for pattern in self.scope)

    # -- hooks -------------------------------------------------------------
    def begin_file(self, context: FileContext) -> None:
        """Reset per-file state before the engine walks ``context.tree``."""

    def visit(self, node, context: FileContext) -> List[Finding]:
        """Inspect one dispatched AST node."""
        return []

    def end_file(self, context: FileContext) -> List[Finding]:
        """Emit findings that need the whole file (post-walk)."""
        return []

    def finish(self, contexts: Sequence[FileContext]) -> List[Finding]:
        """Emit project-level findings after every file was walked."""
        return []

    # -- helpers -----------------------------------------------------------
    def finding(self, node, context: FileContext, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=context.rel_path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


RULES: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``cls`` to the :data:`RULES` registry."""
    if cls.rule_id in RULES:
        raise AnalysisError(f"duplicate rule id: {cls.rule_id!r}")
    RULES[cls.rule_id] = cls
    return cls


def make_rule(rule_id: str) -> Rule:
    """Instantiate the registered rule ``rule_id``.

    Raises
    ------
    AnalysisError
        If ``rule_id`` is not registered.
    """
    try:
        cls = RULES[rule_id]
    except KeyError:
        raise AnalysisError(
            f"unknown rule id {rule_id!r}; registered: {sorted(RULES)}"
        ) from None
    return cls()


def default_rules() -> List[Rule]:
    """One fresh instance of every registered rule, in registration order."""
    return [cls() for cls in RULES.values()]


def list_rules() -> List[Tuple[str, str]]:
    """``(rule_id, description)`` pairs for every registered rule."""
    return [(rule_id, cls.description) for rule_id, cls in RULES.items()]


# Import rule modules for their registration side effects.
from repro.analysis.rules import rng as _rng  # noqa: E402,F401
from repro.analysis.rules import clock as _clock  # noqa: E402,F401
from repro.analysis.rules import errors as _errors  # noqa: E402,F401
from repro.analysis.rules import registries as _registries  # noqa: E402,F401
from repro.analysis.rules import locks as _locks  # noqa: E402,F401
from repro.analysis.rules import roundtrip as _roundtrip  # noqa: E402,F401
