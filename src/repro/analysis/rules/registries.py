"""R4 ``repro-registry``: concrete protocol implementations are registered.

The serving stack dispatches executors, controllers, routing/rollout policies,
backends and collective transports by name through module-level registry dicts
(``EXECUTORS``, ``CONTROLLERS``, ``ROUTING_POLICIES``, ``ROLLOUT_POLICIES``,
``BACKENDS``, ``COLLECTIVES``).
A concrete subclass that never lands in its registry is silently
un-dispatchable — the drift class this rule machine-checks.  A class counts
as *concrete* when it is public (no leading underscore) and declares a
class-level ``name = "..."`` other than ``"abstract"``; it must then appear

* as a value in its registry dict (literal entry or ``REGISTRY[...] = Cls``
  assignment), and
* in the ``__all__`` of an enclosing package ``__init__.py`` (checked only
  when such an ``__all__`` exists).

This is a project-level rule: it runs in :meth:`finish` over every parsed
file so the class, its registry, and its package export list may live in
different modules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import FileContext, Finding
from repro.analysis.rules import Rule, register_rule

__all__ = ["RegistryRule", "REGISTRY_SPECS"]

# base-class name -> registry dict variable name
REGISTRY_SPECS: Dict[str, str] = {
    "Executor": "EXECUTORS",
    "Controller": "CONTROLLERS",
    "RoutingPolicy": "ROUTING_POLICIES",
    "RolloutPolicy": "ROLLOUT_POLICIES",
    "Backend": "BACKENDS",
    "Collectives": "COLLECTIVES",
}


@dataclass
class _ClassInfo:
    name: str
    bases: Tuple[str, ...]
    has_concrete_name: bool
    context: FileContext
    node: ast.ClassDef


def _base_names(node: ast.ClassDef) -> Tuple[str, ...]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return tuple(names)


def _concrete_name_attr(node: ast.ClassDef) -> Optional[str]:
    """The class-level ``name = "..."`` string constant, if any."""
    for stmt in node.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "name":
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    return value.value
    return None


@register_rule
class RegistryRule(Rule):
    rule_id = "repro-registry"
    description = (
        "concrete Executor/Controller/RoutingPolicy/RolloutPolicy/Backend/"
        "Collectives classes must appear in their registry dict and "
        "package __all__"
    )
    visits = ()  # project-level: everything happens in finish()

    def finish(self, contexts: Sequence[FileContext]) -> List[Finding]:
        classes: List[_ClassInfo] = []
        registered: Dict[str, Set[str]] = {name: set() for name in REGISTRY_SPECS.values()}
        exports: Dict[str, Set[str]] = {}  # package dir (posix) -> __all__ strings

        for context in contexts:
            self._scan_file(context, classes, registered, exports)

        findings: List[Finding] = []
        # Resolve concrete implementations: direct textual subclassing plus an
        # iterative one-level-at-a-time closure for indirect subclasses.
        base_of: Dict[str, str] = {base: base for base in REGISTRY_SPECS}
        changed = True
        while changed:
            changed = False
            for info in classes:
                if info.name in base_of:
                    continue
                for parent in info.bases:
                    if parent in base_of:
                        base_of[info.name] = base_of[parent]
                        changed = True
                        break

        for info in classes:
            root = base_of.get(info.name)
            if root is None or info.name in REGISTRY_SPECS:
                continue
            if info.name.startswith("_") or not info.has_concrete_name:
                continue
            registry = REGISTRY_SPECS[root]
            if info.name not in registered[registry]:
                findings.append(
                    self.finding(
                        info.node,
                        info.context,
                        f"concrete {root} subclass {info.name} is missing from "
                        f"the {registry} registry",
                    )
                )
            exported = self._exported_anywhere(info, exports)
            if exported is False:
                findings.append(
                    self.finding(
                        info.node,
                        info.context,
                        f"concrete {root} subclass {info.name} is missing from "
                        "its package __all__",
                    )
                )
        return findings

    # -- per-file scan -----------------------------------------------------
    def _scan_file(
        self,
        context: FileContext,
        classes: List[_ClassInfo],
        registered: Dict[str, Set[str]],
        exports: Dict[str, Set[str]],
    ) -> None:
        registry_names = set(REGISTRY_SPECS.values())
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                concrete = _concrete_name_attr(node)
                classes.append(
                    _ClassInfo(
                        name=node.name,
                        bases=_base_names(node),
                        has_concrete_name=concrete is not None and concrete != "abstract",
                        context=context,
                        node=node,
                    )
                )
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                value = node.value
                for target in targets:
                    # EXECUTORS = {Cls.name: Cls, ...}
                    if (
                        isinstance(target, ast.Name)
                        and target.id in registry_names
                        and isinstance(value, ast.Dict)
                    ):
                        for entry in value.values:
                            if isinstance(entry, ast.Name):
                                registered[target.id].add(entry.id)
                    # EXECUTORS[...] = Cls
                    elif (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in registry_names
                        and isinstance(value, ast.Name)
                    ):
                        registered[target.value.id].add(value.id)
                    # __all__ = [...] in a package __init__.py
                    elif (
                        isinstance(target, ast.Name)
                        and target.id == "__all__"
                        and context.rel_path.endswith("__init__.py")
                        and isinstance(value, (ast.List, ast.Tuple))
                    ):
                        package = context.rel_path.rsplit("/", 1)[0] if "/" in context.rel_path else ""
                        bucket = exports.setdefault(package, set())
                        for element in value.elts:
                            if isinstance(element, ast.Constant) and isinstance(
                                element.value, str
                            ):
                                bucket.add(element.value)

    @staticmethod
    def _exported_anywhere(
        info: _ClassInfo, exports: Dict[str, Set[str]]
    ) -> Optional[bool]:
        """True/False if an ancestor package has ``__all__``; None if none do."""
        rel = info.context.rel_path
        parts = rel.split("/")[:-1]
        seen_any = False
        while True:
            package = "/".join(parts)
            if package in exports:
                seen_any = True
                if info.name in exports[package]:
                    return True
            if not parts:
                break
            parts = parts[:-1]
        return False if seen_any else None
