"""R6 ``repro-roundtrip``: ``to_dict`` dataclasses round-trip via ``from_dict``.

Public dataclasses that serialize themselves with ``to_dict`` (reports,
findings, chaos ledgers) feed JSON artifacts consumed by later sessions and
CI diffs; without a field-complete ``from_dict`` the round trip silently
drops fields the moment someone adds one.  The rule checks, per public
``@dataclass`` defining ``to_dict``:

* a ``from_dict`` (class- or static-method) exists, and
* every public field (annotated assignment, not ``ClassVar``, not declared
  ``field(..., repr=False)`` — the convention here for derived/bulky state
  excluded from serialization) appears as a string literal in *both* method
  bodies.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.engine import FileContext, Finding
from repro.analysis.rules import Rule, register_rule

__all__ = ["RoundTripRule"]


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _is_repr_false_field(value: Optional[ast.expr]) -> bool:
    """``field(..., repr=False)`` — excluded from serialization by convention."""
    if not isinstance(value, ast.Call):
        return False
    callee = value.func
    name = callee.attr if isinstance(callee, ast.Attribute) else getattr(callee, "id", "")
    if name != "field":
        return False
    for keyword in value.keywords:
        if (
            keyword.arg == "repr"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is False
        ):
            return True
    return False


def _annotation_is_classvar(annotation: ast.expr) -> bool:
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Name):
        return target.id == "ClassVar"
    if isinstance(target, ast.Attribute):
        return target.attr == "ClassVar"
    return False


def _string_literals(node: ast.AST) -> Set[str]:
    return {
        inner.value
        for inner in ast.walk(node)
        if isinstance(inner, ast.Constant) and isinstance(inner.value, str)
    }


@register_rule
class RoundTripRule(Rule):
    rule_id = "repro-roundtrip"
    description = (
        "public dataclasses with to_dict must define a field-complete "
        "from_dict (round-trip serialization)"
    )
    visits = (ast.ClassDef,)

    def visit(self, node, context: FileContext) -> List[Finding]:
        if node.name.startswith("_") or not _is_dataclass_decorated(node):
            return []
        methods = {
            stmt.name: stmt
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        to_dict = methods.get("to_dict")
        if to_dict is None:
            return []
        from_dict = methods.get("from_dict")
        if from_dict is None:
            return [
                self.finding(
                    node,
                    context,
                    f"dataclass {node.name} defines to_dict but no from_dict; "
                    "serialization must round-trip",
                )
            ]

        serialized_fields = [
            stmt.target.id
            for stmt in node.body
            if isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and not stmt.target.id.startswith("_")
            and not _annotation_is_classvar(stmt.annotation)
            and not _is_repr_false_field(stmt.value)
        ]
        findings: List[Finding] = []
        for method_name, method in (("to_dict", to_dict), ("from_dict", from_dict)):
            mentioned = _string_literals(method)
            missing = [name for name in serialized_fields if name not in mentioned]
            if missing:
                findings.append(
                    self.finding(
                        method,
                        context,
                        f"{node.name}.{method_name} does not mention field(s) "
                        f"{', '.join(missing)}; the round trip drops them",
                    )
                )
        return findings
