"""R3 ``repro-errors``: typed raises and no swallowed exceptions.

In ``serving/``, ``server/``, and ``control/`` every *constructed* raise
(``raise SomeError(...)``) must be a :class:`~repro.exceptions.ServingError`
subclass (or :class:`~repro.exceptions.ConfigurationError`, which several
factories legitimately raise for bad settings) so errors travel the wire and
the futures as typed frames.  Re-raises (``raise``, ``raise stored_error``)
are always allowed.  Bare ``except:`` and silent ``except Exception: pass``
are banned everywhere in scope — they are how double-fired callbacks and
dropped worker deaths hid in earlier PRs.

The allowed-name set is computed from :mod:`repro.exceptions` at import time,
so adding a new ``ServingError`` subclass never requires touching this rule.
"""

from __future__ import annotations

import ast
import inspect
from typing import FrozenSet, List

from repro import exceptions as _exceptions
from repro.analysis.engine import FileContext, Finding
from repro.analysis.rules import Rule, register_rule

__all__ = ["ErrorTaxonomyRule", "allowed_exception_names"]


def allowed_exception_names() -> FrozenSet[str]:
    """Names of exception classes a serving-stack ``raise`` may construct."""
    allowed = set()
    for name, obj in inspect.getmembers(_exceptions, inspect.isclass):
        if issubclass(obj, (_exceptions.ServingError, _exceptions.ConfigurationError)):
            allowed.add(name)
    return frozenset(allowed)


def _terminal_name(node: ast.AST) -> str:
    """``pkg.mod.Cls`` -> ``"Cls"``; bare name -> itself; else ``""``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


@register_rule
class ErrorTaxonomyRule(Rule):
    rule_id = "repro-errors"
    description = (
        "raises in serving/server/control must construct ServingError "
        "subclasses; bare except and silent except-pass are banned"
    )
    scope = ("*serving/*", "*server/*", "*control/*")
    visits = (ast.Raise, ast.ExceptHandler)

    _allowed = allowed_exception_names()

    def visit(self, node, context: FileContext) -> List[Finding]:
        if isinstance(node, ast.Raise):
            return self._check_raise(node, context)
        return self._check_handler(node, context)

    def _check_raise(self, node: ast.Raise, context: FileContext) -> List[Finding]:
        # `raise` (re-raise) and `raise stored_error` (a lowercase Name or an
        # Attribute holding a previously-captured error) are always allowed.
        if node.exc is None:
            return []
        if isinstance(node.exc, ast.Name):
            # `raise NotImplementedError` — a bare class name is still a
            # construction; only class-looking identifiers are checked.
            name = node.exc.id
            if not (name[:1].isupper() and name.endswith(("Error", "Exception"))):
                return []
            if name in self._allowed:
                return []
            return [
                self.finding(
                    node,
                    context,
                    f"raise {name} is outside the serving error taxonomy; "
                    "raise a ServingError subclass (see repro.exceptions)",
                )
            ]
        if not isinstance(node.exc, ast.Call):
            return []
        name = _terminal_name(node.exc.func)
        if not name:
            # raise (make_error())() etc. — can't resolve statically; allow.
            return []
        if name in self._allowed:
            return []
        return [
            self.finding(
                node,
                context,
                f"raise {name}(...) is outside the serving error taxonomy; "
                "raise a ServingError subclass (see repro.exceptions)",
            )
        ]

    def _check_handler(
        self, node: ast.ExceptHandler, context: FileContext
    ) -> List[Finding]:
        if node.type is None:
            return [
                self.finding(
                    node, context, "bare except: swallows typed serving errors"
                )
            ]
        broad = _terminal_name(node.type) in ("Exception", "BaseException")
        silent = len(node.body) == 1 and isinstance(node.body[0], ast.Pass)
        if broad and silent:
            return [
                self.finding(
                    node,
                    context,
                    f"silent except {_terminal_name(node.type)}: pass swallows "
                    "errors; handle, log, or re-raise",
                )
            ]
        return []
