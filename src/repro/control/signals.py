"""Rolling-window signal bus shared by every controller.

The control plane observes, it does not instrument: every quantity here is
read from surfaces the scheduler/stats layer already exports — the live
per-lane queue gauges (``EventLoopScheduler.queue_depths``), the rolling
deadline-attainment window kept on the ``DeviceStats`` rows (the same one
``RoutingReport.to_dict()`` serves to the network stats endpoint), the
cumulative per-lane failure counters, and the shed/request totals.  The
bus adds exactly two things on top: a short arrival-rate window (mean
submitted requests over the last ``window`` submissions) and
cumulative-counter *diffing* that turns the all-time per-lane failure
counts into a "failures in the recent window" signal.

One :class:`ControlSignals` snapshot per hook invocation keeps every
controller reading the same instant — an autoscaler and a shedder never
disagree about what the queue looked like when they decided.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["ControlSignals", "SignalBus"]


@dataclass(frozen=True)
class ControlSignals:
    """One immutable reading of the serving stack's control inputs."""

    #: Monotone submission counter (one tick per ``observe_submit``).
    tick: int
    #: Scheduler clock at snapshot time (latest lane completion).
    now: float
    #: Lane count (fixed for a scheduler's lifetime).
    n_lanes: int
    #: Current executor pool size; ``None`` for inline executors.
    workers: Optional[int]
    #: Per-lane queued request counts (live gauge).
    queue_depths: np.ndarray = field(repr=False)
    #: Sum of :attr:`queue_depths`.
    queue_depth: int = 0
    #: Mean submitted requests per tick over the bus window.
    arrival_rate: float = 0.0
    #: Fleet rolling deadline attainment (``ROLLING_WINDOW`` outcomes/lane).
    rolling_attainment: float = 1.0
    #: Per-lane failed requests inside the bus window (counter diffs).
    lane_failures: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    #: All-time shed / served-request totals, for controller telemetry.
    total_shed: int = 0
    total_requests: int = 0


class SignalBus:
    """Windows the scheduler's cumulative exports into control signals.

    ``window`` is the number of recent *submissions* the arrival-rate and
    recent-failure signals cover; the rolling attainment window is the
    stats layer's own (:data:`repro.fleet.router.ROLLING_WINDOW` outcomes
    per lane) so the bus, the stats endpoint and benchmark artifacts all
    quote one number.
    """

    def __init__(self, scheduler, *, window: int = 8) -> None:
        if window <= 0:
            raise ConfigurationError(f"signal window must be positive, got {window}")
        self._scheduler = scheduler
        self.window = int(window)
        self._arrivals = deque(maxlen=self.window)
        # Cumulative per-lane failure snapshots, one per tick; diffing the
        # oldest against "now" yields failures inside the window.
        self._failure_marks = deque(maxlen=self.window)
        self._tick = 0

    @property
    def tick(self) -> int:
        return self._tick

    def observe_submit(self, n_requests: int) -> None:
        """Advance the bus by one submission wave of ``n_requests``."""
        self._tick += 1
        self._arrivals.append(int(n_requests))
        self._failure_marks.append(self._scheduler.lane_failures)

    def snapshot(self) -> ControlSignals:
        """Read every signal at one instant."""
        scheduler = self._scheduler
        failures_now = scheduler.lane_failures
        base = self._failure_marks[0] if self._failure_marks else failures_now
        depths = scheduler.queue_depths
        report = scheduler.report()
        workers = getattr(scheduler.executor, "n_workers", 0)
        return ControlSignals(
            tick=self._tick,
            now=scheduler.clock_now(),
            n_lanes=scheduler.n_devices,
            workers=int(workers) if workers else None,
            queue_depths=depths,
            queue_depth=int(depths.sum()),
            arrival_rate=(
                sum(self._arrivals) / len(self._arrivals) if self._arrivals else 0.0
            ),
            rolling_attainment=report.rolling_deadline_attainment,
            lane_failures=failures_now - base,
            total_shed=report.total_shed,
            total_requests=report.total_requests,
        )
