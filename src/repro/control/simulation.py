"""``pilote chaos`` — run the chaos suite and print the exactly-once ledger.

Each scenario runs twice, with the control plane attached (``adaptive``)
and without (``static``): the exactly-once invariant must hold in *both*
modes — the control plane may reshape load, it may never drop or double-
answer a future.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.control.chaos import CHAOS_SCENARIOS, ChaosRunReport, run_suite
from repro.exceptions import ConfigurationError
from repro.experiments.common import ExperimentSettings
from repro.utils.logging import get_logger

__all__ = ["ChaosSuiteResult", "run"]

logger = get_logger(__name__)


@dataclass
class ChaosSuiteResult:
    """What ``pilote chaos`` prints: per-mode reports plus the verdict."""

    seed: int
    adaptive_runs: List[ChaosRunReport] = field(default_factory=list)
    static_runs: List[ChaosRunReport] = field(default_factory=list)

    @property
    def all_exactly_once(self) -> bool:
        return all(
            run.exactly_once for run in self.adaptive_runs + self.static_runs
        )

    @property
    def sanitized(self) -> bool:
        """Did every run execute under the runtime race sanitizer?"""
        runs = self.adaptive_runs + self.static_runs
        return bool(runs) and all(run.sanitized for run in runs)

    @property
    def sanitizer_clean(self) -> bool:
        """No sanitized run observed an unsynchronized cross-thread write."""
        return all(
            run.sanitizer_violations == 0
            for run in self.adaptive_runs + self.static_runs
        )

    @property
    def passed(self) -> bool:
        """The suite verdict: exactly-once held and the sanitizer is clean."""
        return self.all_exactly_once and self.sanitizer_clean

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "adaptive_runs": [run.to_dict() for run in self.adaptive_runs],
            "static_runs": [run.to_dict() for run in self.static_runs],
            "all_exactly_once": self.all_exactly_once,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ChaosSuiteResult":
        return cls(
            seed=int(payload["seed"]),  # type: ignore[arg-type]
            adaptive_runs=[
                ChaosRunReport.from_dict(run)
                for run in payload.get("adaptive_runs", [])  # type: ignore[union-attr]
            ],
            static_runs=[
                ChaosRunReport.from_dict(run)
                for run in payload.get("static_runs", [])  # type: ignore[union-attr]
            ],
        )

    def to_text(self) -> str:
        lines = [
            "Chaos suite: seeded failure injection with exactly-once accounting",
            f"(seed {self.seed}; every run must satisfy "
            "sent == answered + failed with no double-fires)",
            "",
            "with control plane (adaptive):",
        ]
        lines.extend("  " + run.to_text() for run in self.adaptive_runs)
        lines.append("")
        lines.append("without control plane (static):")
        lines.extend("  " + run.to_text() for run in self.static_runs)
        lines.append("")
        verdict = "held" if self.all_exactly_once else "VIOLATED"
        lines.append(f"exactly-once invariant: {verdict} across all runs")
        if self.sanitized:
            violations = sum(
                run.sanitizer_violations
                for run in self.adaptive_runs + self.static_runs
            )
            state = "clean" if self.sanitizer_clean else f"{violations} VIOLATION(S)"
            lines.append(f"race sanitizer: {state} (single-writer invariant)")
        return "\n".join(lines)


def run(
    settings: Optional[ExperimentSettings] = None,
    *,
    scenario: Optional[str] = None,
    sanitize: bool = False,
) -> ChaosSuiteResult:
    """Run the chaos suite (or one named ``scenario``) in both modes.

    ``sanitize=True`` additionally runs every scenario under the runtime
    race sanitizer (:mod:`repro.analysis.sanitizer`); the suite then only
    :attr:`~ChaosSuiteResult.passed` when zero cross-thread writes were
    observed on top of the exactly-once ledger.
    """
    settings = settings or ExperimentSettings.default()
    if scenario is not None and scenario not in CHAOS_SCENARIOS:
        raise ConfigurationError(
            f"unknown chaos scenario {scenario!r}; available: "
            f"{sorted(CHAOS_SCENARIOS)}"
        )
    names = None if scenario is None else [scenario]
    result = ChaosSuiteResult(seed=settings.seed)
    result.adaptive_runs = run_suite(
        names, adaptive=True, seed=settings.seed, sanitize=sanitize
    )
    result.static_runs = run_suite(
        names, adaptive=False, seed=settings.seed, sanitize=sanitize
    )
    for report in result.adaptive_runs + result.static_runs:
        logger.info(
            "chaos %s (%s): sent=%d answered=%d failed=%d exactly_once=%s",
            report.name,
            "adaptive" if report.adaptive else "static",
            report.sent,
            report.answered,
            report.failed,
            report.exactly_once,
        )
    return result
