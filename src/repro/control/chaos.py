"""Chaos suite: seeded failure injection with exactly-once accounting.

``pilote chaos run`` drives the serving stack through reproducible failure
scenarios and proves the invariant the rest of the control plane leans on:
**no future is ever dropped or answered twice**, no matter what dies
mid-stream.  Every scenario reports, per run::

    sent == answered + failed        (client side: every future resolved)
    unresolved == 0                  (nothing left pending after drain)
    double_fired == 0                (no done-callback fired twice)
    server_requests == sent + hedges (server side: every submit accounted)

Scenarios (registry :data:`CHAOS_SCENARIOS`):

* ``worker-storm`` — waves of :class:`~repro.exceptions.WorkerDiedError`
  raised from the devices themselves (:class:`FlakyDevice`), on the
  simulated clock; the hedging controller routes around the dying lanes.
* ``worker-storm-process`` — *real* worker processes killed mid-stream
  (:meth:`~repro.serving.executor.ProcessExecutor.kill_worker`); in-flight
  batches fail typed and the pool respawns.
* ``stragglers`` — devices slowed ``slow_factor``× mid-run
  (:class:`StragglerDevice`); deadline attainment dips and recovers.
* ``restart`` — the serving client is closed with requests still queued
  (every pending future fails with
  :class:`~repro.exceptions.ClientClosedError`, none dropped) and a new
  client is rebuilt over the same fleet mid-stream.

Injection is device- and executor-level, through seams production code
already exercises (`LaneResult.error`, worker crash handling, ``close()``):
the chaos layer adds *no* alternate failure path that tests would then
prove instead of the real one.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, WorkerDiedError

__all__ = [
    "CHAOS_SCENARIOS",
    "ChaosRunReport",
    "ChaosSpec",
    "FlakyDevice",
    "StragglerDevice",
    "run_chaos",
    "run_suite",
]


# ---------------------------------------------------------------------- #
class FlakyDevice:
    """Device wrapper that fails every batch while its storm is active.

    Failures surface as :class:`~repro.exceptions.WorkerDiedError` raised
    from ``infer`` — the exact error a crashed worker process produces, so
    schedulers, executors and stats treat injected deaths identically to
    real ones (but deterministically, and on the simulated clock).
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.failing = False
        self.storm_hits = 0

    # The scheduler/executor device surface, proxied.
    @property
    def device_id(self) -> int:
        return self.inner.device_id

    @property
    def profile(self):
        return self.inner.profile

    @property
    def engine(self):
        return getattr(self.inner, "engine", None)

    @property
    def serving_dtype(self):
        return getattr(self.inner, "serving_dtype", None)

    @property
    def is_deployed(self) -> bool:
        return getattr(self.inner, "is_deployed", True)

    def infer(self, windows):
        if self.failing:
            self.storm_hits += 1
            raise WorkerDiedError(
                f"chaos: device {self.device_id} dropped mid-batch (injected)"
            )
        return self.inner.infer(windows)


class StragglerDevice:
    """Device wrapper that runs ``slow_factor``× slower while flagged.

    Implemented through the profile's ``relative_compute`` — the same knob
    that models heterogeneous hardware — so simulated service times stretch
    without touching the engine output (answers stay bit-identical).
    """

    def __init__(self, inner, *, slow_factor: float = 8.0) -> None:
        if slow_factor <= 1.0:
            raise ConfigurationError(
                f"slow_factor must be > 1, got {slow_factor}"
            )
        self.inner = inner
        self.slow_factor = float(slow_factor)
        self.slow = False

    @property
    def device_id(self) -> int:
        return self.inner.device_id

    @property
    def profile(self):
        profile = self.inner.profile
        if not self.slow:
            return profile
        return dataclasses.replace(
            profile, relative_compute=profile.relative_compute / self.slow_factor
        )

    @property
    def engine(self):
        return getattr(self.inner, "engine", None)

    @property
    def serving_dtype(self):
        return getattr(self.inner, "serving_dtype", None)

    @property
    def is_deployed(self) -> bool:
        return getattr(self.inner, "is_deployed", True)

    def infer(self, windows):
        return self.inner.infer(windows)


# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ChaosSpec:
    """One reproducible chaos scenario (same spec + seed → same report)."""

    name: str
    scenario: str  # worker-storm | worker-storm-process | stragglers | restart
    seed: int = 0
    n_devices: int = 4
    n_ticks: int = 12
    requests_per_tick: int = 48
    executor: str = "serial"
    workers: Optional[int] = None
    #: Ticks during which the injected fault is active.
    storm_ticks: Tuple[int, ...] = (4, 5, 6)
    #: Lane positions the fault targets.
    storm_devices: Tuple[int, ...] = (0,)
    slow_factor: float = 8.0
    restart_tick: int = 6
    #: Relative deadline per request, milliseconds; ``None`` = no deadlines.
    deadline_ms: Optional[float] = 40.0

    def __post_init__(self) -> None:
        if self.scenario not in (
            "worker-storm", "worker-storm-process", "stragglers", "restart"
        ):
            raise ConfigurationError(
                f"unknown chaos scenario {self.scenario!r}"
            )
        if self.n_devices <= 0 or self.n_ticks <= 0 or self.requests_per_tick <= 0:
            raise ConfigurationError(
                "n_devices, n_ticks and requests_per_tick must be positive"
            )
        if any(t < 0 or t >= self.n_ticks for t in self.storm_ticks):
            raise ConfigurationError(
                f"storm_ticks must lie in [0, {self.n_ticks}), got "
                f"{self.storm_ticks}"
            )
        if any(d < 0 or d >= self.n_devices for d in self.storm_devices):
            raise ConfigurationError(
                f"storm_devices must lie in [0, {self.n_devices}), got "
                f"{self.storm_devices}"
            )
        if self.scenario == "restart" and not 0 <= self.restart_tick < self.n_ticks:
            raise ConfigurationError(
                f"restart_tick must lie in [0, {self.n_ticks}), got "
                f"{self.restart_tick}"
            )


#: The suite ``pilote chaos run`` executes, in order.
CHAOS_SCENARIOS: Dict[str, ChaosSpec] = {
    spec.name: spec
    for spec in (
        ChaosSpec(
            name="worker-storm",
            scenario="worker-storm",
            storm_ticks=(3, 4, 5, 6),
            storm_devices=(0, 1),
        ),
        ChaosSpec(
            name="worker-storm-process",
            scenario="worker-storm-process",
            executor="process",
            workers=2,
            n_ticks=6,
            requests_per_tick=16,
            storm_ticks=(2, 3),
            deadline_ms=None,  # wall-clock executor: no simulated deadlines
        ),
        ChaosSpec(
            name="stragglers",
            scenario="stragglers",
            storm_ticks=(4, 5, 6, 7),
            storm_devices=(0,),
            deadline_ms=25.0,
        ),
        ChaosSpec(
            name="restart",
            scenario="restart",
            restart_tick=6,
        ),
    )
}


# ---------------------------------------------------------------------- #
@dataclass
class ChaosRunReport:
    """Outcome ledger of one chaos run; :meth:`exactly_once` is the gate."""

    name: str
    scenario: str
    adaptive: bool
    seed: int
    sent: int = 0
    answered: int = 0
    failed: int = 0
    unresolved: int = 0
    double_fired: int = 0
    server_requests: int = 0
    hedges_fired: int = 0
    shed: int = 0
    cancelled: int = 0
    deadline_attainment: float = 1.0
    failed_by_type: Dict[str, int] = field(default_factory=dict)
    sanitized: bool = False
    sanitizer_violations: int = 0

    @property
    def exactly_once(self) -> bool:
        """No dropped and no double-answered futures, both sides.

        Client side: every submitted future resolved exactly once.  Server
        side: the scheduler accounted every submission — the caller's
        ``sent`` plus the hedge clones the control plane fired.
        """
        return (
            self.sent == self.answered + self.failed
            and self.unresolved == 0
            and self.double_fired == 0
            and self.server_requests == self.sent + self.hedges_fired
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "scenario": self.scenario,
            "adaptive": self.adaptive,
            "seed": self.seed,
            "sent": self.sent,
            "answered": self.answered,
            "failed": self.failed,
            "unresolved": self.unresolved,
            "double_fired": self.double_fired,
            "server_requests": self.server_requests,
            "hedges_fired": self.hedges_fired,
            "shed": self.shed,
            "cancelled": self.cancelled,
            "deadline_attainment": self.deadline_attainment,
            "failed_by_type": dict(self.failed_by_type),
            "sanitized": self.sanitized,
            "sanitizer_violations": self.sanitizer_violations,
            "exactly_once": self.exactly_once,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ChaosRunReport":
        keys = (
            "name", "scenario", "adaptive", "seed", "sent", "answered",
            "failed", "unresolved", "double_fired", "server_requests",
            "hedges_fired", "shed", "cancelled", "deadline_attainment",
            "failed_by_type", "sanitized", "sanitizer_violations",
        )
        data = {key: payload[key] for key in keys if key in payload}
        data["failed_by_type"] = dict(data.get("failed_by_type", {}))
        return cls(**data)  # type: ignore[arg-type]

    def to_text(self) -> str:
        verdict = "OK" if self.exactly_once else "VIOLATED"
        parts = [
            f"{self.name:<22} sent={self.sent:<5} answered={self.answered:<5}"
            f" failed={self.failed:<4} unresolved={self.unresolved}"
            f" double={self.double_fired} hedges={self.hedges_fired}"
            f" shed={self.shed} cancelled={self.cancelled}"
            f" attainment={self.deadline_attainment:.3f}"
            f" exactly-once={verdict}"
        ]
        for kind, count in sorted(self.failed_by_type.items()):
            parts.append(f"    {kind}: {count}")
        return "\n".join(parts)


# ---------------------------------------------------------------------- #
def _wrap_devices(fleet, spec: ChaosSpec):
    """Install the scenario's device wrappers in the fleet's live list.

    Returns the wrappers so the injection loop can flip their flags; the
    scheduler sees them through the same live list (``fleet.devices``)
    that device replacement uses.
    """
    wrappers = []
    if spec.scenario == "worker-storm":
        for position in spec.storm_devices:
            wrapper = FlakyDevice(fleet.devices[position])
            fleet.devices[position] = wrapper
            wrappers.append(wrapper)
    elif spec.scenario == "stragglers":
        for position in spec.storm_devices:
            wrapper = StragglerDevice(
                fleet.devices[position], slow_factor=spec.slow_factor
            )
            fleet.devices[position] = wrapper
            wrappers.append(wrapper)
    return wrappers


def run_chaos(
    spec: ChaosSpec, *, adaptive: bool = True, sanitize: bool = False
) -> ChaosRunReport:
    """Drive one seeded chaos scenario end to end and account every future.

    With ``sanitize=True`` every client the run builds (including the
    post-restart replacement) is instrumented by a shared
    :class:`~repro.analysis.Sanitizer`; the report carries the observed
    cross-thread-write count so the suite doubles as a race detector.
    """
    # Deferred imports: chaos reuses the server simulation's fleet factory,
    # which imports serving — importing it at module load would cycle.
    from repro.analysis.sanitizer import Sanitizer
    from repro.fleet.traffic import TrafficGenerator, WorkloadSpec
    from repro.server.simulation import _feature_pool, build_serving_fleet
    from repro.serving import serve

    fleet = build_serving_fleet(spec.n_devices, seed=spec.seed)
    wrappers = _wrap_devices(fleet, spec)
    workload = WorkloadSpec(
        pattern="zipf",
        n_users=max(64, 8 * spec.requests_per_tick),
        requests_per_tick=spec.requests_per_tick,
        n_ticks=spec.n_ticks,
        tick_seconds=0.02,
        deadline_seconds=(
            None if spec.deadline_ms is None else spec.deadline_ms / 1000.0
        ),
    )
    traffic = TrafficGenerator(_feature_pool(spec.seed), workload, seed=spec.seed)

    sanitizer = Sanitizer() if sanitize else None

    def build_client():
        built = serve(
            fleet,
            routing="p2c" if spec.n_devices > 1 else "hash",
            scheduling="edf" if spec.deadline_ms is not None else "fifo",
            seed=spec.seed,
            executor=spec.executor,
            workers=spec.workers,
            adaptive=adaptive,
        )
        if sanitizer is not None:
            sanitizer.attach(built)
        return built

    client = build_client()
    report = ChaosRunReport(
        name=spec.name, scenario=spec.scenario, adaptive=adaptive, seed=spec.seed,
        sanitized=sanitize,
    )
    futures: List = []
    fired: List[int] = []  # id() per done-callback fire; dupes = double answer

    def on_done(future) -> None:
        fired.append(id(future))

    storm = set(spec.storm_ticks)
    retired_reports = []
    try:
        for tick, requests in enumerate(traffic.ticks()):
            if spec.scenario in ("worker-storm", "stragglers"):
                active = tick in storm
                for wrapper in wrappers:
                    if spec.scenario == "worker-storm":
                        wrapper.failing = active
                    else:
                        wrapper.slow = active
            elif spec.scenario == "worker-storm-process" and tick in storm:
                # Kill a real worker; don't wait — the death lands mid-round
                # and the next _reap_dead respawns it.
                client.scheduler.executor.kill_worker(tick, wait=False)
            wave = client.submit_many(requests)
            for future in wave:
                future.add_done_callback(on_done)
            futures.extend(wave)
            report.sent += len(wave)
            if spec.scenario == "restart" and tick == spec.restart_tick:
                # Close with this tick's wave still queued: every pending
                # future must fail typed (ClientClosedError), none dropped.
                client.close()
                retired_reports.append(_server_side(client))
                client = build_client()
                continue
            client.drain()
        client.drain()
        retired_reports.append(_server_side(client))
    finally:
        client.close()

    for future in futures:
        if not future.done():
            report.unresolved += 1
            continue
        error = future.exception()
        if error is None:
            report.answered += 1
        else:
            report.failed += 1
            kind = type(error).__name__
            report.failed_by_type[kind] = report.failed_by_type.get(kind, 0) + 1
    report.double_fired = len(fired) - len(set(fired))
    for side in retired_reports:
        report.server_requests += side["requests"]
        report.hedges_fired += side["hedges"]
        report.shed += side["shed"]
        report.cancelled += side["cancelled"]
    if retired_reports:
        report.deadline_attainment = retired_reports[-1]["attainment"]
    if sanitizer is not None:
        report.sanitizer_violations = len(sanitizer.violations)
    return report


def _server_side(client) -> Dict[str, object]:
    """Scheduler-side accounting for one client's lifetime.

    ``requests`` is the scheduler's full conservation sum — served +
    expired (incl. rejected/shed) + failed + cancelled — i.e. every
    submission the scheduler resolved, one way exactly.
    """
    routing_report = client.report()
    hedging = (
        client.control.controller("hedging") if client.control is not None else None
    )
    accounted = (
        routing_report.total_requests        # served
        + routing_report.total_expired       # expired while queued + rejected
        + routing_report.total_failed        # device/worker death mid-batch
        + routing_report.total_cancelled     # hedge losers cancelled pre-service
    )
    return {
        "requests": accounted,
        "hedges": hedging.hedges.fired if hedging is not None else 0,
        "shed": routing_report.total_shed,
        "cancelled": routing_report.total_cancelled,
        "attainment": routing_report.deadline_attainment,
    }


def run_suite(
    names: Optional[Sequence[str]] = None,
    *,
    adaptive: bool = True,
    seed: Optional[int] = None,
    sanitize: bool = False,
) -> List[ChaosRunReport]:
    """Run the named scenarios (default: the whole registry, in order)."""
    if names is None:
        specs = list(CHAOS_SCENARIOS.values())
    else:
        unknown = [n for n in names if n not in CHAOS_SCENARIOS]
        if unknown:
            raise ConfigurationError(
                f"unknown chaos scenario(s) {unknown}; available: "
                f"{sorted(CHAOS_SCENARIOS)}"
            )
        specs = [CHAOS_SCENARIOS[n] for n in names]
    if seed is not None:
        specs = [dataclasses.replace(spec, seed=seed) for spec in specs]
    return [run_chaos(spec, adaptive=adaptive, sanitize=sanitize) for spec in specs]
