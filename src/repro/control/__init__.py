"""Self-tuning control plane over the serving stack.

The serving layers (:mod:`repro.serving`, :mod:`repro.fleet`,
:mod:`repro.server`) *export* signals — queue depths, rolling deadline
attainment, per-lane failures — and expose actuation seams — executor
``resize``, the scheduler's ``admission`` hook, per-lane
``submit_assigned``.  This package closes the loop: a
:class:`ControlPlane` attached to a :class:`~repro.serving.ServingClient`
feeds those signals through pluggable :class:`Controller` implementations
that act back on the stack::

    from repro.serving import serve
    client = serve(fleet, routing="p2c", scheduling="edf",
                   seed=0, adaptive=True)     # default controller stack

Stock controllers (registry :data:`CONTROLLERS`):

* :class:`~repro.control.shedding.LoadShedder` — admission control that
  rejects provably-doomed work before it queues;
* :class:`~repro.control.hedging.HedgedRequests` — a backup attempt on a
  sibling lane when the chosen lane projects a deadline miss, first
  completion wins, loser cancelled, exactly-once accounting;
* :class:`~repro.control.autoscaler.PoolAutoscaler` — grows/shrinks the
  executor worker pool from queue depth and rolling attainment with
  hysteresis and cooldown.

The chaos suite (:mod:`repro.control.chaos`, ``pilote chaos``) injects
worker-death storms, stragglers and mid-stream restarts and proves the
invariant everything above relies on: no future dropped, none answered
twice.
"""

from repro.control.autoscaler import PoolAutoscaler
from repro.control.chaos import (
    CHAOS_SCENARIOS,
    ChaosRunReport,
    ChaosSpec,
    FlakyDevice,
    StragglerDevice,
    run_chaos,
    run_suite,
)
from repro.control.hedging import HedgedRequests, HedgedResult, HedgeStats
from repro.control.plane import Controller, ControlPlane, default_controllers
from repro.control.shedding import LoadShedder
from repro.control.signals import ControlSignals, SignalBus
from repro.exceptions import ConfigurationError

__all__ = [
    "CHAOS_SCENARIOS",
    "CONTROLLERS",
    "ChaosRunReport",
    "ChaosSpec",
    "ControlPlane",
    "ControlSignals",
    "Controller",
    "FlakyDevice",
    "HedgeStats",
    "HedgedRequests",
    "HedgedResult",
    "LoadShedder",
    "PoolAutoscaler",
    "SignalBus",
    "StragglerDevice",
    "default_controllers",
    "make_controller",
    "run_chaos",
    "run_suite",
]

#: Controller registry, same convention as EXECUTORS / ROUTING_POLICIES.
CONTROLLERS = {
    LoadShedder.name: LoadShedder,
    HedgedRequests.name: HedgedRequests,
    PoolAutoscaler.name: PoolAutoscaler,
}


def make_controller(name: str, **options) -> Controller:
    """Build a registered controller by name (``CONTROLLERS`` key)."""
    try:
        cls = CONTROLLERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown controller {name!r}; available: {sorted(CONTROLLERS)}"
        ) from None
    return cls(**options)
