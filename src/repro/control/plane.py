"""The control plane: controllers behind one protocol, hooked into a client.

:class:`ControlPlane` attaches to a :class:`~repro.serving.ServingClient`
and routes two hooks to its controllers:

* ``on_submit(requests, futures, signals)`` — after a wave of requests is
  queued (admission already applied) but *before* the caller sees the
  futures; a controller may replace entries (hedging wraps at-risk futures
  in a first-completion-wins pair) or act on pre-drain signals (the
  autoscaler grows the pool while the queue is visible at its deepest);
* ``on_tick(signals)`` — after each ``drain()``, on post-drain signals
  (the autoscaler shrinks here, from the arrival-rate window rather than
  the now-empty queue).

Controllers follow the library's registry convention (executors, routing
policies, scheduling orders): subclasses of :class:`Controller` with a
``name``, registered in :data:`repro.control.CONTROLLERS`.  The shared
:class:`~repro.control.signals.SignalBus` snapshot is handed to every
controller so decisions within one hook read the same instant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.control.signals import ControlSignals, SignalBus
from repro.exceptions import ConfigurationError

__all__ = ["Controller", "ControlPlane", "default_controllers"]


class Controller:
    """One closed-loop behavior plugged into the control plane.

    The base class is inert: ``on_submit`` passes futures through,
    ``on_tick`` does nothing.  Subclasses override the hooks they need and
    report their decisions through :meth:`stats` (surfaced on the server's
    stats endpoint under ``control.<name>``).
    """

    #: Registry key of the controller.
    name: str = "abstract"

    def bind(self, plane: "ControlPlane") -> None:
        """Called once when the controller joins a plane."""
        self.plane = plane

    def on_submit(
        self, requests: Sequence, futures: List, signals: ControlSignals
    ) -> List:
        """Observe/transform one submitted wave; returns the futures."""
        return futures

    def on_tick(self, signals: ControlSignals) -> None:
        """React to post-drain signals."""

    def stats(self) -> Dict[str, object]:
        """JSON-ready decision telemetry."""
        return {}

    def describe(self) -> str:
        return self.name


class ControlPlane:
    """Observes a serving client's signals and feeds decisions back.

    Parameters
    ----------
    client:
        The :class:`~repro.serving.ServingClient` to control.  The plane
        installs itself via ``client.attach_control`` — submissions and
        drains start flowing through the hooks immediately.
    controllers:
        Controller instances, applied in order on every hook.  ``None``
        builds the default stack via :func:`default_controllers` (load
        shedding, hedging where the fleet has siblings to hedge to, and
        pool autoscaling where the executor is resizable).
    window:
        Signal-bus window, in submissions (see
        :class:`~repro.control.signals.SignalBus`).
    """

    def __init__(
        self, client, controllers: Optional[Sequence[Controller]] = None,
        *, window: int = 8,
    ) -> None:
        scheduler = getattr(client, "scheduler", None)
        if scheduler is None:
            raise ConfigurationError(
                "the control plane attaches to a ServingClient (or any object "
                "exposing .scheduler and .attach_control)"
            )
        self.client = client
        self.scheduler = scheduler
        self.bus = SignalBus(scheduler, window=window)
        if controllers is None:
            controllers = default_controllers(scheduler)
        self.controllers: List[Controller] = []
        for controller in controllers:
            controller.bind(self)
            self.controllers.append(controller)
        client.attach_control(self)

    @property
    def executor(self):
        return self.scheduler.executor

    def controller(self, name: str) -> Optional[Controller]:
        """The attached controller with ``name``, if any."""
        for controller in self.controllers:
            if controller.name == name:
                return controller
        return None

    # -- client hooks --------------------------------------------------- #
    def after_submit(self, requests: Sequence, futures: List) -> List:
        """Run every controller's submit hook over one queued wave."""
        self.bus.observe_submit(len(requests))
        signals = self.bus.snapshot()
        for controller in self.controllers:
            futures = controller.on_submit(requests, futures, signals)
        return futures

    def after_drain(self) -> None:
        """Run every controller's post-drain tick."""
        signals = self.bus.snapshot()
        for controller in self.controllers:
            controller.on_tick(signals)

    # -- telemetry ------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """Per-controller decision telemetry plus the bus configuration."""
        data: Dict[str, object] = {
            "window": self.bus.window,
            "ticks": self.bus.tick,
            "controllers": [c.name for c in self.controllers],
        }
        for controller in self.controllers:
            data[controller.name] = controller.stats()
        return data

    def describe(self) -> str:
        inner = ", ".join(c.describe() for c in self.controllers) or "inert"
        return f"control-plane({inner})"


def default_controllers(scheduler) -> List[Controller]:
    """The standard stack for a scheduler: shed, hedge, autoscale.

    Hedging needs a sibling lane to hedge to (skipped on single-lane
    fleets); autoscaling needs a resizable executor (the duck-typed
    ``resize`` seam — skipped for inline executors).
    """
    from repro.control.autoscaler import PoolAutoscaler
    from repro.control.hedging import HedgedRequests
    from repro.control.shedding import LoadShedder

    controllers: List[Controller] = [LoadShedder()]
    if scheduler.n_devices >= 2:
        controllers.append(HedgedRequests())
    if callable(getattr(scheduler.executor, "resize", None)):
        controllers.append(PoolAutoscaler())
    return controllers
