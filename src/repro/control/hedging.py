"""Hedged requests: fire a backup attempt when the chosen lane looks late.

On every submitted wave the controller inspects the deadline-carrying
requests that were queued (not rejected) and, for each one whose lane is
*at risk* — its projected service start (queue-order aware, via
``EventLoopScheduler.projected_begin_for``) already lies past the deadline,
or the lane failed requests inside the signal window (a dying worker fails
fast, looks idle, and keeps attracting p2c traffic — the failure-vortex
this signal breaks) — submits a clone of the request on an *alternate*
lane and wraps both attempts in a :class:`HedgedResult`.

First completion wins; the loser is cancelled (advisory — see
``PendingResult.cancel``).  Exactly-once accounting, proven by the chaos
suite and ``RoutingReport``'s counters:

* the caller's future resolves exactly once, with the winner's outcome;
* a cancelled loser resolves with
  :class:`~repro.exceptions.RequestCancelledError` and is counted in
  ``total_cancelled`` — excluded from the SLO denominator, because its
  logical request *was* answered (by the twin);
* a loser whose batch reached service anyway is counted as *wasted*
  (``losers_served``) — duplicated compute, never a duplicated answer;
* only when **both** attempts fail does the pair fail, with the primary's
  error (``pairs_failed``).

The alternate lane is the p2c *sibling* where the routing policy exposes
its candidate pair (:meth:`~repro.serving.routing.PowerOfTwoRouting
.candidates`), else the healthiest lane by (not-failing, earliest
projected begin).  A hedge is only fired when the alternate actually
improves the request's odds — hedging into an equally-doomed lane would
just double the overload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.control.plane import Controller
from repro.control.signals import ControlSignals
from repro.exceptions import ConfigurationError, RequestCancelledError, ServingError
from repro.serving.protocol import PendingResult, PredictRequest

__all__ = ["HedgedRequests", "HedgedResult", "HedgeStats"]


@dataclass
class HedgeStats:
    """Exactly-once ledger over every hedged pair.

    After all attempts resolve: ``fired == primary_wins + hedge_wins +
    pairs_failed`` (each pair settles exactly once) and the losers of the
    settled-with-a-winner pairs partition as ``losers_cancelled +
    losers_served + losers_failed == primary_wins + hedge_wins``.
    """

    fired: int = 0
    primary_wins: int = 0
    hedge_wins: int = 0
    pairs_failed: int = 0
    losers_cancelled: int = 0
    losers_served: int = 0
    losers_failed: int = 0

    @property
    def settled(self) -> int:
        return self.primary_wins + self.hedge_wins + self.pairs_failed

    @property
    def losers_resolved(self) -> int:
        return self.losers_cancelled + self.losers_served + self.losers_failed

    def consistent(self) -> bool:
        """The exactly-once invariant over fully-resolved pairs."""
        return (
            self.settled == self.fired
            and self.losers_resolved == self.primary_wins + self.hedge_wins
        )

    def to_dict(self) -> Dict[str, int]:
        return {
            "fired": self.fired,
            "primary_wins": self.primary_wins,
            "hedge_wins": self.hedge_wins,
            "pairs_failed": self.pairs_failed,
            "losers_cancelled": self.losers_cancelled,
            "losers_served": self.losers_served,
            "losers_failed": self.losers_failed,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, int]) -> "HedgeStats":
        keys = (
            "fired", "primary_wins", "hedge_wins", "pairs_failed",
            "losers_cancelled", "losers_served", "losers_failed",
        )
        return cls(**{key: int(payload.get(key, 0)) for key in keys})


class HedgedResult(PendingResult):
    """First-completion-wins pair of attempts for one logical request.

    Presents the :class:`~repro.serving.protocol.PendingResult` interface:
    done once a winner (or the both-failed outcome) is settled, and
    resolves with the winner's answer/error exactly once.  Attempt
    outcomes are observed through done-callbacks on the underlying batch
    futures, so accounting is driven by the scheduler's own completion
    path — nothing is polled.
    """

    __slots__ = ("_primary", "_hedge", "_winner", "_n_failed", "_callbacks", "_stats")

    def __init__(self, request, primary, hedge, stats: HedgeStats) -> None:
        self.request = request
        self._primary = primary
        self._hedge = hedge
        self._winner = None
        self._n_failed = 0
        self._callbacks: Optional[list] = None
        self._stats = stats
        # Registration order is irrelevant: _attempt_done is re-entrant-safe
        # for already-resolved attempts (a hedge rejected at admission fires
        # immediately, inside this constructor).
        primary.add_done_callback(self._attempt_done)
        hedge.add_done_callback(self._attempt_done)

    # -- attempt bookkeeping --------------------------------------------- #
    def _attempt_done(self, attempt) -> None:
        error = attempt.exception()
        stats = self._stats
        if self._winner is not None:
            # The pair already settled: this is the loser resolving late.
            if error is None:
                stats.losers_served += 1  # wasted compute, not a second answer
            elif isinstance(error, RequestCancelledError):
                stats.losers_cancelled += 1
            else:
                stats.losers_failed += 1
            return
        if error is None:
            self._winner = attempt
            if attempt is self._hedge:
                stats.hedge_wins += 1
            else:
                stats.primary_wins += 1
            loser = self._primary if attempt is self._hedge else self._hedge
            if loser.done():
                # The loser failed *before* the pair settled (its callback
                # ran with no winner yet and only bumped _n_failed) —
                # classify it here so the loser ledger still partitions.
                loser_error = loser.exception()
                if isinstance(loser_error, RequestCancelledError):
                    stats.losers_cancelled += 1
                else:
                    stats.losers_failed += 1
            else:
                loser.cancel()
            self._fire_callbacks()
            return
        self._n_failed += 1
        if self._n_failed >= 2:
            # Both attempts failed: settle on the primary's error (the
            # hedge's failure is secondary — it was our speculation).
            self._winner = self._primary
            stats.pairs_failed += 1
            self._fire_callbacks()

    def _fire_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)

    # -- PendingResult interface ------------------------------------------ #
    def done(self) -> bool:
        return self._winner is not None

    def add_done_callback(self, callback) -> None:
        if self._winner is not None:
            callback(self)
            return
        if self._callbacks is None:
            self._callbacks = []
        self._callbacks.append(callback)

    def _settle(self) -> None:
        if self._winner is None and not self._primary.done():
            # exception() drains the owning scheduler; both attempts share
            # it, so one drain resolves the pair.
            self._primary.exception()
        if self._winner is None and not self._hedge.done():
            self._hedge.exception()
        if self._winner is None:
            raise ServingError(
                "hedged request is still pending; drain() the serving client"
            )

    def exception(self) -> Optional[BaseException]:
        self._settle()
        return self._winner.exception()

    def result(self):
        self._settle()
        return self._winner.result()


class HedgedRequests(Controller):
    """Submit-hook controller wrapping at-risk futures in hedged pairs.

    Parameters
    ----------
    slack_seconds:
        Safety margin added to the projected begin before comparing with
        the deadline (``0`` hedges only projected-certain misses).
    unhealthy_failures:
        Failures inside the signal window past which a lane counts as
        unhealthy (triggering hedges away from it regardless of its
        projected begin, which a fail-fast lane under-reports).
    max_hedges_per_wave:
        Budget bounding speculative load per submission (``None`` = one
        hedge per at-risk request).
    """

    name = "hedging"

    def __init__(
        self,
        *,
        slack_seconds: float = 0.0,
        unhealthy_failures: int = 1,
        max_hedges_per_wave: Optional[int] = None,
    ) -> None:
        if slack_seconds < 0.0:
            raise ConfigurationError(
                f"slack_seconds must be >= 0, got {slack_seconds}"
            )
        if unhealthy_failures <= 0:
            raise ConfigurationError(
                f"unhealthy_failures must be positive, got {unhealthy_failures}"
            )
        if max_hedges_per_wave is not None and max_hedges_per_wave < 0:
            raise ConfigurationError(
                f"max_hedges_per_wave must be >= 0, got {max_hedges_per_wave}"
            )
        self.slack_seconds = float(slack_seconds)
        self.unhealthy_failures = int(unhealthy_failures)
        self.max_hedges_per_wave = max_hedges_per_wave
        #: Exactly-once ledger over every pair this controller fired.
        self.hedges = HedgeStats()

    # -- plane hook ------------------------------------------------------- #
    def on_submit(self, requests, futures, signals: ControlSignals):
        if signals.n_lanes < 2:
            return futures
        scheduler = self.plane.scheduler
        unhealthy = signals.lane_failures >= self.unhealthy_failures
        budget = (
            self.max_hedges_per_wave
            if self.max_hedges_per_wave is not None
            else len(requests)
        )
        out = list(futures)
        for index, (request, future) in enumerate(zip(requests, out)):
            if budget <= 0:
                break
            deadline = getattr(request, "deadline_seconds", None)
            if deadline is None:
                continue
            primary = scheduler.lane_of(future)
            if primary is None:
                continue  # rejected/shed at admission, or a foreign future
            arrival = float(request.arrival_seconds)
            projected = scheduler.projected_begin_for(primary, arrival, deadline)
            at_risk = (
                projected + self.slack_seconds > deadline or unhealthy[primary]
            )
            if not at_risk:
                continue
            alternate = self._alternate(
                request, primary, scheduler, unhealthy, arrival, deadline
            )
            if alternate is None:
                continue
            hedge_future = self._fire(request, alternate, scheduler)
            out[index] = HedgedResult(request, future, hedge_future, self.hedges)
            self.hedges.fired += 1
            budget -= 1
        return out

    # -- internals -------------------------------------------------------- #
    def _alternate(
        self, request, primary, scheduler, unhealthy, arrival, deadline
    ) -> Optional[int]:
        """The lane to hedge onto, or ``None`` when no lane would help."""
        candidates = getattr(scheduler.policy, "candidates", None)
        lanes: List[int]
        if candidates is not None:
            first, second = candidates(
                np.asarray([request.user_id], dtype=np.int64)
            )
            sibling = int(second[0]) if int(first[0]) == primary else int(first[0])
            lanes = (
                [sibling]
                if sibling != primary
                else [l for l in range(scheduler.n_devices) if l != primary]
            )
        else:
            lanes = [l for l in range(scheduler.n_devices) if l != primary]
        best = None
        best_key = None
        for lane in lanes:
            key = (
                bool(unhealthy[lane]),
                scheduler.projected_begin_for(lane, arrival, deadline),
            )
            if best_key is None or key < best_key:
                best, best_key = lane, key
        if best is None:
            return None
        alt_unhealthy, alt_projected = best_key
        if unhealthy[primary] and not alt_unhealthy:
            return best  # escaping a failing lane always helps
        if alt_projected + self.slack_seconds <= deadline:
            return best  # the alternate can actually make the deadline
        return None  # equally doomed: don't double the overload

    def _fire(self, request, lane, scheduler):
        """Submit a clone of ``request`` directly onto ``lane``."""
        clone = PredictRequest(
            user_id=request.user_id,
            features=request.features,
            arrival_seconds=request.arrival_seconds,
            deadline_seconds=request.deadline_seconds,
            metadata=getattr(request, "metadata", None),
            request_id=getattr(request, "request_id", None),
        )
        return scheduler.submit_assigned(
            [clone], np.asarray([lane], dtype=np.int64)
        )[0]

    # -- telemetry -------------------------------------------------------- #
    def stats(self) -> Dict[str, int]:
        return self.hedges.to_dict()

    def describe(self) -> str:
        return f"hedging(fired={self.hedges.fired})"
