"""Load-shedding admission control: reject doomed work before it queues.

The shedder installs itself as the scheduler's ``admission`` hook (the
seam PR 4's ``_RejectedResult`` path left open): for every deadline-
carrying request that clears the hard admission floor, it may still
return an error, rejecting the request before it occupies queue space.

Two layers keep it honest:

* **Hysteresis activation** — shedding only engages while the fleet-wide
  queue is deeper than ``high_queue_per_lane`` requests per lane, and
  disengages below ``low_queue_per_lane``; a healthy system pays zero
  per-request overhead (the hook returns immediately).
* **Queue-order-aware projection** — while active, a request is shed only
  when the lane's *projected service start* (via
  ``EventLoopScheduler.projected_begin_for``, which counts only the queued
  work the lane would actually serve first — everything on FIFO lanes,
  earlier-or-equal deadlines on EDF lanes) already lies past its deadline.
  A request EDF could still save is therefore never shed; what is shed is
  exactly the work that would otherwise sit in the queue until expiry.

Shed requests fail with :class:`~repro.exceptions.RequestSheddedError`
(a ``DeadlineExceededError`` subtype — same caller contract as any
admission rejection) and are counted in ``RoutingReport.total_shed``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.control.plane import Controller
from repro.control.signals import ControlSignals
from repro.exceptions import ConfigurationError, RequestSheddedError

__all__ = ["LoadShedder"]


class LoadShedder(Controller):
    """Hysteresis-gated, projection-based admission control."""

    name = "load-shedder"

    def __init__(
        self,
        *,
        high_queue_per_lane: float = 48.0,
        low_queue_per_lane: float = 12.0,
        margin_seconds: float = 0.0,
    ) -> None:
        if not 0.0 <= low_queue_per_lane < high_queue_per_lane:
            raise ConfigurationError(
                "watermarks must satisfy 0 <= low < high, got "
                f"low={low_queue_per_lane}, high={high_queue_per_lane}"
            )
        if margin_seconds < 0.0:
            raise ConfigurationError(
                f"margin_seconds must be >= 0, got {margin_seconds}"
            )
        self.high_queue_per_lane = float(high_queue_per_lane)
        self.low_queue_per_lane = float(low_queue_per_lane)
        self.margin_seconds = float(margin_seconds)
        #: Whether shedding is currently engaged (hysteresis state).
        self.active = False
        self.shed_count = 0
        self.activations = 0
        # (position, arrival, deadline) -> projected begin, cleared per wave.
        # Requests in one wave share few distinct (lane, deadline-class)
        # pairs, so projection runs once per pair, not once per request.
        self._projection_cache: Dict[tuple, float] = {}

    def bind(self, plane) -> None:
        super().bind(plane)
        plane.scheduler.admission = self

    # -- plane hooks ----------------------------------------------------- #
    def on_submit(self, requests, futures, signals: ControlSignals):
        # The hook runs after this wave queued, so the toggle takes effect
        # from the *next* wave — standard one-tick control lag.
        per_lane = signals.queue_depth / max(signals.n_lanes, 1)
        if not self.active and per_lane > self.high_queue_per_lane:
            self.active = True
            self.activations += 1
        elif self.active and per_lane < self.low_queue_per_lane:
            self.active = False
        self._projection_cache.clear()
        return futures

    # -- scheduler admission hook ---------------------------------------- #
    def shed(self, request, position, floor, scheduler) -> Optional[BaseException]:
        """The scheduler's per-request admission question.

        Returns ``None`` to admit; an error to reject before queueing.
        Only called for deadline-carrying requests that already cleared the
        hard floor (``floor <= deadline``).
        """
        if not self.active:
            return None
        deadline = request.deadline_seconds
        arrival = float(request.arrival_seconds)
        key = (position, arrival, deadline)
        projected = self._projection_cache.get(key)
        if projected is None:
            projected = scheduler.projected_begin_for(position, arrival, deadline)
            self._projection_cache[key] = projected
        if projected + self.margin_seconds <= deadline:
            return None
        self.shed_count += 1
        return RequestSheddedError(
            f"user {request.user_id}: shed by admission control — lane "
            f"{position}'s projected service start {projected:.6f}s is past "
            f"the deadline {deadline:.6f}s"
        )

    # -- telemetry ------------------------------------------------------- #
    def stats(self) -> Dict[str, object]:
        return {
            "active": self.active,
            "shed": self.shed_count,
            "activations": self.activations,
        }
