"""Pool autoscaler: queue depth and rolling attainment drive ``resize()``.

Scale-up happens on the *submit* hook, when the freshly queued wave makes
the backlog visible at its deepest — the resize lands before the drain, so
the very round that saw the spike already runs on the larger pool.
Scale-down happens on the *post-drain* tick and reads the arrival-rate
window, not the queue (which an open-loop per-tick drain empties every
round; a gauge that is always zero after drain would otherwise argue for
shrinking a pool that is saturated mid-round).

No-flapping is enforced twice over: hysteresis (the shrink threshold is
computed against the *shrunken* pool, so a size the next wave would
immediately regrow never passes) and a cooldown of ``cooldown_ticks``
submissions after any change.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.control.plane import Controller
from repro.control.signals import ControlSignals
from repro.exceptions import ConfigurationError

__all__ = ["PoolAutoscaler"]


class PoolAutoscaler(Controller):
    """Grows/shrinks a resizable executor pool between drains.

    Parameters
    ----------
    min_workers / max_workers:
        Pool bounds; ``max_workers=None`` means the lane count (the
        executor's own cap).
    high_queue_per_worker:
        Scale up when the queued backlog exceeds this many requests per
        current worker.
    low_queue_per_worker:
        Scale down when the arrival-rate window would stay below this many
        requests per worker *after* shrinking (hysteresis: the test is
        against the smaller pool).
    attainment_floor:
        Rolling deadline attainment below which a moderately deep queue
        already justifies scaling up, and below which scale-down is vetoed.
    cooldown_ticks:
        Minimum submissions between consecutive resizes.
    """

    name = "autoscaler"

    def __init__(
        self,
        *,
        min_workers: int = 1,
        max_workers: Optional[int] = None,
        high_queue_per_worker: float = 32.0,
        low_queue_per_worker: float = 8.0,
        attainment_floor: float = 0.9,
        cooldown_ticks: int = 2,
    ) -> None:
        if min_workers <= 0:
            raise ConfigurationError(
                f"min_workers must be positive, got {min_workers}"
            )
        if max_workers is not None and max_workers < min_workers:
            raise ConfigurationError(
                f"max_workers ({max_workers}) must be >= min_workers "
                f"({min_workers})"
            )
        if not 0.0 < low_queue_per_worker < high_queue_per_worker:
            raise ConfigurationError(
                "watermarks must satisfy 0 < low < high, got "
                f"low={low_queue_per_worker}, high={high_queue_per_worker}"
            )
        if not 0.0 <= attainment_floor <= 1.0:
            raise ConfigurationError(
                f"attainment_floor must be in [0, 1], got {attainment_floor}"
            )
        if cooldown_ticks < 0:
            raise ConfigurationError(
                f"cooldown_ticks must be >= 0, got {cooldown_ticks}"
            )
        self.min_workers = int(min_workers)
        self.max_workers = max_workers if max_workers is None else int(max_workers)
        self.high_queue_per_worker = float(high_queue_per_worker)
        self.low_queue_per_worker = float(low_queue_per_worker)
        self.attainment_floor = float(attainment_floor)
        self.cooldown_ticks = int(cooldown_ticks)
        #: Resize history: ``{"tick", "from", "to", "reason"}`` per action.
        self.actions: List[Dict[str, object]] = []
        self._last_change_tick = -(10**9)
        self._resize = None

    def bind(self, plane) -> None:
        super().bind(plane)
        self._resize = getattr(plane.executor, "resize", None)

    # -- hooks ----------------------------------------------------------- #
    def on_submit(self, requests, futures, signals: ControlSignals):
        self._maybe_grow(signals)
        return futures

    def on_tick(self, signals: ControlSignals) -> None:
        self._maybe_shrink(signals)

    # -- decisions ------------------------------------------------------- #
    def _cooling(self, signals: ControlSignals) -> bool:
        return (
            self._resize is None
            or signals.workers is None
            or signals.tick - self._last_change_tick < self.cooldown_ticks
        )

    def _apply(self, signals: ControlSignals, desired: int, reason: str) -> None:
        actual = self._resize(desired)
        if actual != signals.workers:
            self.actions.append(
                {
                    "tick": signals.tick,
                    "from": int(signals.workers),
                    "to": int(actual),
                    "reason": reason,
                }
            )
            self._last_change_tick = signals.tick

    def _maybe_grow(self, signals: ControlSignals) -> None:
        if self._cooling(signals):
            return
        workers = signals.workers
        cap = self.max_workers if self.max_workers is not None else signals.n_lanes
        if workers >= cap:
            return
        depth = signals.queue_depth
        pressured = depth > self.high_queue_per_worker * workers
        struggling = (
            signals.rolling_attainment < self.attainment_floor
            and depth > self.low_queue_per_worker * workers
        )
        if not (pressured or struggling):
            return
        # Double under pressure (catches a step overload in O(log) resizes)
        # but never past the cap.
        desired = min(max(workers + 1, workers * 2), cap)
        why = (
            f"queue {depth} > {self.high_queue_per_worker:g}/worker"
            if pressured
            else f"attainment {signals.rolling_attainment:.3f} < "
            f"{self.attainment_floor:g} with queue {depth}"
        )
        self._apply(signals, desired, why)

    def _maybe_shrink(self, signals: ControlSignals) -> None:
        if self._cooling(signals):
            return
        workers = signals.workers
        if workers <= self.min_workers:
            return
        if signals.rolling_attainment < self.attainment_floor:
            return  # never shrink a pool that is missing deadlines
        shrunken = workers - 1
        if signals.arrival_rate >= self.low_queue_per_worker * shrunken:
            return  # the smaller pool would sit above its low watermark
        self._apply(
            signals,
            shrunken,
            f"arrival rate {signals.arrival_rate:.1f}/tick < "
            f"{self.low_queue_per_worker:g} x {shrunken} workers",
        )

    # -- telemetry ------------------------------------------------------- #
    def stats(self) -> Dict[str, object]:
        ups = sum(1 for a in self.actions if a["to"] > a["from"])  # type: ignore[operator]
        return {
            "actions": len(self.actions),
            "scale_ups": ups,
            "scale_downs": len(self.actions) - ups,
            "last": self.actions[-1] if self.actions else None,
        }
