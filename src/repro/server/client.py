"""Network client + closed-loop load generator for the serving front door.

:class:`AsyncConnection` is the protocol client: it multiplexes any number
of in-flight requests over one socket by ``request_id``, a background read
task completing per-request ``asyncio.Future``\\ s as response/error frames
arrive (a dropped connection fails every outstanding future with
:class:`~repro.exceptions.WireProtocolError` — never silently).

:func:`run_load` is the measurement harness: a seeded *closed-loop* load
generator — ``connections`` sockets each keeping up to ``window`` requests
in flight, drawing from one shared request stream (reuse
:class:`~repro.fleet.traffic.TrafficGenerator` to shape it) — that records
one outcome per request and reports client-measured end-to-end p50/p99,
throughput and SLO attainment as a :class:`LoadReport`, sharing the
server's JSON export for the scheduler-side view.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import ServingError, WireProtocolError
from repro.utils.clock import perf_seconds
from repro.server import wire

__all__ = ["AsyncConnection", "RemoteResponse", "LoadReport", "run_load"]


def _disable_nagle(writer: asyncio.StreamWriter) -> None:
    """Frames are written whole and latency-sensitive; never batch them.

    Without this, pipelined multi-KB frames trip the classic Nagle /
    delayed-ACK interaction and each window of requests stalls for an ACK
    timeout — payload-size-dependent collapse, not steady throughput.
    """
    import socket

    sock = writer.get_extra_info("socket")
    if sock is not None:
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except (OSError, ValueError):  # e.g. unix sockets in tests
            pass


@dataclass(frozen=True)
class RemoteResponse:
    """One answered request as seen by the network client."""

    request_id: int
    user_id: int
    class_ids: np.ndarray
    device_id: int
    latency_ms: float        # scheduler-clock latency reported by the server
    e2e_server_ms: float     # server-measured receipt→answer wall time
    deadline_missed: bool


class AsyncConnection:
    """One client socket multiplexing pipelined requests by ``request_id``."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        codec: Optional[int] = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._codec = codec
        self._next_id = 0
        self._waiters: Dict[int, asyncio.Future] = {}
        self._closed = False
        self._read_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def open(
        cls, host: str, port: int, *, codec: Optional[int] = None
    ) -> "AsyncConnection":
        reader, writer = await asyncio.open_connection(host, port)
        _disable_nagle(writer)
        return cls(reader, writer, codec=codec)

    # ------------------------------------------------------------------ #
    @property
    def inflight(self) -> int:
        return len(self._waiters)

    def _register(self) -> "tuple[int, asyncio.Future]":
        if self._closed:
            raise WireProtocolError("connection is closed")
        self._next_id += 1
        future = asyncio.get_running_loop().create_future()
        self._waiters[self._next_id] = future
        return self._next_id, future

    async def predict(
        self,
        user_id: int,
        features: np.ndarray,
        *,
        deadline_ms: Optional[float] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> RemoteResponse:
        """Send one predict frame and await its typed answer.

        Raises the server-reported :class:`~repro.exceptions.ServingError`
        subclass on failure; callers pipelining concurrent ``predict``
        calls get per-request resolution in whatever order the server
        answers.
        """
        request_id, future = self._register()
        header, payload = wire.predict_frame(
            request_id, user_id, features,
            deadline_ms=deadline_ms, metadata=metadata,
        )
        await wire.write_frame(self._writer, header, payload, self._codec)
        return await future

    async def stats(self) -> Dict[str, Any]:
        """The server's stats export (scheduler report + wire counters)."""
        request_id, future = self._register()
        header, payload = wire.stats_request_frame(request_id)
        await wire.write_frame(self._writer, header, payload, self._codec)
        return await future

    async def close(self) -> None:
        """Polite close: ``bye`` frame, socket teardown, read task reaped."""
        if self._closed:
            return
        self._closed = True
        try:
            await wire.write_frame(self._writer, *wire.bye_frame(), self._codec)
        except (ConnectionError, OSError, WireProtocolError):
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        await asyncio.gather(self._read_task, return_exceptions=True)

    async def __aenter__(self) -> "AsyncConnection":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    async def _read_loop(self) -> None:
        error: Optional[BaseException] = None
        try:
            while True:
                frame = await wire.read_frame(self._reader)
                if frame is None:
                    break
                header, payload = frame
                kind = header.get("kind")
                request_id = header.get("request_id")
                future = self._waiters.pop(
                    int(request_id) if request_id is not None else -1, None
                )
                if future is None or future.done():
                    continue
                if kind == "response":
                    decoded = wire.decode_response(header, payload)
                    future.set_result(
                        RemoteResponse(
                            request_id=decoded["request_id"],
                            user_id=decoded["user_id"],
                            class_ids=decoded["class_ids"],
                            device_id=decoded["device_id"],
                            latency_ms=decoded["latency_ms"],
                            e2e_server_ms=decoded["e2e_ms"],
                            deadline_missed=decoded["deadline_missed"],
                        )
                    )
                elif kind == "error":
                    future.set_exception(wire.decode_error(header))
                elif kind == "stats":
                    future.set_result(dict(header.get("stats", {})))
                else:
                    future.set_exception(
                        WireProtocolError(f"unexpected frame kind {kind!r}")
                    )
        except (ConnectionError, OSError, WireProtocolError) as exc:
            error = exc
        finally:
            # Whatever ended the stream, no waiter is left hanging.
            failure = error or WireProtocolError(
                "connection closed with the request still outstanding"
            )
            for future in self._waiters.values():
                if not future.done():
                    future.set_exception(
                        failure if isinstance(failure, ServingError)
                        else WireProtocolError(str(failure))
                    )
            self._waiters.clear()


# ---------------------------------------------------------------------- #
@dataclass
class LoadReport:
    """Client-side view of one closed-loop run against the server."""

    connections: int
    window: int
    sent: int = 0
    answered: int = 0
    failed_by_type: Dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0
    windows_answered: int = 0
    deadline_missed: int = 0
    e2e_ms: List[float] = field(default_factory=list, repr=False)
    slo_target_ms: Optional[float] = None
    server_stats: Optional[Dict[str, Any]] = None

    @property
    def failed(self) -> int:
        return sum(self.failed_by_type.values())

    @property
    def throughput_rps(self) -> float:
        return self.answered / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def throughput_wps(self) -> float:
        """Feature windows answered per wall second (the bench currency)."""
        return (
            self.windows_answered / self.wall_seconds
            if self.wall_seconds > 0 else 0.0
        )

    def e2e_percentile(self, quantile: float) -> float:
        if not self.e2e_ms:
            return 0.0
        return float(np.percentile(np.asarray(self.e2e_ms), quantile))

    @property
    def slo_attainment(self) -> float:
        """Fraction of sent requests answered within the end-to-end target.

        Failures count against it.  Without a target, the fraction simply
        answered at all.
        """
        if self.sent == 0:
            return 1.0
        if self.slo_target_ms is None:
            return self.answered / self.sent
        within = sum(1 for sample in self.e2e_ms if sample <= self.slo_target_ms)
        return within / self.sent

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "connections": self.connections,
            "window": self.window,
            "sent": self.sent,
            "answered": self.answered,
            "failed": self.failed,
            "failed_by_type": dict(self.failed_by_type),
            "wall_seconds": self.wall_seconds,
            "throughput_rps": self.throughput_rps,
            "throughput_wps": self.throughput_wps,
            "windows_answered": self.windows_answered,
            "deadline_missed": self.deadline_missed,
            "e2e_p50_ms": self.e2e_percentile(50.0),
            "e2e_p99_ms": self.e2e_percentile(99.0),
            "slo_target_ms": self.slo_target_ms,
            "slo_attainment": self.slo_attainment,
        }
        if self.server_stats is not None:
            data["server_stats"] = self.server_stats
        return data

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "LoadReport":
        """Rebuild a report from :meth:`to_dict` output.

        Derived metrics (throughput, percentiles) are recomputed, not
        restored; the raw ``e2e_ms`` samples are ``repr=False`` state and do
        not travel, so a round-tripped report keeps its summary numbers but
        not per-request latencies.
        """
        return cls(
            connections=int(payload["connections"]),
            window=int(payload["window"]),
            sent=int(payload.get("sent", 0)),
            answered=int(payload.get("answered", 0)),
            failed_by_type=dict(payload.get("failed_by_type", {})),
            wall_seconds=float(payload.get("wall_seconds", 0.0)),
            windows_answered=int(payload.get("windows_answered", 0)),
            deadline_missed=int(payload.get("deadline_missed", 0)),
            slo_target_ms=payload.get("slo_target_ms"),
            server_stats=payload.get("server_stats"),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def to_text(self) -> str:
        lines = [
            "closed-loop load against the serving front door",
            "",
            f"  connections x window:   {self.connections} x {self.window}",
            f"  sent:                   {self.sent}",
            f"  answered:               {self.answered}"
            f"  ({self.throughput_rps:.0f} req/s, {self.throughput_wps:.0f} windows/s)",
            f"  failed (typed):         {self.failed}"
            + (f"  {dict(self.failed_by_type)}" if self.failed else ""),
            f"  wall:                   {self.wall_seconds:.3f} s",
            f"  e2e p50 / p99:          {self.e2e_percentile(50.0):.2f} / "
            f"{self.e2e_percentile(99.0):.2f} ms",
            f"  deadline_missed:        {self.deadline_missed}",
        ]
        if self.slo_target_ms is not None:
            lines.append(
                f"  slo_attainment:         {self.slo_attainment:.4f}"
                f"  (target {self.slo_target_ms:g} ms end-to-end)"
            )
        else:
            lines.append(f"  answered fraction:      {self.slo_attainment:.4f}")
        return "\n".join(lines)


async def run_load(
    host: str,
    port: int,
    requests: Sequence,
    *,
    connections: int = 2,
    window: int = 32,
    slo_target_ms: Optional[float] = None,
    fetch_server_stats: bool = True,
    codec: Optional[int] = None,
) -> LoadReport:
    """Drive the server closed-loop and account every request exactly once.

    ``requests`` is any sequence of request-shaped objects (``user_id``,
    ``features``, optional ``deadline_seconds`` relative to
    ``arrival_seconds`` — :class:`~repro.fleet.traffic.TrafficGenerator`
    streams work as-is; their simulated arrival offsets are ignored, only
    the *relative* deadline travels).  Each of the ``connections`` sockets
    keeps at most ``window`` requests in flight and immediately replaces
    each answered one — classic closed-loop load.  Every request ends in
    exactly one bucket: ``answered`` or ``failed_by_type[error]``
    (connection loss counts as ``WireProtocolError``), so
    ``sent == answered + failed`` always holds.
    """
    if connections <= 0 or window <= 0:
        raise ServingError(
            f"connections and window must be positive, got "
            f"{connections} and {window}"
        )
    report = LoadReport(connections=connections, window=window)
    stream = iter(requests)

    async def one(connection: AsyncConnection, request) -> None:
        deadline = getattr(request, "deadline_seconds", None)
        deadline_ms = (
            (deadline - getattr(request, "arrival_seconds", 0.0)) * 1e3
            if deadline is not None else None
        )
        loop = asyncio.get_running_loop()
        start = loop.time()
        try:
            response = await connection.predict(
                request.user_id, request.features, deadline_ms=deadline_ms
            )
        except ServingError as exc:
            name = type(exc).__name__
            report.failed_by_type[name] = report.failed_by_type.get(name, 0) + 1
        except (ConnectionError, OSError):
            # Raised from the socket write itself (the read loop maps its
            # own failures to typed errors already): same bucket.
            name = WireProtocolError.__name__
            report.failed_by_type[name] = report.failed_by_type.get(name, 0) + 1
        else:
            report.answered += 1
            report.windows_answered += int(response.class_ids.shape[0])
            report.e2e_ms.append((loop.time() - start) * 1e3)
            if response.deadline_missed:
                report.deadline_missed += 1

    async def worker(connection: AsyncConnection) -> None:
        # Closed loop: at most `window` outstanding on this socket; each
        # completion immediately admits the next request from the shared
        # stream (single-threaded loop, so plain next() is race-free).
        gate = asyncio.Semaphore(window)
        pending: set = set()

        async def guarded(request) -> None:
            try:
                await one(connection, request)
            finally:
                gate.release()

        loop = asyncio.get_running_loop()
        for request in stream:
            await gate.acquire()
            report.sent += 1
            task = loop.create_task(guarded(request))
            pending.add(task)
            task.add_done_callback(pending.discard)
        if pending:
            await asyncio.gather(*list(pending), return_exceptions=True)

    sockets = [
        await AsyncConnection.open(host, port, codec=codec)
        for _ in range(connections)
    ]
    start = perf_seconds()
    try:
        await asyncio.gather(*(worker(connection) for connection in sockets))
        report.wall_seconds = perf_seconds() - start
        if fetch_server_stats:
            try:
                report.server_stats = await sockets[0].stats()
            except ServingError:
                report.server_stats = None  # server gone mid-shutdown
    finally:
        for connection in sockets:
            await connection.close()
    report.slo_target_ms = slo_target_ms
    return report
