"""Length-prefixed binary wire format of the serving network front door.

Every message on a connection is one *frame*::

    >BII  header  payload
    │ │└─ payload length (raw little-endian array bytes, may be 0)
    │ └── header length (serialized mapping)
    └──── header codec: 0 = JSON (always available), 1 = msgpack (used
          automatically when the ``msgpack`` package is importable; a peer
          without it keeps speaking JSON — the codec byte is per frame)

The header is a small mapping carrying the message ``kind`` plus its
metadata; bulk numerics (feature windows in, class ids out) travel in the
raw payload so a request's float32 matrix is never JSON-encoded.  Kinds:

* ``predict`` — ``request_id``, ``user_id``, optional ``deadline_ms``
  (end-to-end, relative — the server stamps the absolute scheduler-clock
  deadline on arrival), optional ``metadata``, ``shape``/``dtype`` of the
  payload feature matrix;
* ``response`` — the answer: ``request_id``, ``user_id``, ``device_id``,
  scheduler ``latency_ms``, server-measured ``e2e_ms``,
  ``deadline_missed``, and the per-window class ids as an int64 payload;
* ``error`` — a typed failure: ``request_id`` (when attributable),
  ``error`` (a :class:`~repro.exceptions.ServingError` subclass name from
  :data:`WIRE_ERRORS`; unknown names decode to the base class) and
  ``message``;
* ``stats`` — request/reply pair correlated by ``request_id``; the reply
  embeds the server's :class:`~repro.fleet.router.RoutingReport` export
  plus its end-to-end counters under ``"stats"``;
* ``bye`` — polite half of a client close (EOF works too).

Framing violations — garbage prefixes, an unusable codec byte, lengths
past :data:`MAX_HEADER_BYTES`/:data:`MAX_PAYLOAD_BYTES`, or a connection
dropped mid-frame — raise :class:`~repro.exceptions.WireProtocolError`;
a clean EOF at a frame boundary reads as ``None``.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.exceptions import (
    ClientClosedError,
    DeadlineExceededError,
    ExecutorError,
    InvalidRequestError,
    RequestCancelledError,
    RequestSheddedError,
    RoutingError,
    ServingError,
    WireProtocolError,
    WorkerDiedError,
)

try:  # optional accelerator for the header codec; JSON is the floor
    import msgpack  # type: ignore
except ImportError:  # pragma: no cover - exercised where msgpack is absent
    msgpack = None

__all__ = [
    "CODEC_JSON",
    "CODEC_MSGPACK",
    "DEFAULT_CODEC",
    "MAX_HEADER_BYTES",
    "MAX_PAYLOAD_BYTES",
    "WIRE_ERRORS",
    "available_codecs",
    "encode_frame",
    "read_frame",
    "write_frame",
    "predict_frame",
    "decode_predict",
    "response_frame",
    "decode_response",
    "error_frame",
    "decode_error",
    "stats_request_frame",
    "stats_reply_frame",
    "bye_frame",
]

_PREFIX = struct.Struct(">BII")

CODEC_JSON = 0
CODEC_MSGPACK = 1

#: The codec this process encodes headers with (peers may differ per frame).
DEFAULT_CODEC = CODEC_MSGPACK if msgpack is not None else CODEC_JSON

#: A header is routing metadata, not a payload: anything this large is a
#: framing error, not a request.
MAX_HEADER_BYTES = 1 << 20
#: Upper bound on one frame's raw array payload.
MAX_PAYLOAD_BYTES = 256 << 20

#: Payload dtypes are pinned little-endian so frames are machine-portable.
_FEATURE_DTYPE = np.dtype("<f4")
_CLASS_ID_DTYPE = np.dtype("<i8")

#: Typed errors that travel by name; unknown names decode to ServingError.
WIRE_ERRORS: Dict[str, type] = {
    cls.__name__: cls
    for cls in (
        ServingError,
        InvalidRequestError,
        DeadlineExceededError,
        RoutingError,
        ExecutorError,
        WorkerDiedError,
        ClientClosedError,
        WireProtocolError,
        RequestSheddedError,
        RequestCancelledError,
    )
}


def available_codecs() -> Tuple[int, ...]:
    """Header codecs this process can decode."""
    return (CODEC_JSON, CODEC_MSGPACK) if msgpack is not None else (CODEC_JSON,)


# ---------------------------------------------------------------------- #
# framing
# ---------------------------------------------------------------------- #
def _encode_header(header: Dict[str, Any], codec: int) -> bytes:
    if codec == CODEC_MSGPACK:
        if msgpack is None:
            raise WireProtocolError(
                "cannot encode a msgpack header: the msgpack package is not "
                "installed (use CODEC_JSON)"
            )
        return msgpack.packb(header, use_bin_type=True)
    if codec == CODEC_JSON:
        return json.dumps(header, separators=(",", ":")).encode("utf-8")
    raise WireProtocolError(f"unknown header codec {codec}")


def _decode_header(raw: bytes, codec: int) -> Dict[str, Any]:
    try:
        if codec == CODEC_MSGPACK:
            if msgpack is None:
                raise WireProtocolError(
                    "peer sent a msgpack header but the msgpack package is "
                    "not installed on this side"
                )
            header = msgpack.unpackb(raw, raw=False)
        elif codec == CODEC_JSON:
            header = json.loads(raw.decode("utf-8"))
        else:
            raise WireProtocolError(f"unknown header codec byte {codec}")
    except WireProtocolError:
        raise
    except Exception as exc:
        raise WireProtocolError(f"undecodable frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise WireProtocolError(
            f"frame header must decode to a mapping, got {type(header).__name__}"
        )
    return header


def encode_frame(
    header: Dict[str, Any], payload: bytes = b"", codec: Optional[int] = None
) -> bytes:
    """One wire frame as bytes (prefix + header + payload)."""
    codec = DEFAULT_CODEC if codec is None else codec
    raw_header = _encode_header(header, codec)
    if len(raw_header) > MAX_HEADER_BYTES:
        raise WireProtocolError(
            f"frame header of {len(raw_header)} bytes exceeds the "
            f"{MAX_HEADER_BYTES}-byte bound"
        )
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise WireProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte bound"
        )
    return _PREFIX.pack(codec, len(raw_header), len(payload)) + raw_header + payload


async def read_frame(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[Dict[str, Any], bytes]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    A connection dropped mid-frame, an oversized length, or an undecodable
    header raise :class:`~repro.exceptions.WireProtocolError` — the stream
    is no longer frame-aligned and must be closed.
    """
    try:
        prefix = await reader.readexactly(_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireProtocolError(
            f"connection closed mid-prefix ({len(exc.partial)} of "
            f"{_PREFIX.size} bytes)"
        ) from exc
    codec, header_length, payload_length = _PREFIX.unpack(prefix)
    if header_length > MAX_HEADER_BYTES:
        raise WireProtocolError(
            f"frame announces a {header_length}-byte header "
            f"(bound: {MAX_HEADER_BYTES}); stream is not frame-aligned"
        )
    if payload_length > MAX_PAYLOAD_BYTES:
        raise WireProtocolError(
            f"frame announces a {payload_length}-byte payload "
            f"(bound: {MAX_PAYLOAD_BYTES}); stream is not frame-aligned"
        )
    try:
        raw_header = await reader.readexactly(header_length)
        payload = await reader.readexactly(payload_length) if payload_length else b""
    except asyncio.IncompleteReadError as exc:
        raise WireProtocolError("connection closed mid-frame") from exc
    return _decode_header(raw_header, codec), payload


async def write_frame(
    writer: asyncio.StreamWriter,
    header: Dict[str, Any],
    payload: bytes = b"",
    codec: Optional[int] = None,
) -> None:
    """Encode and send one frame, honouring the transport's backpressure."""
    writer.write(encode_frame(header, payload, codec))
    await writer.drain()


# ---------------------------------------------------------------------- #
# message kinds
# ---------------------------------------------------------------------- #
def predict_frame(
    request_id: int,
    user_id: int,
    features: np.ndarray,
    *,
    deadline_ms: Optional[float] = None,
    metadata: Optional[Dict[str, Any]] = None,
) -> Tuple[Dict[str, Any], bytes]:
    """A predict request's (header, payload) pair.

    ``deadline_ms`` is *relative* (milliseconds from server receipt); the
    feature matrix ships as little-endian float32 raw bytes.
    """
    features = np.ascontiguousarray(features, dtype=_FEATURE_DTYPE)
    if features.ndim == 1:
        features = features[None, :]
    header: Dict[str, Any] = {
        "kind": "predict",
        "request_id": int(request_id),
        "user_id": int(user_id),
        "shape": [int(dim) for dim in features.shape],
    }
    if deadline_ms is not None:
        header["deadline_ms"] = float(deadline_ms)
    if metadata is not None:
        header["metadata"] = metadata
    return header, features.tobytes()


def decode_predict(
    header: Dict[str, Any], payload: bytes
) -> Tuple[int, int, np.ndarray, Optional[float], Optional[Dict[str, Any]]]:
    """``(request_id, user_id, features, deadline_ms, metadata)`` of a frame.

    Framing-level problems (shape/payload mismatch) raise
    :class:`~repro.exceptions.WireProtocolError`; request-level problems
    (negative user id, empty feature batch, non-positive deadline) raise
    :class:`~repro.exceptions.InvalidRequestError` — both travel back as
    typed error frames without killing the connection.
    """
    try:
        request_id = int(header["request_id"])
        user_id = int(header["user_id"])
        shape = tuple(int(dim) for dim in header["shape"])
    except (KeyError, TypeError, ValueError) as exc:
        raise WireProtocolError(f"malformed predict header: {exc}") from exc
    if len(shape) != 2:
        raise InvalidRequestError(
            f"predict frames carry a 2-D (n_windows, n_features) matrix, "
            f"got shape {shape}"
        )
    expected = shape[0] * shape[1] * _FEATURE_DTYPE.itemsize
    if len(payload) != expected:
        raise WireProtocolError(
            f"predict payload is {len(payload)} bytes but shape {shape} "
            f"needs {expected}"
        )
    features = np.frombuffer(payload, dtype=_FEATURE_DTYPE).reshape(shape)
    deadline_ms = header.get("deadline_ms")
    if deadline_ms is not None:
        deadline_ms = float(deadline_ms)
        if deadline_ms <= 0:
            raise InvalidRequestError(
                f"deadline_ms must be positive, got {deadline_ms}"
            )
    return request_id, user_id, features, deadline_ms, header.get("metadata")


def response_frame(
    request_id: int,
    user_id: int,
    class_ids: np.ndarray,
    *,
    device_id: int,
    latency_ms: float,
    e2e_ms: float,
    deadline_missed: bool,
) -> Tuple[Dict[str, Any], bytes]:
    """An answered request's (header, payload) pair (int64 class ids)."""
    class_ids = np.ascontiguousarray(class_ids, dtype=_CLASS_ID_DTYPE)
    header = {
        "kind": "response",
        "request_id": int(request_id),
        "user_id": int(user_id),
        "device_id": int(device_id),
        "latency_ms": float(latency_ms),
        "e2e_ms": float(e2e_ms),
        "deadline_missed": bool(deadline_missed),
        "n_windows": int(class_ids.shape[0]),
    }
    return header, class_ids.tobytes()


def decode_response(header: Dict[str, Any], payload: bytes) -> Dict[str, Any]:
    """A response frame's fields, with ``class_ids`` decoded from the payload."""
    try:
        n_windows = int(header["n_windows"])
    except (KeyError, TypeError, ValueError) as exc:
        raise WireProtocolError(f"malformed response header: {exc}") from exc
    if len(payload) != n_windows * _CLASS_ID_DTYPE.itemsize:
        raise WireProtocolError(
            f"response payload is {len(payload)} bytes but announces "
            f"{n_windows} class ids"
        )
    return {
        "request_id": int(header["request_id"]),
        "user_id": int(header.get("user_id", -1)),
        "device_id": int(header.get("device_id", -1)),
        "latency_ms": float(header.get("latency_ms", 0.0)),
        "e2e_ms": float(header.get("e2e_ms", 0.0)),
        "deadline_missed": bool(header.get("deadline_missed", False)),
        "class_ids": np.frombuffer(payload, dtype=_CLASS_ID_DTYPE),
    }


def error_frame(
    error: BaseException, request_id: Optional[int] = None
) -> Tuple[Dict[str, Any], bytes]:
    """A typed failure as a frame; the class travels by registry name."""
    name = type(error).__name__
    if name not in WIRE_ERRORS:
        # Non-registry (or non-serving) failures degrade to the base class
        # on the peer but keep their message.
        name = "ServingError"
    header: Dict[str, Any] = {
        "kind": "error",
        "error": name,
        "message": str(error),
    }
    if request_id is not None:
        header["request_id"] = int(request_id)
    return header, b""


def decode_error(header: Dict[str, Any]) -> ServingError:
    """Rebuild the typed exception carried by an error frame."""
    error_class = WIRE_ERRORS.get(str(header.get("error")), ServingError)
    return error_class(str(header.get("message", "unspecified serving error")))


def stats_request_frame(request_id: int) -> Tuple[Dict[str, Any], bytes]:
    return {"kind": "stats", "request_id": int(request_id)}, b""


def stats_reply_frame(
    request_id: int, stats: Dict[str, Any]
) -> Tuple[Dict[str, Any], bytes]:
    return {"kind": "stats", "request_id": int(request_id), "stats": stats}, b""


def bye_frame() -> Tuple[Dict[str, Any], bytes]:
    return {"kind": "bye"}, b""
