"""CLI runners for the network front door: ``pilote serve-net`` / ``bench-client``.

``serve-net`` stands up a real asyncio socket server over a freshly built
serving fleet (flat or hierarchical past ``--regions``) and answers wire
traffic for a bounded duration (or forever); ``bench-client`` is the
matching closed-loop load generator — pointed at a running server, or
self-hosting a loopback server when no ``--port`` is given, which makes it
a one-command end-to-end demo of the whole stack: traffic generation →
wire frames → asyncio bridge → scheduler → process executor → SLO report.

The fleet serves a *training-free* learner (class prototypes set directly,
as ``benchmarks/bench_workers.py`` does) so the CLI spends its time on
serving, not on gradient pre-training.
"""

from __future__ import annotations

import asyncio
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.backend import precision
from repro.core.config import PiloteConfig
from repro.core.embedding import EmbeddingNetwork
from repro.core.pilote import PILOTE
from repro.edge.device import DeviceProfile
from repro.edge.transfer import package_for_edge
from repro.exceptions import ConfigurationError
from repro.fleet.coordinator import FleetCoordinator, HierarchicalFleetCoordinator
from repro.fleet.traffic import TrafficGenerator, WorkloadSpec
from repro.serving.client import serve
from repro.server.client import LoadReport, run_load
from repro.server.server import ServingServer
from repro.utils.logging import get_logger
from repro.utils.rng import resolve_rng

logger = get_logger("server.simulation")

#: Homogeneous simulation node (generous budgets, reference-speed compute).
SIM_NODE = DeviceProfile(
    "sim-node", storage_bytes=256 * 2**20, memory_bytes=2**30, relative_compute=1.0
)

#: Serving-only backbone: wide enough that batches do real work, small
#: enough that the CLI starts in seconds.
SERVING_CONFIG = PiloteConfig(
    hidden_dims=(256, 128), embedding_dim=32, cache_size=1200, seed=0
)
N_FEATURES = 80


def make_serving_learner(
    config: PiloteConfig = SERVING_CONFIG,
    *,
    n_classes: int = 5,
    per_class: int = 150,
    n_features: int = N_FEATURES,
    seed: int = 0,
) -> PILOTE:
    """A pre-trained-looking learner built without gradient training."""
    rng = resolve_rng(seed)
    learner = PILOTE(config, seed=seed)
    learner.model = EmbeddingNetwork(n_features, config=config, rng=seed)
    learner._old_classes = list(range(n_classes))
    for class_id in range(n_classes):
        learner.exemplars.set_exemplars(
            class_id, rng.normal(size=(per_class, n_features))
        )
    learner._refresh_prototypes()
    return learner


def build_serving_fleet(
    n_devices: int,
    *,
    regions: Optional[int] = None,
    config: PiloteConfig = SERVING_CONFIG,
    seed: int = 0,
) -> FleetCoordinator:
    """A deployed, warmed fleet ready to sit behind the front door.

    With ``regions`` the fleet is a
    :class:`~repro.fleet.HierarchicalFleetCoordinator` — the server then
    fronts its pooled regional serving lanes, exactly what ``serve()``
    builds for million-device simulations.
    """
    if n_devices <= 0:
        raise ConfigurationError(f"n_devices must be positive, got {n_devices}")
    package = package_for_edge(make_serving_learner(config, seed=seed))
    if regions is not None:
        fleet: FleetCoordinator = HierarchicalFleetCoordinator(
            config, profiles=(SIM_NODE,), seed=seed, n_regions=regions
        )
    else:
        fleet = FleetCoordinator(config, profiles=(SIM_NODE,), seed=seed)
    fleet.provision(n_devices)
    fleet.deploy(package)
    lanes = (
        fleet.serving_lanes()
        if isinstance(fleet, HierarchicalFleetCoordinator)
        else fleet.devices
    )
    for lane in lanes:
        engine = getattr(lane, "engine", None)
        if engine is not None:
            engine.warm()
    return fleet


def _feature_pool(seed: int, n_rows: int = 4096) -> np.ndarray:
    return (
        resolve_rng(seed)
        .normal(size=(n_rows, N_FEATURES))
        .astype(np.float32)
    )


# ---------------------------------------------------------------------- #
@dataclass
class ServeNetResult:
    """What ``pilote serve-net`` prints after the serving window closes."""

    host: str
    port: int
    duration_seconds: float
    n_devices: int
    routing: str
    scheduling: str
    executor: str
    regions: Optional[int]
    stats: Dict[str, Any] = field(default_factory=dict)

    def to_text(self) -> str:
        server = self.stats.get("server", {})
        report = self.stats.get("report", {})
        fleet = (
            f"{self.n_devices} devices"
            + (f" in {self.regions} regions" if self.regions else "")
        )
        lines = [
            "network front door: asyncio serving bridge over the fleet",
            "",
            f"  listened on:          {self.host}:{self.port}"
            f"  ({self.duration_seconds:g}s window)",
            f"  fleet:                {fleet}  (routing {self.routing}, "
            f"scheduling {self.scheduling}, executor {self.executor})",
            f"  connections:          {server.get('connections_total', 0)}",
            f"  received:             {server.get('received', 0)}",
            f"  answered:             {server.get('answered', 0)}",
            f"  failed (typed):       {server.get('failed', 0)}"
            + (
                f"  {server.get('failed_by_type')}"
                if server.get("failed", 0)
                else ""
            ),
            f"  e2e p50 / p99:        {server.get('e2e_p50_ms', 0.0):.2f} / "
            f"{server.get('e2e_p99_ms', 0.0):.2f} ms",
            f"  windows served:       {report.get('total_windows', 0)}"
            f"  (scheduler clock: {report.get('clock', '?')})",
        ]
        if "slo_attainment" in server:
            lines.append(
                f"  slo_attainment:       {server['slo_attainment']:.4f}"
                f"  (target {server.get('slo_target_ms', 0):g} ms)"
            )
        lines.append(
            "  every received request was answered or failed typed exactly once"
        )
        return "\n".join(lines)


def run_server(
    settings=None,
    *,
    host: str = "127.0.0.1",
    port: int = 7431,
    duration: float = 10.0,
    n_devices: Optional[int] = None,
    routing: Optional[str] = None,
    scheduling: Optional[str] = None,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    regions: Optional[int] = None,
    slo_target_ms: Optional[float] = None,
) -> ServeNetResult:
    """Build a fleet, serve it over a socket for ``duration`` seconds.

    ``duration <= 0`` serves until interrupted.  The ``settings`` argument
    (the CLI's scale preset) only contributes its seed: the fleet serves a
    training-free learner so startup is fast.
    """
    n_devices = n_devices if n_devices is not None else 4
    seed = getattr(settings, "seed", 0) if settings is not None else 0
    scheduling = scheduling or "fifo"
    executor_name = executor or "process"

    async def _serve() -> ServeNetResult:
        with precision("edge"):
            fleet = build_serving_fleet(n_devices, regions=regions, seed=seed)
            client = serve(
                fleet, routing=routing, seed=seed, scheduling=scheduling,
                executor=executor_name, workers=workers,
            )
            server = ServingServer(
                client, host=host, port=port, slo_target_ms=slo_target_ms
            )
            bound_host, bound_port = await server.start()
            print(
                f"pilote serve-net: listening on {bound_host}:{bound_port} "
                f"({n_devices} devices, executor {executor_name})",
                file=sys.stderr,
                flush=True,
            )
            try:
                if duration > 0:
                    await asyncio.sleep(duration)
                else:
                    await asyncio.Event().wait()  # forever (Ctrl-C to stop)
            finally:
                stats = await server.stats_dict()
                await server.stop()
            return ServeNetResult(
                host=bound_host,
                port=bound_port,
                duration_seconds=duration,
                n_devices=n_devices,
                routing=client.routing,
                scheduling=scheduling,
                executor=executor_name,
                regions=regions,
                stats=stats,
            )

    return asyncio.run(_serve())


# ---------------------------------------------------------------------- #
@dataclass
class BenchClientResult:
    """What ``pilote bench-client`` prints: the closed-loop load report."""

    load: LoadReport
    host: str
    port: int
    self_hosted: bool

    def to_text(self) -> str:
        lines = [self.load.to_text()]
        target = (
            f"self-hosted loopback server on {self.host}:{self.port}"
            if self.self_hosted
            else f"server at {self.host}:{self.port}"
        )
        lines.append(f"  target:                 {target}")
        server_stats = self.load.server_stats or {}
        report = server_stats.get("report", {})
        if report:
            lines.append(
                f"  server windows served:  {report.get('total_windows', 0)}"
                f"  (clock: {report.get('clock', '?')}, "
                f"devices: {report.get('devices', 0)})"
            )
        return "\n".join(lines)


def run_bench(
    settings=None,
    *,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    n_requests: int = 256,
    connections: int = 2,
    window: int = 16,
    pattern: str = "zipf",
    windows_per_request: int = 8,
    deadline_ms: Optional[float] = None,
    n_devices: Optional[int] = None,
    routing: Optional[str] = None,
    scheduling: Optional[str] = None,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    regions: Optional[int] = None,
) -> BenchClientResult:
    """Closed-loop load against a front-door server.

    With ``port`` given, drives the external server at ``host:port`` (the
    fleet flags are ignored — the server picked its own fleet).  Without
    it, self-hosts a loopback server first, so one command exercises the
    full path.
    """
    seed = getattr(settings, "seed", 0) if settings is not None else 0
    spec = WorkloadSpec(
        pattern=pattern,
        n_users=256,
        requests_per_tick=n_requests,
        n_ticks=1,
        windows_per_request=windows_per_request,
        deadline_seconds=deadline_ms / 1e3 if deadline_ms is not None else None,
    )
    requests = TrafficGenerator(_feature_pool(seed), spec, seed=seed).requests()

    async def _drive(target_host: str, target_port: int) -> LoadReport:
        return await run_load(
            target_host,
            target_port,
            requests,
            connections=connections,
            window=window,
            slo_target_ms=deadline_ms,
        )

    if port is not None:
        load = asyncio.run(_drive(host, port))
        return BenchClientResult(load=load, host=host, port=port, self_hosted=False)

    async def _self_hosted() -> BenchClientResult:
        with precision("edge"):
            fleet = build_serving_fleet(
                n_devices if n_devices is not None else 4,
                regions=regions,
                seed=seed,
            )
            client = serve(
                fleet, routing=routing, seed=seed,
                scheduling=scheduling or "fifo",
                executor=executor or "process", workers=workers,
            )
            server = ServingServer(client, slo_target_ms=deadline_ms)
            bound_host, bound_port = await server.start()
            try:
                load = await _drive(bound_host, bound_port)
            finally:
                await server.stop()
            return BenchClientResult(
                load=load, host=bound_host, port=bound_port, self_hosted=True
            )

    return asyncio.run(_self_hosted())
