"""Asyncio socket server fronting a :class:`~repro.serving.ServingClient`.

The network half of the front door: an ``asyncio.start_server`` listener
speaking the length-prefixed frame protocol of :mod:`repro.server.wire`,
bridged to the serving stack through
:class:`~repro.server.bridge.AsyncServingClient`.  Design points:

* **streaming ingestion** — each connection's reader task decodes frames
  as they arrive and spawns one answer task per predict, so a client can
  pipeline an arbitrary number of requests over one socket;
* **per-client backpressure** — a bounded in-flight window (semaphore) per
  connection stops the reader when the client has too many unanswered
  requests, pushing back through TCP on *that* socket only; responses go
  through a bounded per-connection outbox drained by a dedicated writer
  task, so one slow reader never stalls other connections (its answer
  tasks block on its own outbox while everyone else's flow);
* **typed errors** — every failure a request can hit (malformed frame
  fields, admission rejection, queue expiry, worker death, shutdown) is
  mapped to a :class:`~repro.exceptions.ServingError` subclass and sent
  back as an error frame carrying the class name; framing violations
  close the connection after a best-effort error frame (the byte stream
  is no longer frame-aligned);
* **graceful shutdown** — :meth:`ServingServer.stop` stops accepting,
  cancels the readers, gives in-flight futures a grace period to complete,
  fails stragglers with :class:`~repro.exceptions.DeadlineExceededError`,
  flushes every connection's outbox, and closes the bridge; each received
  request is answered or failed typed **exactly once**
  (``ServerStats.received == answered + failed``).
"""

from __future__ import annotations

import asyncio
from collections import Counter
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.exceptions import (
    ClientClosedError,
    DeadlineExceededError,
    ServingError,
    WireProtocolError,
)
from repro.serving.client import ServingClient
from repro.server.bridge import AsyncServingClient, RequestSpec
from repro.server import wire
from repro.utils.logging import get_logger

__all__ = ["ServingServer", "ServerStats"]

logger = get_logger("server")

#: Server-side end-to-end latency samples kept for percentile views.
_E2E_HISTORY_CAP = 100_000


class ServerStats:
    """End-to-end accounting of every predict frame the server received.

    The wire-level complement to the scheduler's
    :class:`~repro.fleet.router.RoutingReport`: latencies here are measured
    from frame receipt to answer enqueue on the event loop's wall clock, so
    they include bridging, queueing and execution.  The exactly-once
    invariant the shutdown tests gate is ``received == answered + failed``.
    """

    __slots__ = (
        "received", "answered", "failed_by_type", "deadline_carried",
        "deadline_missed", "e2e_seconds", "connections_total",
    )

    def __init__(self) -> None:
        self.received = 0
        self.answered = 0
        self.failed_by_type: Counter = Counter()
        self.deadline_carried = 0
        self.deadline_missed = 0
        self.e2e_seconds: List[float] = []
        self.connections_total = 0

    @property
    def failed(self) -> int:
        return sum(self.failed_by_type.values())

    def record_answer(self, response, e2e_seconds: float) -> None:
        self.answered += 1
        self.e2e_seconds.append(e2e_seconds)
        if len(self.e2e_seconds) > 2 * _E2E_HISTORY_CAP:
            del self.e2e_seconds[: len(self.e2e_seconds) - _E2E_HISTORY_CAP]
        deadline = getattr(response.request, "deadline_seconds", None)
        if deadline is not None:
            self.deadline_carried += 1
            if response.deadline_missed:
                self.deadline_missed += 1

    def record_failure(self, error: BaseException) -> None:
        self.failed_by_type[type(error).__name__] += 1

    def e2e_percentile(self, quantile: float) -> float:
        if not self.e2e_seconds:
            return 0.0
        import numpy as np

        return float(np.percentile(np.asarray(self.e2e_seconds), quantile))

    def slo_attainment(self, target_seconds: float) -> float:
        """Fraction of received requests answered within ``target_seconds``.

        Failed requests count against it; ``1.0`` when nothing arrived.
        The sample window is bounded like the scheduler's, weighted by the
        all-time counters the same way ``RoutingReport.slo_attainment`` is.
        """
        resolved = self.answered + self.failed
        if resolved == 0:
            return 1.0
        if not self.e2e_seconds:
            return 0.0
        within = sum(1 for sample in self.e2e_seconds if sample <= target_seconds)
        answered_within = within / len(self.e2e_seconds) * self.answered
        return answered_within / resolved

    def to_dict(self) -> Dict[str, Any]:
        return {
            "received": self.received,
            "answered": self.answered,
            "failed": self.failed,
            "failed_by_type": dict(self.failed_by_type),
            "deadline_carried": self.deadline_carried,
            "deadline_missed": self.deadline_missed,
            "e2e_p50_ms": self.e2e_percentile(50.0) * 1e3,
            "e2e_p99_ms": self.e2e_percentile(99.0) * 1e3,
            "connections_total": self.connections_total,
        }


class _Connection:
    """One client socket: reader, bounded in-flight window, writer task."""

    def __init__(
        self,
        server: "ServingServer",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_inflight: int,
        outbox_frames: int = 128,
    ) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        self.window = asyncio.Semaphore(max_inflight)
        self.outbox: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue(
            maxsize=outbox_frames
        )
        self.answer_tasks: Set[asyncio.Task] = set()
        self.inflight_futures: Set[asyncio.Future] = set()
        self.reader_task: Optional[asyncio.Task] = None
        self.broken = False
        self.writer_task = asyncio.get_running_loop().create_task(
            self._write_loop()
        )

    # -- outbound ------------------------------------------------------- #
    async def send(self, header: Dict[str, Any], payload: bytes = b"") -> None:
        """Queue one frame on this connection's outbox (bounded)."""
        if self.broken:
            return
        await self.outbox.put(wire.encode_frame(header, payload))

    async def _write_loop(self) -> None:
        """Drain the outbox to the socket; a dead peer flips ``broken``.

        Keeps consuming after a write failure so queued ``send`` calls
        never deadlock on a full outbox to a gone peer.
        """
        while True:
            frame = await self.outbox.get()
            if frame is None:
                return
            if self.broken:
                continue
            try:
                self.writer.write(frame)
                await self.writer.drain()
            except (ConnectionError, OSError, RuntimeError):
                self.broken = True

    # -- inbound -------------------------------------------------------- #
    async def run(self) -> None:
        """Read frames until EOF/``bye``/framing failure."""
        loop = asyncio.get_running_loop()
        while True:
            try:
                frame = await wire.read_frame(self.reader)
            except WireProtocolError as exc:
                await self.send(*wire.error_frame(exc))
                return
            if frame is None:
                return
            header, payload = frame
            kind = header.get("kind")
            if kind == "predict":
                await self.window.acquire()
                self.server.stats.received += 1
                task = loop.create_task(self._answer(header, payload))
                self.answer_tasks.add(task)
                task.add_done_callback(self.answer_tasks.discard)
            elif kind == "stats":
                task = loop.create_task(self._answer_stats(header))
                self.answer_tasks.add(task)
                task.add_done_callback(self.answer_tasks.discard)
            elif kind == "bye":
                return
            else:
                await self.send(
                    *wire.error_frame(
                        WireProtocolError(f"unknown frame kind {kind!r}"),
                        header.get("request_id"),
                    )
                )

    async def _answer(self, header: Dict[str, Any], payload: bytes) -> None:
        """Resolve one predict frame: exactly one response or error frame."""
        loop = asyncio.get_running_loop()
        start = loop.time()
        request_id = header.get("request_id")
        stats = self.server.stats
        future: Optional[asyncio.Future] = None
        try:
            request_id, user_id, features, deadline_ms, metadata = (
                wire.decode_predict(header, payload)
            )
            if self.server.closing:
                raise ClientClosedError("server is shutting down")
            spec = RequestSpec(
                user_id,
                features,
                relative_deadline_seconds=(
                    deadline_ms / 1e3 if deadline_ms is not None else None
                ),
                metadata=metadata,
                request_id=request_id,
            )
            future = self.server.bridge.submit_spec(spec)
            self.inflight_futures.add(future)
            response = await future
        except asyncio.CancelledError:
            # Shutdown cancelled this answer task outright; still settle
            # the frame exactly once before propagating.
            stats.record_failure(DeadlineExceededError("server shutting down"))
            await asyncio.shield(
                self.send(
                    *wire.error_frame(
                        DeadlineExceededError(
                            "server shut down before the request completed"
                        ),
                        request_id,
                    )
                )
            )
            raise
        except ServingError as exc:
            stats.record_failure(exc)
            await self.send(*wire.error_frame(exc, request_id))
        except Exception as exc:  # defensive: nothing may escape unanswered
            logger.exception("unexpected failure answering request %s", request_id)
            stats.record_failure(exc)
            await self.send(*wire.error_frame(ServingError(str(exc)), request_id))
        else:
            e2e = loop.time() - start
            stats.record_answer(response, e2e)
            await self.send(
                *wire.response_frame(
                    request_id if request_id is not None else -1,
                    response.user_id,
                    response.class_ids,
                    device_id=response.device_id,
                    latency_ms=response.latency_seconds * 1e3,
                    e2e_ms=e2e * 1e3,
                    deadline_missed=response.deadline_missed,
                )
            )
        finally:
            if future is not None:
                self.inflight_futures.discard(future)
            self.window.release()

    async def _answer_stats(self, header: Dict[str, Any]) -> None:
        request_id = int(header.get("request_id", -1))
        stats = await self.server.stats_dict()
        await self.send(*wire.stats_reply_frame(request_id, stats))

    # -- teardown ------------------------------------------------------- #
    async def finish(self) -> None:
        """Flush and close: answers complete, outbox drains, socket closes.

        Cancellation-safe: ``stop()`` cancels reader tasks, and when the
        reader already left ``run()`` on its own (the peer closed first)
        the cancel lands *here*, mid-flush.  At that point the flush is as
        complete as the grace period allows — swallow the cancel, stop the
        writer, and still close the socket.
        """
        try:
            if self.answer_tasks:
                await asyncio.gather(
                    *list(self.answer_tasks), return_exceptions=True
                )
            await self.outbox.put(None)
            await self.writer_task
        except asyncio.CancelledError:
            self.broken = True
            self.writer_task.cancel()
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError, RuntimeError, asyncio.CancelledError):
            pass


class ServingServer:
    """The asyncio network front door over a serving client.

    Parameters
    ----------
    client:
        The :class:`~repro.serving.ServingClient` answering the traffic —
        anything :func:`repro.serving.serve` can build, from a bare learner
        to a :class:`~repro.fleet.HierarchicalFleetCoordinator` fleet.  The
        server owns it from :meth:`start` on and closes it in :meth:`stop`.
    host / port:
        Listen address; port ``0`` picks a free port (see :attr:`address`
        after :meth:`start`).
    max_inflight_per_connection:
        Per-client backpressure window: a connection with this many
        unanswered predicts stops being read until answers flow.
    slo_target_ms:
        Optional end-to-end latency target reported by the stats endpoint.
    """

    def __init__(
        self,
        client: ServingClient,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight_per_connection: int = 64,
        slo_target_ms: Optional[float] = None,
    ) -> None:
        if max_inflight_per_connection <= 0:
            raise ServingError(
                "max_inflight_per_connection must be positive, got "
                f"{max_inflight_per_connection}"
            )
        self._client = client
        self._host = host
        self._port = port
        self._max_inflight = max_inflight_per_connection
        self.slo_target_ms = slo_target_ms
        self.stats = ServerStats()
        self.closing = False
        self.bridge: Optional[AsyncServingClient] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: Set[_Connection] = set()
        self.address: Optional[Tuple[str, int]] = None

    # ------------------------------------------------------------------ #
    async def start(self) -> Tuple[str, int]:
        """Bind the listener and the bridge; returns ``(host, port)``."""
        if self._server is not None:
            raise ServingError("the server is already started")
        self.bridge = AsyncServingClient(self._client)
        self._server = await asyncio.start_server(
            self._on_connection, self._host, self._port
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        logger.info("serving on %s:%d", *self.address)
        return self.address

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def __aenter__(self) -> "ServingServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def stats_dict(self) -> Dict[str, Any]:
        """The shared JSON export: scheduler report + wire-level counters."""
        assert self.bridge is not None
        report = await self.bridge.report_dict(
            slo_target_seconds=(
                self.slo_target_ms / 1e3 if self.slo_target_ms is not None else None
            )
        )
        data = {"report": report, "server": self.stats.to_dict()}
        control = await self.bridge.control_stats()
        if control is not None:
            data["control"] = control
        if self.slo_target_ms is not None:
            data["server"]["slo_target_ms"] = self.slo_target_ms
            data["server"]["slo_attainment"] = self.stats.slo_attainment(
                self.slo_target_ms / 1e3
            )
        return data

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self.closing:
            writer.close()
            return
        from repro.server.client import _disable_nagle

        _disable_nagle(writer)
        connection = _Connection(
            self, reader, writer, max_inflight=self._max_inflight
        )
        connection.reader_task = asyncio.current_task()
        self._connections.add(connection)
        self.stats.connections_total += 1
        try:
            await connection.run()
        except asyncio.CancelledError:
            pass  # graceful stop cancels readers; teardown still flushes
        except (ConnectionError, OSError):
            connection.broken = True
        finally:
            await connection.finish()
            self._connections.discard(connection)

    # ------------------------------------------------------------------ #
    async def stop(self, grace_seconds: float = 1.0) -> None:
        """Graceful shutdown: drain in-flight, fail stragglers typed.

        Ordering: stop accepting → stop reading (no new requests) → give
        requests already handed to the scheduler ``grace_seconds`` to
        complete → fail still-pending futures with
        :class:`~repro.exceptions.DeadlineExceededError` (their answer
        tasks flush the typed error frames) → flush and close every
        connection → close the bridge and the serving client.  Every
        received request settles exactly once.
        """
        if self._server is None or self.closing:
            return
        self.closing = True
        self._server.close()
        await self._server.wait_closed()
        connections = list(self._connections)
        for connection in connections:
            if connection.reader_task is not None:
                connection.reader_task.cancel()
        pending = [
            future
            for connection in connections
            for future in list(connection.inflight_futures)
            if not future.done()
        ]
        if pending:
            await asyncio.wait(pending, timeout=grace_seconds)
            for future in pending:
                if not future.done():
                    future.set_exception(
                        DeadlineExceededError(
                            "server shut down before the request completed "
                            f"(grace period {grace_seconds:g}s elapsed)"
                        )
                    )
        # Readers were cancelled; their finally blocks flush answers and
        # close sockets.  Bound the wait so a wedged peer cannot hold
        # shutdown hostage, then force-close whatever remains.
        reader_tasks = [
            connection.reader_task
            for connection in connections
            if connection.reader_task is not None
        ]
        if reader_tasks:
            _, stuck = await asyncio.wait(
                reader_tasks, timeout=max(grace_seconds, 0.1) + 5.0
            )
            for task in stuck:  # pragma: no cover - wedged-peer fallback
                task.cancel()
        if self.bridge is not None:
            await self.bridge.aclose()
        logger.info(
            "server stopped: %d received = %d answered + %d failed",
            self.stats.received, self.stats.answered, self.stats.failed,
        )
