"""Network front door for the serving stack.

Three layers, each usable on its own:

* :mod:`repro.server.bridge` — :class:`AsyncServingClient`, the asyncio
  facade over the synchronous :class:`~repro.serving.ServingClient`
  (event-driven: ``PendingResult`` callbacks → ``asyncio.Future``\\ s, no
  polling, one pump thread owns the scheduler);
* :mod:`repro.server.server` — :class:`ServingServer`, an asyncio socket
  server speaking the length-prefixed wire format of
  :mod:`repro.server.wire`, with per-connection backpressure and a
  graceful drain-then-fail-typed shutdown;
* :mod:`repro.server.client` — :class:`AsyncConnection` plus
  :func:`run_load`, the closed-loop load generator that reuses
  :class:`~repro.fleet.TrafficGenerator` streams over the wire and reports
  e2e percentiles and SLO attainment.
"""

from repro.server import wire
from repro.server.bridge import AsyncServingClient, RequestSpec
from repro.server.client import AsyncConnection, LoadReport, RemoteResponse, run_load
from repro.server.server import ServerStats, ServingServer

__all__ = [
    "AsyncConnection",
    "AsyncServingClient",
    "LoadReport",
    "RemoteResponse",
    "RequestSpec",
    "ServerStats",
    "ServingServer",
    "run_load",
    "wire",
]
