"""Asyncio bridge over the synchronous :class:`~repro.serving.ServingClient`.

The serving stack is completion-callback based all the way down —
:class:`~repro.serving.PendingResult` fires ``add_done_callback`` the moment
its batch finishes, including from the process executor's IPC result queue —
but its ``submit``/``drain`` surface is synchronous and the scheduler is not
thread-safe.  :class:`AsyncServingClient` turns that surface into native
``asyncio`` futures without polling and without a thread per request:

* every scheduler touch (materialising requests, ``submit_many``,
  ``drain``, ``report``, ``close``) runs on **one** dedicated pump thread,
  so the event loop never blocks on engine compute and the scheduler never
  sees two threads;
* ``submit()`` (loop side) buffers the request and returns an
  ``asyncio.Future`` immediately; the pump coroutine ships the buffer to
  the pump thread in batches, so co-arriving network requests coalesce
  into the same engine batches an in-process caller would get;
* completion crosses back via ``PendingResult.add_done_callback`` →
  ``loop.call_soon_threadsafe`` — results land on the loop as they finish,
  event-driven end to end;
* ``drain()`` is an awaitable that resolves when every in-flight request
  has settled (the pump keeps pumping; nothing busy-waits).

Wire requests arrive with *relative* deadlines and no meaningful arrival
time, so the bridge ships :class:`RequestSpec`\\ s and stamps both on the
pump thread from the scheduler's own clock
(:meth:`~repro.serving.EventLoopScheduler.clock_now`): all requests of one
pump batch share an arrival, keeping the scheduler's coalescing and
latency accounting exactly as an in-process stream would.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import ClientClosedError
from repro.serving.client import ServingClient
from repro.serving.protocol import PredictRequest, PredictResponse

__all__ = ["AsyncServingClient", "RequestSpec"]


class RequestSpec:
    """A not-yet-stamped request: everything but the scheduler-clock times.

    Network callers know *relative* deadlines ("answer within 50 ms"), not
    the scheduler clock; the bridge materialises the absolute
    :class:`~repro.serving.PredictRequest` on the pump thread, stamping
    ``arrival_seconds`` from the scheduler's current clock and the deadline
    relative to it.
    """

    __slots__ = (
        "user_id", "features", "relative_deadline_seconds", "metadata",
        "request_id",
    )

    def __init__(
        self,
        user_id: int,
        features: np.ndarray,
        *,
        relative_deadline_seconds: Optional[float] = None,
        metadata: Optional[Dict[str, Any]] = None,
        request_id: Optional[int] = None,
    ) -> None:
        self.user_id = user_id
        self.features = features
        self.relative_deadline_seconds = relative_deadline_seconds
        self.metadata = metadata
        self.request_id = request_id

    def materialize(self, arrival_seconds: float) -> PredictRequest:
        """The absolute request, stamped at ``arrival_seconds``.

        Raises :class:`~repro.exceptions.InvalidRequestError` (from the
        request's own validation) on malformed payloads — the bridge fails
        just this spec's future, not the whole pump batch.
        """
        deadline = (
            arrival_seconds + self.relative_deadline_seconds
            if self.relative_deadline_seconds is not None
            else None
        )
        return PredictRequest(
            user_id=self.user_id,
            features=self.features,
            arrival_seconds=arrival_seconds,
            deadline_seconds=deadline,
            metadata=self.metadata,
            request_id=self.request_id,
        )


class _Entry:
    """One submitted item and its loop-side future, settled exactly once."""

    __slots__ = ("item", "future", "settled")

    def __init__(self, item, future: "asyncio.Future") -> None:
        self.item = item
        self.future = future
        self.settled = False


class AsyncServingClient:
    """Event-driven asyncio facade over a :class:`ServingClient`.

    Must be constructed on a running event loop.  ``submit`` /
    ``submit_spec`` return ``asyncio.Future``\\ s resolved with
    :class:`~repro.serving.PredictResponse` (or the request's typed
    :class:`~repro.exceptions.ServingError`); ``await drain()`` waits for
    quiescence; ``await aclose()`` stops the pump and closes the wrapped
    client, which fails any straggling futures with
    :class:`~repro.exceptions.ClientClosedError` rather than dropping them.
    """

    def __init__(
        self,
        client: ServingClient,
        *,
        loop: Optional[asyncio.AbstractEventLoop] = None,
    ) -> None:
        self._client = client
        self._loop = loop or asyncio.get_running_loop()
        self._thread = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serving-pump"
        )
        self._buffer: List[_Entry] = []
        self._wakeup = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._inflight = 0
        self._closed = False
        self._pump_task: asyncio.Task = self._loop.create_task(self._pump())

    # -- loop side ------------------------------------------------------ #
    @property
    def client(self) -> ServingClient:
        """The wrapped synchronous client (do not touch it off-thread)."""
        return self._client

    @property
    def inflight(self) -> int:
        """Requests submitted here and not yet settled."""
        return self._inflight

    @property
    def closed(self) -> bool:
        return self._closed

    def submit(self, request: PredictRequest) -> "asyncio.Future":
        """Queue one already-stamped request; returns an asyncio future."""
        return self._enqueue(request)

    def submit_spec(self, spec: RequestSpec) -> "asyncio.Future":
        """Queue a :class:`RequestSpec`; arrival/deadline stamp at submit."""
        return self._enqueue(spec)

    def _enqueue(
        self, item: Union[PredictRequest, RequestSpec]
    ) -> "asyncio.Future":
        if self._closed:
            raise ClientClosedError(
                "cannot submit to a closed AsyncServingClient"
            )
        entry = _Entry(item, self._loop.create_future())
        self._buffer.append(entry)
        self._inflight += 1
        self._idle.clear()
        self._wakeup.set()
        return entry.future

    async def drain(self) -> None:
        """Resolve when every submitted request has settled."""
        await self._idle.wait()

    async def report_dict(
        self, *, slo_target_seconds: Optional[float] = None
    ) -> Dict[str, Any]:
        """The wrapped client's report as the shared JSON export.

        Runs on the pump thread (serialized behind any in-progress drain),
        so the snapshot is consistent: it never reads scheduler state
        mid-mutation.
        """

        def _build() -> Dict[str, Any]:
            return self._client.report().to_dict(
                sync_stats=self._client.sync_stats(),
                slo_target_seconds=slo_target_seconds,
            )

        return await self._loop.run_in_executor(self._thread, _build)

    async def control_stats(self) -> Optional[Dict[str, Any]]:
        """The wrapped client's control-plane telemetry (``None`` if none).

        Same pump-thread serialization as :meth:`report_dict`.
        """
        return await self._loop.run_in_executor(
            self._thread, self._client.control_stats
        )

    async def aclose(self) -> None:
        """Stop the pump and close the wrapped client (idempotent).

        In-flight work already handed to the scheduler finishes first (the
        pump's final drain); anything the wrapped client still holds at
        close is failed with :class:`~repro.exceptions.ClientClosedError`.
        """
        if self._closed:
            await asyncio.gather(self._pump_task, return_exceptions=True)
            return
        self._closed = True
        self._wakeup.set()
        await self._pump_task
        await self._loop.run_in_executor(self._thread, self._client.close)
        self._thread.shutdown(wait=True)

    # -- pump ----------------------------------------------------------- #
    async def _pump(self) -> None:
        """Forward buffered submissions to the pump thread until closed."""
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            batch, self._buffer = self._buffer, []
            if batch:
                try:
                    await self._loop.run_in_executor(
                        self._thread, self._pump_step, batch
                    )
                except Exception as exc:
                    # A drain()/scheduler failure outside the per-request
                    # error paths: settle whatever the step left unsettled
                    # so no caller awaits forever.  Entries whose
                    # PendingResult later completes are guarded by the
                    # settled flag.
                    for entry in batch:
                        self._resolve(entry, None, exc)
            if self._closed and not self._buffer:
                return

    def _pump_step(self, batch: List[_Entry]) -> None:
        """One scheduler interaction (pump thread): stamp, submit, drain."""
        client = self._client
        arrival = client.clock_now()
        to_submit: List[Tuple[PredictRequest, _Entry]] = []
        for entry in batch:
            item = entry.item
            try:
                request = (
                    item.materialize(arrival)
                    if isinstance(item, RequestSpec)
                    else item
                )
            except Exception as exc:
                self._loop.call_soon_threadsafe(self._resolve, entry, None, exc)
                continue
            to_submit.append((request, entry))
        if not to_submit:
            return
        try:
            pendings = client.submit_many([request for request, _ in to_submit])
        except Exception as exc:
            for _, entry in to_submit:
                self._loop.call_soon_threadsafe(self._resolve, entry, None, exc)
            return
        for (_, entry), pending in zip(to_submit, pendings):
            pending.add_done_callback(self._make_completion(entry))
        client.drain()

    def _make_completion(self, entry: _Entry):
        """The PendingResult→asyncio hop for one entry.

        Runs wherever the batch finishes (pump thread, or inline at
        registration for already-done futures — admission rejections fire
        immediately); the loop-side settle always crosses through
        ``call_soon_threadsafe``.
        """

        def _completed(pending) -> None:
            error = pending.exception()
            if error is not None:
                self._loop.call_soon_threadsafe(self._resolve, entry, None, error)
            else:
                self._loop.call_soon_threadsafe(
                    self._resolve, entry, pending.result(), None
                )

        return _completed

    def _resolve(
        self,
        entry: _Entry,
        response: Optional[PredictResponse],
        error: Optional[BaseException],
    ) -> None:
        """Settle one entry on the loop (exactly once per entry).

        The entry's own future may already be done — e.g. the server's
        graceful shutdown failed it with ``DeadlineExceededError`` before
        the scheduler answered — in which case the outcome is dropped but
        the in-flight accounting still settles.
        """
        if entry.settled:
            return
        entry.settled = True
        self._inflight -= 1
        future = entry.future
        if not future.done():
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(response)
        if self._inflight == 0:
            self._idle.set()
