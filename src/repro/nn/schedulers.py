"""Learning-rate schedulers.

The paper uses an adaptive schedule in which "the learning rate starts from
0.01 and decreases by half every training epoch"; that behaviour is provided
by :class:`HalvingLR`.
"""

from __future__ import annotations

from repro.nn.optim import Optimizer


class LRScheduler:
    """Base scheduler: call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the new learning rate."""
        self.epoch += 1
        new_lr = self.compute_lr(self.epoch)
        self.optimizer.set_lr(new_lr)
        return new_lr

    def compute_lr(self, epoch: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr


class ConstantLR(LRScheduler):
    """Keep the learning rate fixed."""

    def compute_lr(self, epoch: int) -> float:
        return self.base_lr


class HalvingLR(LRScheduler):
    """Halve the learning rate after every epoch (paper's schedule).

    A ``min_lr`` floor prevents the step size underflowing to zero on long runs.
    """

    def __init__(self, optimizer: Optimizer, min_lr: float = 1e-6) -> None:
        super().__init__(optimizer)
        if min_lr <= 0:
            raise ValueError(f"min_lr must be positive, got {min_lr}")
        self.min_lr = float(min_lr)

    def compute_lr(self, epoch: int) -> float:
        return max(self.base_lr * (0.5**epoch), self.min_lr)


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int = 10, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        if not 0 < gamma <= 1:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def compute_lr(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** (epoch // self.step_size))


class ExponentialDecayLR(LRScheduler):
    """Exponential decay ``lr = base * decay^epoch``."""

    def __init__(self, optimizer: Optimizer, decay: float = 0.95, min_lr: float = 1e-6) -> None:
        super().__init__(optimizer)
        if not 0 < decay <= 1:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.decay = float(decay)
        self.min_lr = float(min_lr)

    def compute_lr(self, epoch: int) -> float:
        return max(self.base_lr * (self.decay**epoch), self.min_lr)
