"""Loss functions.

The two losses at the heart of PILOTE are implemented here:

* :class:`ContrastiveLoss` — the supervised contrastive loss with margin from
  Eq. (2) of the paper, applied to pairs of embeddings produced by the shared
  Siamese backbone.
* :class:`DistillationLoss` — the feature-space distillation term of
  Algorithm 1 (line 11), penalising movement of old-class exemplar embeddings
  away from the embeddings produced by the frozen pre-trained model.

:class:`JointIncrementalLoss` combines them with the balancing weight ``α``
(``L = α · L_disti + (1 − α) · L_contra``).  Cross-entropy and logit
distillation are provided for the classifier-head baselines (LwF, iCaRL,
fine-tuning, GDumb, EWC).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tensor import Tensor
from repro.exceptions import ShapeError
from repro.nn.module import Module
from repro.utils.validation import check_probability


class ContrastiveLoss(Module):
    """Supervised contrastive loss with margin (paper Eq. 2).

    For a pair of embeddings ``(e_i, e_j)`` with pair label ``Y`` (1 when the
    two samples share a class, 0 otherwise), the per-pair loss is::

        Y * d^2 + (1 - Y) * max(0, m^2 - d^2)          (squared-margin form)

    where ``d = ||e_i - e_j||``.  The classic Hadsell et al. form
    ``(1 - Y) * max(0, m - d)^2`` is available via ``variant="hadsell"``.

    Parameters
    ----------
    margin:
        The margin ``m`` separating dissimilar pairs.
    variant:
        ``"squared"`` (paper Eq. 2, default) or ``"hadsell"``.
    reduction:
        ``"mean"`` or ``"sum"`` over pairs.
    """

    def __init__(self, margin: float = 1.0, variant: str = "squared", reduction: str = "mean") -> None:
        super().__init__()
        if margin <= 0:
            raise ValueError(f"margin must be positive, got {margin}")
        if variant not in ("squared", "hadsell"):
            raise ValueError(f"variant must be 'squared' or 'hadsell', got {variant!r}")
        if reduction not in ("mean", "sum"):
            raise ValueError(f"reduction must be 'mean' or 'sum', got {reduction!r}")
        self.margin = float(margin)
        self.variant = variant
        self.reduction = reduction

    def forward(self, left: Tensor, right: Tensor, same_class) -> Tensor:
        """Compute the loss for row-aligned embedding pairs.

        Parameters
        ----------
        left, right:
            ``(n_pairs, embedding_dim)`` embeddings from the Siamese branches.
        same_class:
            Array-like of ``n_pairs`` binary indicators (1 = same class).
        """
        if left.shape != right.shape:
            raise ShapeError(f"pair embeddings must share a shape, got {left.shape} vs {right.shape}")
        labels = np.asarray(
            same_class.data if isinstance(same_class, Tensor) else same_class,
            dtype=left.data.dtype,
        ).reshape(-1)
        if labels.shape[0] != left.shape[0]:
            raise ShapeError(
                f"expected {left.shape[0]} pair labels, got {labels.shape[0]}"
            )
        y = Tensor(labels)
        squared_distance = ops.pairwise_squared_distance(left, right)
        if self.variant == "squared":
            dissimilar = (Tensor(self.margin**2) - squared_distance).clamp_min(0.0)
        else:
            distance = (squared_distance + 1e-12).sqrt()
            hinge = (Tensor(self.margin) - distance).clamp_min(0.0)
            dissimilar = hinge * hinge
        per_pair = y * squared_distance + (Tensor(1.0) - y) * dissimilar
        return per_pair.mean() if self.reduction == "mean" else per_pair.sum()


class DistillationLoss(Module):
    """Feature-space distillation loss (Algorithm 1, line 11).

    Penalises the squared Euclidean distance between the embeddings of
    old-class exemplars under the updated model and under the frozen
    pre-trained model: ``Σ ||φ_new(x) − φ_old(x)||²``.
    """

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        if reduction not in ("mean", "sum"):
            raise ValueError(f"reduction must be 'mean' or 'sum', got {reduction!r}")
        self.reduction = reduction

    def forward(self, new_embeddings: Tensor, old_embeddings: Tensor) -> Tensor:
        """``new_embeddings`` carries gradient; ``old_embeddings`` is treated as constant."""
        old = old_embeddings.detach() if isinstance(old_embeddings, Tensor) else Tensor(old_embeddings)
        if new_embeddings.shape != old.shape:
            raise ShapeError(
                "distillation requires matching embedding shapes, got "
                f"{new_embeddings.shape} vs {old.shape}"
            )
        squared = ops.pairwise_squared_distance(new_embeddings, old)
        return squared.mean() if self.reduction == "mean" else squared.sum()


class JointIncrementalLoss(Module):
    """PILOTE's joint objective ``α · L_disti + (1 − α) · L_contra``."""

    def __init__(
        self,
        alpha: float = 0.5,
        margin: float = 1.0,
        contrastive_variant: str = "squared",
    ) -> None:
        super().__init__()
        self.alpha = check_probability(alpha, name="alpha")
        self.contrastive = ContrastiveLoss(margin=margin, variant=contrastive_variant)
        self.distillation = DistillationLoss()

    def forward(
        self,
        pair_left: Tensor,
        pair_right: Tensor,
        same_class,
        new_exemplar_embeddings: Optional[Tensor] = None,
        old_exemplar_embeddings: Optional[Tensor] = None,
    ) -> Tensor:
        """Combine the contrastive and distillation terms.

        The distillation term is skipped (treated as zero) when no exemplar
        embeddings are provided, which reduces the objective to pure
        contrastive learning — exactly the behaviour used during cloud
        pre-training and by the *Re-trained* baseline.
        """
        contrastive = self.contrastive(pair_left, pair_right, same_class)
        if (
            new_exemplar_embeddings is None
            or old_exemplar_embeddings is None
            or self.alpha == 0.0
        ):
            return contrastive * (1.0 - self.alpha) if self.alpha > 0 else contrastive
        distillation = self.distillation(new_exemplar_embeddings, old_exemplar_embeddings)
        return distillation * self.alpha + contrastive * (1.0 - self.alpha)


class CrossEntropyLoss(Module):
    """Softmax cross-entropy against integer class labels."""

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        if reduction not in ("mean", "sum"):
            raise ValueError(f"reduction must be 'mean' or 'sum', got {reduction!r}")
        self.reduction = reduction

    def forward(self, logits: Tensor, labels) -> Tensor:
        labels = np.asarray(labels, dtype=np.int64).reshape(-1)
        if logits.ndim != 2:
            raise ShapeError(f"logits must be 2-D (batch, classes), got {logits.shape}")
        if labels.shape[0] != logits.shape[0]:
            raise ShapeError(
                f"expected {logits.shape[0]} labels, got {labels.shape[0]}"
            )
        if labels.min() < 0 or labels.max() >= logits.shape[1]:
            raise ShapeError(
                f"labels must be in [0, {logits.shape[1] - 1}], got range "
                f"[{labels.min()}, {labels.max()}]"
            )
        log_probabilities = ops.log_softmax(logits, axis=1)
        picked = log_probabilities[np.arange(labels.shape[0]), labels]
        loss = -picked
        return loss.mean() if self.reduction == "mean" else loss.sum()


class LogitDistillationLoss(Module):
    """Hinton-style knowledge distillation on classifier logits.

    Used by the LwF and iCaRL baselines: the new model's (temperature-scaled)
    probabilities on old classes are pulled towards those of the old model.
    """

    def __init__(self, temperature: float = 2.0) -> None:
        super().__init__()
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        self.temperature = float(temperature)

    def forward(self, new_logits: Tensor, old_logits: Tensor) -> Tensor:
        old = old_logits.detach() if isinstance(old_logits, Tensor) else Tensor(old_logits)
        if new_logits.shape != old.shape:
            raise ShapeError(
                f"logit shapes must match, got {new_logits.shape} vs {old.shape}"
            )
        temperature = self.temperature
        new_log_probs = ops.log_softmax(new_logits * (1.0 / temperature), axis=1)
        old_probs = ops.softmax(Tensor(old.data * (1.0 / temperature)), axis=1)
        per_sample = -(Tensor(old_probs.data) * new_log_probs).sum(axis=1)
        return per_sample.mean()


class MSELoss(Module):
    """Mean squared error (targets treated as constants)."""

    def forward(self, prediction: Tensor, target) -> Tensor:
        return ops.mean_squared_error(prediction, target if isinstance(target, Tensor) else Tensor(target))
