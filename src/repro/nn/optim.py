"""Gradient-descent optimisers (SGD with momentum, Adam)."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimiser interface: ``zero_grad`` / ``step`` over a parameter list."""

    def __init__(self, parameters: Sequence[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear gradients on every managed parameter."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def set_lr(self, lr: float) -> None:
        """Update the learning rate (used by the schedulers)."""
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            if self.momentum:
                velocity = self._velocity.get(id(parameter))
                if velocity is None:
                    velocity = np.zeros_like(parameter.data)
                velocity = self.momentum * velocity + gradient
                self._velocity[id(parameter)] = velocity
                update = velocity
            else:
                update = gradient
            parameter.data = parameter.data - self.lr * update


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015) — the optimiser used by the paper."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.01,
        betas: tuple = (0.9, 0.999),
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._first_moment: Dict[int, np.ndarray] = {}
        self._second_moment: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        bias_correction1 = 1.0 - self.beta1**self._step_count
        bias_correction2 = 1.0 - self.beta2**self._step_count
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            gradient = parameter.grad
            if self.weight_decay:
                gradient = gradient + self.weight_decay * parameter.data
            key = id(parameter)
            first = self._first_moment.get(key)
            second = self._second_moment.get(key)
            if first is None:
                first = np.zeros_like(parameter.data)
                second = np.zeros_like(parameter.data)
            first = self.beta1 * first + (1.0 - self.beta1) * gradient
            second = self.beta2 * second + (1.0 - self.beta2) * gradient**2
            self._first_moment[key] = first
            self._second_moment[key] = second
            corrected_first = first / bias_correction1
            corrected_second = second / bias_correction2
            parameter.data = parameter.data - self.lr * corrected_first / (
                np.sqrt(corrected_second) + self.epsilon
            )
