"""Layers used by the PILOTE backbone: Linear, BatchNorm1d, ReLU, Dropout, Sequential."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.autodiff.tensor import Tensor
from repro.exceptions import ShapeError
from repro.nn.init import he_uniform, zeros_init
from repro.nn.module import Module, Parameter
from repro.utils.rng import RandomState, resolve_rng


class Linear(Module):
    """Fully connected layer computing ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionalities.
    bias:
        Whether to add a learned bias term.
    rng:
        Seed or generator for weight initialisation (He uniform).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: RandomState = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ShapeError(
                f"Linear layer dimensions must be positive, got {in_features}x{out_features}"
            )
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = Parameter(he_uniform((in_features, out_features), rng=rng), name="weight")
        self.bias = Parameter(zeros_init((out_features,)), name="bias") if bias else None

    def forward(self, inputs: Tensor) -> Tensor:
        inputs = inputs if isinstance(inputs, Tensor) else Tensor(inputs)
        if inputs.shape[-1] != self.in_features:
            raise ShapeError(
                f"Linear expected input with {self.in_features} features, got {inputs.shape}"
            )
        output = inputs @ self.weight
        if self.bias is not None:
            output = output + self.bias
        return output

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.sigmoid()

    def __repr__(self) -> str:
        return "Sigmoid()"


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.tanh()

    def __repr__(self) -> str:
        return "Tanh()"


class Identity(Module):
    """Pass-through layer (useful as a configurable no-op)."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs

    def __repr__(self) -> str:
        return "Identity()"


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, rng: RandomState = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self._rng = resolve_rng(rng)

    def forward(self, inputs: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return inputs
        keep = 1.0 - self.p
        mask = (self._rng.random(inputs.shape) < keep).astype(inputs.data.dtype) / keep
        return inputs * Tensor(mask, dtype=inputs.data.dtype)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class BatchNorm1d(Module):
    """Batch normalisation over the feature dimension of ``(batch, features)`` inputs.

    Uses batch statistics during training (with running-average tracking) and
    the tracked statistics at evaluation time, mirroring torch's semantics.
    """

    def __init__(self, num_features: int, momentum: float = 0.1, epsilon: float = 1e-5) -> None:
        super().__init__()
        if num_features <= 0:
            raise ShapeError(f"num_features must be positive, got {num_features}")
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.epsilon = float(epsilon)
        self.gamma = Parameter(np.ones(num_features), name="gamma")
        self.beta = Parameter(np.zeros(num_features), name="beta")
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, inputs: Tensor) -> Tensor:
        inputs = inputs if isinstance(inputs, Tensor) else Tensor(inputs)
        if inputs.ndim != 2 or inputs.shape[1] != self.num_features:
            raise ShapeError(
                f"BatchNorm1d expected (batch, {self.num_features}) input, got {inputs.shape}"
            )
        if self.training and inputs.shape[0] > 1:
            mean = inputs.mean(axis=0, keepdims=True)
            centred = inputs - mean
            variance = (centred * centred).mean(axis=0, keepdims=True)
            normalised = centred / (variance + self.epsilon).sqrt()
            self._update_running(mean.data.reshape(-1), variance.data.reshape(-1), inputs.shape[0])
        else:
            mean = Tensor(self.running_mean.reshape(1, -1))
            variance = Tensor(self.running_var.reshape(1, -1))
            normalised = (inputs - mean) / (variance + self.epsilon).sqrt()
        return normalised * self.gamma + self.beta

    def _update_running(self, batch_mean: np.ndarray, batch_var: np.ndarray, batch_size: int) -> None:
        momentum = self.momentum
        unbiased_var = batch_var * batch_size / max(batch_size - 1, 1)
        new_mean = (1.0 - momentum) * self.running_mean + momentum * batch_mean
        new_var = (1.0 - momentum) * self.running_var + momentum * unbiased_var
        self.update_buffer("running_mean", new_mean)
        self.update_buffer("running_var", new_var)

    def __repr__(self) -> str:
        return f"BatchNorm1d({self.num_features}, momentum={self.momentum})"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self._layer_names: List[str] = []
        for index, layer in enumerate(layers):
            name = f"layer{index}"
            setattr(self, name, layer)
            self._layer_names.append(name)

    @property
    def layers(self) -> List[Module]:
        return [getattr(self, name) for name in self._layer_names]

    def append(self, layer: Module) -> "Sequential":
        """Add a layer at the end of the chain."""
        name = f"layer{len(self._layer_names)}"
        setattr(self, name, layer)
        self._layer_names.append(name)
        return self

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs
        for layer in self.layers:
            output = layer(output)
        return output

    def __len__(self) -> int:
        return len(self._layer_names)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def __repr__(self) -> str:
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential({inner})"


def build_mlp(
    layer_sizes: Sequence[int],
    *,
    batch_norm: bool = True,
    activation: str = "relu",
    final_activation: Optional[str] = None,
    dropout: float = 0.0,
    rng: RandomState = None,
) -> Sequential:
    """Construct a fully connected network from a list of layer widths.

    ``layer_sizes = [in, h1, ..., out]`` produces ``len(layer_sizes) - 1``
    linear layers.  Batch normalisation and the activation are applied after
    every layer except the last, matching the paper's backbone description
    (BatchNorm + ReLU on the first four layers, linear projection at the end).
    """
    if len(layer_sizes) < 2:
        raise ShapeError("build_mlp requires at least an input and an output size")
    activations = {"relu": ReLU, "sigmoid": Sigmoid, "tanh": Tanh, "identity": Identity}
    if activation not in activations:
        raise ValueError(f"unknown activation {activation!r}; choose from {sorted(activations)}")
    generator = resolve_rng(rng)
    model = Sequential()
    last_index = len(layer_sizes) - 2
    for index, (fan_in, fan_out) in enumerate(zip(layer_sizes[:-1], layer_sizes[1:])):
        model.append(Linear(fan_in, fan_out, rng=generator))
        if index < last_index:
            if batch_norm:
                model.append(BatchNorm1d(fan_out))
            model.append(activations[activation]())
            if dropout > 0.0:
                model.append(Dropout(dropout, rng=generator))
        elif final_activation is not None:
            model.append(activations[final_activation]())
    return model
