"""Module and parameter abstractions (a small torch.nn.Module analogue)."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.autodiff.tensor import Tensor
from repro.exceptions import SerializationError


class Parameter(Tensor):
    """A trainable tensor: always requires gradient."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural-network components.

    Sub-modules and parameters assigned as attributes are registered
    automatically, enabling recursive parameter collection, train/eval mode
    switching and state-dict (de)serialisation.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------ #
    # registration machinery
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable array that is part of the module state."""
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        object.__setattr__(self, name, self._buffers[name])

    def update_buffer(self, name: str, value: np.ndarray) -> None:
        """Overwrite a previously registered buffer."""
        if name not in self._buffers:
            raise KeyError(f"buffer {name!r} is not registered")
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs recursively."""
        for name, parameter in self._parameters.items():
            yield f"{prefix}{name}", parameter
        for module_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{module_name}.")

    def parameters(self) -> List[Parameter]:
        """Return all trainable parameters of this module and its children."""
        return [parameter for _, parameter in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(qualified_name, buffer)`` pairs recursively."""
        for name, buffer in self._buffers.items():
            yield f"{prefix}{name}", buffer
        for module_name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{module_name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return int(sum(p.data.size for p in self.parameters()))

    def parameter_nbytes(self, dtype_bytes: int = 4) -> int:
        """Storage footprint of the parameters when serialised as float32."""
        return self.num_parameters() * dtype_bytes

    # ------------------------------------------------------------------ #
    # train / eval state
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        """Switch this module (and children) between training and eval mode."""
        object.__setattr__(self, "training", bool(mode))
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Shorthand for ``train(False)``."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    # ------------------------------------------------------------------ #
    # forward
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError("Module subclasses must implement forward()")

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------ #
    # state dict
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat copy of every parameter and buffer."""
        state: Dict[str, np.ndarray] = OrderedDict()
        for name, parameter in self.named_parameters():
            state[f"param.{name}"] = parameter.data.copy()
        for name, buffer in self.named_buffers():
            state[f"buffer.{name}"] = np.asarray(buffer).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters and buffers saved by :meth:`state_dict`."""
        parameters = dict(self.named_parameters())
        buffer_owners = self._buffer_owners()
        for key, value in state.items():
            if key.startswith("param."):
                name = key[len("param."):]
                if name not in parameters:
                    raise SerializationError(f"unexpected parameter {name!r} in state dict")
                target = parameters[name]
                value = np.asarray(value, dtype=target.data.dtype)
                if target.data.shape != value.shape:
                    raise SerializationError(
                        f"shape mismatch for parameter {name!r}: "
                        f"expected {target.data.shape}, got {value.shape}"
                    )
                target.data = value.copy()
            elif key.startswith("buffer."):
                name = key[len("buffer."):]
                if name not in buffer_owners:
                    raise SerializationError(f"unexpected buffer {name!r} in state dict")
                owner, local_name = buffer_owners[name]
                owner.update_buffer(local_name, np.asarray(value, dtype=np.float64))
        missing = set(parameters) - {
            k[len("param."):] for k in state if k.startswith("param.")
        }
        if missing:
            raise SerializationError(f"state dict is missing parameters: {sorted(missing)}")

    def _buffer_owners(self, prefix: str = "") -> Dict[str, Tuple["Module", str]]:
        owners: Dict[str, Tuple[Module, str]] = {}
        for name in self._buffers:
            owners[f"{prefix}{name}"] = (self, name)
        for module_name, module in self._modules.items():
            owners.update(module._buffer_owners(prefix=f"{prefix}{module_name}."))
        return owners

    def copy_weights_from(self, other: "Module") -> None:
        """Copy all parameters and buffers from a structurally identical module."""
        self.load_state_dict(other.state_dict())

    def clone(self) -> "Module":
        """Deep copy the module (structure via ``__reduce__`` is not needed;
        subclasses provide constructors and we round-trip the state dict)."""
        import copy

        duplicate = copy.deepcopy(self)
        return duplicate
