"""Neural-network building blocks on top of the autodiff engine.

Provides the module/parameter abstraction (:class:`Module`, :class:`Parameter`),
the layers used by the paper's backbone (fully connected layers with batch
normalisation and ReLU), loss functions (supervised contrastive with margin,
feature-space distillation, cross-entropy), optimisers (SGD, Adam), the halving
learning-rate schedule from the paper, and a generic :class:`Trainer` with the
paper's validation-loss early-stopping rule.
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers import (
    BatchNorm1d,
    Dropout,
    Identity,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    build_mlp,
)
from repro.nn.init import he_uniform, normal_init, xavier_uniform, zeros_init
from repro.nn.losses import (
    ContrastiveLoss,
    CrossEntropyLoss,
    DistillationLoss,
    JointIncrementalLoss,
    LogitDistillationLoss,
    MSELoss,
)
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.schedulers import ConstantLR, ExponentialDecayLR, HalvingLR, LRScheduler, StepLR
from repro.nn.trainer import EarlyStopping, Trainer, TrainingHistory

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "BatchNorm1d",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "Identity",
    "Sequential",
    "build_mlp",
    "xavier_uniform",
    "he_uniform",
    "normal_init",
    "zeros_init",
    "ContrastiveLoss",
    "DistillationLoss",
    "LogitDistillationLoss",
    "JointIncrementalLoss",
    "CrossEntropyLoss",
    "MSELoss",
    "Optimizer",
    "SGD",
    "Adam",
    "LRScheduler",
    "ConstantLR",
    "StepLR",
    "HalvingLR",
    "ExponentialDecayLR",
    "EarlyStopping",
    "Trainer",
    "TrainingHistory",
]
