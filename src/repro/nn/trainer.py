"""Generic training loop with the paper's early-stopping rule.

The paper stops training "when the difference of validation loss between
epochs is less than a small threshold, 0.0001 for five consecutive steps";
:class:`EarlyStopping` implements exactly that criterion (plus an optional
patience-on-increase mode used by some baselines).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

import numpy as np

from repro.autodiff.tensor import Tensor
from repro.backend import get_backend
from repro.nn.module import Module
from repro.nn.optim import Optimizer
from repro.nn.schedulers import LRScheduler
from repro.utils.clock import perf_seconds
from repro.utils.logging import get_logger
from repro.utils.rng import RandomState, resolve_rng

logger = get_logger("nn.trainer")


class EarlyStopping:
    """Plateau-based early stopping.

    Training stops once the absolute change in validation loss stays below
    ``threshold`` for ``patience`` consecutive epochs (the paper's rule), or —
    when ``mode="increase"`` — once the loss has not improved for ``patience``
    epochs.
    """

    def __init__(self, threshold: float = 1e-4, patience: int = 5, mode: str = "plateau") -> None:
        if patience <= 0:
            raise ValueError(f"patience must be positive, got {patience}")
        if mode not in ("plateau", "increase"):
            raise ValueError(f"mode must be 'plateau' or 'increase', got {mode!r}")
        self.threshold = float(threshold)
        self.patience = int(patience)
        self.mode = mode
        self._previous: Optional[float] = None
        self._best: float = np.inf
        self._streak = 0

    def update(self, validation_loss: float) -> bool:
        """Record a new validation loss; return ``True`` when training should stop."""
        loss = float(validation_loss)
        if self.mode == "plateau":
            if self._previous is not None and abs(self._previous - loss) < self.threshold:
                self._streak += 1
            else:
                self._streak = 0
            self._previous = loss
        else:
            if loss < self._best - self.threshold:
                self._best = loss
                self._streak = 0
            else:
                self._streak += 1
        return self._streak >= self.patience

    def reset(self) -> None:
        """Clear the internal state so the object can be reused."""
        self._previous = None
        self._best = np.inf
        self._streak = 0


@dataclass
class TrainingHistory:
    """Per-epoch record of a training run."""

    train_losses: List[float] = field(default_factory=list)
    validation_losses: List[float] = field(default_factory=list)
    learning_rates: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)
    stopped_early: bool = False

    @property
    def epochs_run(self) -> int:
        return len(self.train_losses)

    def final_train_loss(self) -> float:
        return self.train_losses[-1] if self.train_losses else float("nan")

    def final_validation_loss(self) -> float:
        return self.validation_losses[-1] if self.validation_losses else float("nan")


BatchLossFn = Callable[[np.ndarray, np.ndarray], Tensor]


class Trainer:
    """Mini-batch gradient-descent driver.

    The trainer is loss-agnostic: the caller supplies ``batch_loss``, a
    function mapping a mini-batch ``(X, y)`` to a scalar loss tensor.  This is
    what lets the same loop serve the Siamese contrastive objective, the joint
    PILOTE objective and the cross-entropy baselines.

    ``grad_shards`` turns on the data-parallel gradient path: each mini-batch
    is split into that many contiguous chunks, ``batch_loss`` runs per chunk,
    and the chunk losses are combined through the registered
    ``"allreduce_sum"`` collective op (sample-count weighted, so the combined
    value is the weighted mean of the chunk losses) *before* the optimizer
    step — one backward pass then accumulates every chunk's gradients into
    the shared parameters through the named allreduce tape record.  That
    record is the seam a multi-process gradient backend plugs into.  The
    caller's loss must be a valid estimator on a chunk (true for pointwise
    losses and pair losses sampled within the chunk); losses with whole-batch
    semantics — batch statistics, cross-chunk pair sampling — change meaning
    under chunking, which is why PILOTE's joint objective keeps the default
    single-chunk path and stays bit-exact with its history.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        *,
        scheduler: Optional[LRScheduler] = None,
        early_stopping: Optional[EarlyStopping] = None,
        max_epochs: int = 50,
        batch_size: int = 64,
        rng: RandomState = None,
        grad_shards: Optional[int] = None,
    ) -> None:
        if max_epochs <= 0:
            raise ValueError(f"max_epochs must be positive, got {max_epochs}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if grad_shards is not None and grad_shards <= 0:
            raise ValueError(f"grad_shards must be positive, got {grad_shards}")
        self.model = model
        self.optimizer = optimizer
        self.scheduler = scheduler
        self.early_stopping = early_stopping
        self.max_epochs = int(max_epochs)
        self.batch_size = int(batch_size)
        self.grad_shards = int(grad_shards) if grad_shards is not None else None
        self._rng = resolve_rng(rng)

    def iterate_minibatches(
        self, features: np.ndarray, labels: np.ndarray, shuffle: bool = True
    ) -> Iterable[Tuple[np.ndarray, np.ndarray]]:
        """Yield mini-batches of ``(features, labels)``."""
        count = features.shape[0]
        order = self._rng.permutation(count) if shuffle else np.arange(count)
        for start in range(0, count, self.batch_size):
            index = order[start:start + self.batch_size]
            yield features[index], labels[index]

    def fit(
        self,
        batch_loss: BatchLossFn,
        features: np.ndarray,
        labels: np.ndarray,
        *,
        validation: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        validation_loss: Optional[BatchLossFn] = None,
    ) -> TrainingHistory:
        """Run the optimisation loop.

        Parameters
        ----------
        batch_loss:
            Maps a mini-batch to a scalar :class:`Tensor` loss (gradients flow
            through the model captured in its closure).
        features, labels:
            Training arrays; batching and shuffling are handled here.
        validation:
            Optional ``(X_val, y_val)`` used for early stopping.
        validation_loss:
            Loss to evaluate on the validation split; defaults to ``batch_loss``.
        """
        history = TrainingHistory()
        evaluate = validation_loss or batch_loss
        # Materialise the training arrays in the policy compute dtype once,
        # so per-batch Tensor construction is a cast-free view.
        backend = get_backend()
        features = backend.asarray(features)
        if validation is not None:
            validation = (backend.asarray(validation[0]), validation[1])
        if self.early_stopping is not None:
            self.early_stopping.reset()
        for epoch in range(self.max_epochs):
            start_time = perf_seconds()
            self.model.train()
            epoch_losses = []
            for batch_features, batch_labels in self.iterate_minibatches(features, labels):
                if batch_features.shape[0] < 2:
                    continue  # BatchNorm and pair sampling need at least two samples.
                self.optimizer.zero_grad()
                loss = self._combined_loss(batch_loss, batch_features, batch_labels)
                loss.backward()
                self.optimizer.step()
                epoch_losses.append(float(loss.data))
            train_loss = float(np.mean(epoch_losses)) if epoch_losses else float("nan")
            history.train_losses.append(train_loss)
            history.learning_rates.append(self.optimizer.lr)
            history.epoch_seconds.append(perf_seconds() - start_time)

            if validation is not None:
                self.model.eval()
                val_features, val_labels = validation
                val_loss = float(evaluate(val_features, val_labels).data)
                history.validation_losses.append(val_loss)
                if self.early_stopping is not None and self.early_stopping.update(val_loss):
                    history.stopped_early = True
                    logger.debug("early stopping at epoch %d (val loss %.6f)", epoch + 1, val_loss)
                    break
            if self.scheduler is not None:
                self.scheduler.step()
        self.model.eval()
        return history

    def _combined_loss(
        self, batch_loss: BatchLossFn, features: np.ndarray, labels: np.ndarray
    ) -> Tensor:
        """The batch loss, data-parallel over ``grad_shards`` chunks when on.

        Contiguous chunks (each at least two samples — BatchNorm and pair
        sampling need that many, like whole batches do), one ``batch_loss``
        per chunk, combined as ``allreduce_sum(loss_c * n_c / n)`` so the
        scalar equals the sample-weighted mean of the chunk losses and the
        backward pass fans the gradient to every chunk through the named
        collective record.  Batches too small to give every chunk two
        samples fall back to the single-chunk path.
        """
        shards = self.grad_shards or 1
        count = features.shape[0]
        if shards <= 1 or count < 2 * shards:
            return batch_loss(features, labels)
        from repro.backend.registry import apply as apply_op

        base, extra = divmod(count, shards)
        weighted: List[Tensor] = []
        offset = 0
        for shard in range(shards):
            size = base + (1 if shard < extra else 0)
            chunk = slice(offset, offset + size)
            offset += size
            weighted.append(batch_loss(features[chunk], labels[chunk]) * (size / count))
        return apply_op("allreduce_sum", *weighted)
