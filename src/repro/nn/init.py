"""Weight-initialisation schemes."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RandomState, resolve_rng


def xavier_uniform(shape, rng: RandomState = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for (fan_in, fan_out) weight matrices."""
    generator = resolve_rng(rng)
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return generator.uniform(-limit, limit, size=shape)


def he_uniform(shape, rng: RandomState = None) -> np.ndarray:
    """He/Kaiming uniform initialisation, suited to ReLU networks."""
    generator = resolve_rng(rng)
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return generator.uniform(-limit, limit, size=shape)


def normal_init(shape, std: float = 0.01, rng: RandomState = None) -> np.ndarray:
    """Zero-mean Gaussian initialisation with the given standard deviation."""
    generator = resolve_rng(rng)
    return generator.normal(0.0, std, size=shape)


def zeros_init(shape) -> np.ndarray:
    """All-zero initialisation (used for biases)."""
    return np.zeros(shape, dtype=np.float64)


def _fans(shape) -> tuple:
    shape = tuple(shape)
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
