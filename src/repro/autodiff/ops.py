"""Free-function tensor operations built on :class:`~repro.autodiff.tensor.Tensor`.

The multi-input primitives (concatenation, stacking) dispatch through the
backend op registry — their forward/vjp rules live in
:mod:`repro.autodiff.primitives` as named, individually testable records.
The composite numerical helpers (softmax, log-softmax, pairwise distances)
are expressed in terms of registered primitives, so their tapes remain fully
named without needing dedicated backward rules.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.backend.registry import apply as _apply
from repro.autodiff.tensor import Tensor
from repro.exceptions import ShapeError


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing back to each input."""
    if not tensors:
        raise ShapeError("concatenate requires at least one tensor")
    return _apply("concatenate", *tensors, axis=axis)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    if not tensors:
        raise ShapeError("stack requires at least one tensor")
    return _apply("stack", *tensors, axis=axis)


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(x))`` along ``axis``."""
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return shifted - exp.sum(axis=axis, keepdims=True).log()


def l2_normalize(x: Tensor, axis: int = -1, epsilon: float = 1e-12) -> Tensor:
    """Normalise rows (or the given axis) of ``x`` to unit Euclidean norm."""
    squared = (x * x).sum(axis=axis, keepdims=True)
    norm = (squared + epsilon).sqrt()
    return x / norm


def pairwise_squared_distance(a: Tensor, b: Tensor) -> Tensor:
    """Row-wise squared Euclidean distance between two equally shaped matrices.

    ``a`` and ``b`` must both be ``(n, d)``; the result is an ``(n,)`` tensor
    with entry ``i`` equal to ``||a_i - b_i||^2``.
    """
    if a.shape != b.shape:
        raise ShapeError(f"pairwise distance requires equal shapes, got {a.shape} and {b.shape}")
    diff = a - b
    return (diff * diff).sum(axis=-1)


def euclidean_distance(a: Tensor, b: Tensor, epsilon: float = 1e-12) -> Tensor:
    """Row-wise Euclidean distance, ``sqrt`` smoothed for differentiability at 0."""
    return (pairwise_squared_distance(a, b) + epsilon).sqrt()


def mean_squared_error(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error over all elements (target never receives gradient)."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target.detach()
    return (diff * diff).mean()
