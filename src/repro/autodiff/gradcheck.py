"""Finite-difference gradient checking for the autodiff engine.

These utilities are used by the test suite to prove that every analytic
gradient implemented in :mod:`repro.autodiff` and :mod:`repro.nn` matches a
central finite-difference approximation.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autodiff.tensor import Tensor
from repro.backend.policy import precision
from repro.exceptions import GradientError


def numerical_gradient(
    function: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    index: int,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central finite-difference gradient of a scalar-valued ``function``.

    Parameters
    ----------
    function:
        Callable mapping the list of input tensors to a scalar tensor.
    inputs:
        The input tensors; only ``inputs[index]`` is perturbed.
    index:
        Which input to differentiate with respect to.
    epsilon:
        Perturbation size.
    """
    target = inputs[index]
    flat = target.data.reshape(-1)
    grad = np.zeros_like(flat)
    for position in range(flat.size):
        original = flat[position]
        flat[position] = original + epsilon
        plus = float(function(inputs).data)
        flat[position] = original - epsilon
        minus = float(function(inputs).data)
        flat[position] = original
        grad[position] = (plus - minus) / (2.0 * epsilon)
    return grad.reshape(target.data.shape)


def check_gradients(
    function: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    *,
    epsilon: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
    raise_on_failure: bool = True,
) -> bool:
    """Compare analytic and numerical gradients for every grad-requiring input.

    Returns ``True`` when all gradients match within tolerance; raises
    :class:`~repro.exceptions.GradientError` (or returns ``False``) otherwise.

    Gradient checking is a ``float64`` activity: central differences with the
    default ``epsilon`` drown in ``float32`` rounding noise.  The whole check
    therefore runs under the ``float64`` precision profile (so any leaf the
    function creates internally is ``float64`` too), and ``float32`` inputs
    are rejected with a clear error instead of producing flaky mismatches.
    """
    for tensor in inputs:
        if tensor.data.dtype != np.float64:
            raise GradientError(
                "check_gradients requires float64 inputs (finite differences are "
                f"unreliable in {tensor.data.dtype}); create the tensors under "
                "precision('float64')"
            )
        tensor.zero_grad()
    with precision("gradcheck"):
        return _check_float64(
            function, inputs, epsilon=epsilon, atol=atol, rtol=rtol,
            raise_on_failure=raise_on_failure,
        )


def _check_float64(
    function: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    *,
    epsilon: float,
    atol: float,
    rtol: float,
    raise_on_failure: bool,
) -> bool:
    output = function(inputs)
    if output.size != 1:
        raise GradientError("check_gradients requires a scalar-valued function")
    output.backward()

    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(function, inputs, index, epsilon=epsilon)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            max_error = float(np.max(np.abs(analytic - numeric)))
            if raise_on_failure:
                raise GradientError(
                    f"gradient mismatch for input {index}: max abs error {max_error:.3e}"
                )
            return False
    return True
