"""Reverse-mode autodiff tensor.

The design follows the classic "define-by-run" tape approach: every operation
on :class:`Tensor` dispatches a *named* op from the backend registry
(:mod:`repro.backend.registry`); the resulting tape records carry the op name
(``Tensor.op``), the parent tensors and a closure computing the local
vector-Jacobian product.  ``Tensor.backward()`` topologically sorts the graph
and accumulates gradients into ``.grad`` for every leaf that requires them;
``Tensor.trace()`` exposes the recorded op sequence for inspection.

Leaf tensors are materialised in the global compute dtype
(:func:`repro.backend.policy.default_dtype` — ``float64`` reference profile by
default, ``float32`` under the edge profile).  Interior nodes follow numpy
promotion from their inputs, so a graph built from ``float64`` leaves stays
``float64`` even while the global policy is ``float32`` — which is what keeps
finite-difference gradient checking exact under an edge policy.

Broadcasting is fully supported: gradients flowing back through broadcast
operations are reduced (summed) over the broadcast axes so that ``t.grad``
always has exactly the shape of ``t.data``.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backend import registry as _registry
from repro.backend.policy import DtypeLike, default_dtype
from repro.backend.registry import apply as _apply
from repro.exceptions import GradientError, ShapeError

ArrayLike = Union[float, int, np.ndarray, Sequence, "Tensor"]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether gradient recording is currently enabled."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (cheaper inference)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after a broadcast operation."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape but expanded.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload; converted to the policy compute dtype by default.
    requires_grad:
        Whether gradients should be accumulated into ``.grad`` on backward.
    name:
        Optional human-readable identifier (used in error messages).
    dtype:
        Explicit dtype override; when omitted, leaves use the global compute
        dtype (:func:`repro.backend.policy.default_dtype`).
    """

    __slots__ = ("data", "grad", "requires_grad", "name", "op", "_backward", "_parents")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
        dtype: Optional[DtypeLike] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=dtype if dtype is not None else default_dtype())
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self.name = name
        self.op: Optional[str] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        op_label = f", op={self.op!r}" if self.op else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label}{op_label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying data as a (read-write) numpy array."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        if self.data.size != 1:
            raise ShapeError(
                f"item() requires a tensor with exactly one element, got shape {self.shape}"
            )
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False, name=self.name, dtype=self.data.dtype)

    def astype(self, dtype: DtypeLike) -> "Tensor":
        """A detached copy of this tensor in another dtype."""
        return Tensor(self.data, requires_grad=False, name=self.name, dtype=dtype)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _ensure(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: Optional[str] = None,
    ) -> "Tensor":
        """Create a result tensor, wiring the backward closure when needed.

        The computed dtype is preserved (interior nodes follow numpy promotion
        rather than the leaf policy) and ``op`` names the tape record.
        """
        parents = tuple(parents)
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        data = np.asarray(data)
        out = Tensor(data, requires_grad=requires, dtype=data.dtype)
        out.op = op
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------ #
    # tape inspection
    # ------------------------------------------------------------------ #
    def trace(self) -> List[Tuple[str, Tuple[int, ...]]]:
        """The recorded graph as ``(op name, shape)`` pairs in topological order.

        Leaves (no recorded op) are reported as ``"leaf"``.  Only nodes kept
        alive for the backward pass appear — inference-mode results under
        :func:`no_grad` have an empty tape beyond themselves.
        """
        ordered: List[Tensor] = []
        seen = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                ordered.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))
        return [(node.op or "leaf", node.shape) for node in ordered]

    # ------------------------------------------------------------------ #
    # arithmetic (dispatched through the op registry)
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        return _apply("add", self, other)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return _apply("neg", self)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return _apply("sub", self, other)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return _apply("sub", self._ensure(other), self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        return _apply("mul", self, other)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return _apply("div", self, other)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return _apply("div", self._ensure(other), self)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log instead")
        return _apply("pow", self, exponent=float(exponent))

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._ensure(other)
        if self.data.ndim < 1 or other.data.ndim < 1:
            raise ShapeError("matmul requires at least 1-dimensional operands")
        return _apply("matmul", self, other)

    # ------------------------------------------------------------------ #
    # elementwise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        return _apply("exp", self)

    def log(self) -> "Tensor":
        return _apply("log", self)

    def sqrt(self) -> "Tensor":
        return _apply("sqrt", self)

    def relu(self) -> "Tensor":
        return _apply("relu", self)

    def sigmoid(self) -> "Tensor":
        return _apply("sigmoid", self)

    def tanh(self) -> "Tensor":
        return _apply("tanh", self)

    def clamp_min(self, minimum: float) -> "Tensor":
        """Elementwise ``max(x, minimum)`` (sub-gradient 0 where clipped)."""
        return _apply("clamp_min", self, minimum=float(minimum))

    def abs(self) -> "Tensor":
        return _apply("abs", self)

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return _apply("sum", self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return _apply("max", self, axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return _apply("reshape", self, shape=shape)

    def transpose(self, axes: Optional[Tuple[int, ...]] = None) -> "Tensor":
        return _apply("transpose", self, axes=axes)

    @property
    def T(self) -> "Tensor":  # noqa: N802 - mirrors numpy naming
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        return _apply("getitem", self, index=index)

    # ------------------------------------------------------------------ #
    # backward pass
    # ------------------------------------------------------------------ #
    def backward(self, gradient: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor through the recorded graph.

        Parameters
        ----------
        gradient:
            Seed gradient.  Defaults to 1.0 and is only optional when the
            tensor is a scalar.
        """
        if not self.requires_grad:
            raise GradientError("called backward() on a tensor that does not require grad")
        if gradient is None:
            if self.data.size != 1:
                raise GradientError(
                    "backward() without an explicit gradient requires a scalar output, "
                    f"got shape {self.data.shape}"
                )
            gradient = np.ones_like(self.data)
        gradient = np.asarray(gradient, dtype=self.data.dtype)
        if gradient.shape != self.data.shape:
            gradient = np.broadcast_to(gradient, self.data.shape).copy()

        ordered: List[Tensor] = []
        visited = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    ordered.append(current)
                    continue
                if id(current) in visited:
                    continue
                visited.add(id(current))
                stack.append((current, True))
                for parent in current._parents:
                    if id(parent) not in visited:
                        stack.append((parent, False))

        visit(self)

        self._accumulate(gradient)
        for node in reversed(ordered):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # comparisons return plain numpy (no gradient flows through them)
    # ------------------------------------------------------------------ #
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other


# Bind the tensor class into the registry (breaks the import cycle) and load
# the primitive op definitions so every method above can dispatch.
_registry.bind_tensor(Tensor)

from repro.autodiff import primitives as _primitives  # noqa: E402,F401  (registers ops)
