"""Reverse-mode autodiff tensor.

The design follows the classic "define-by-run" tape approach: every operation
on :class:`Tensor` records the parent tensors and a closure computing the local
vector-Jacobian product.  ``Tensor.backward()`` topologically sorts the graph
and accumulates gradients into ``.grad`` for every leaf that requires them.

Broadcasting is fully supported: gradients flowing back through broadcast
operations are reduced (summed) over the broadcast axes so that ``t.grad``
always has exactly the shape of ``t.data``.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import GradientError, ShapeError

ArrayLike = Union[float, int, np.ndarray, Sequence, "Tensor"]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether gradient recording is currently enabled."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (cheaper inference)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after a broadcast operation."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape but expanded.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64`` by default.
    requires_grad:
        Whether gradients should be accumulated into ``.grad`` on backward.
    name:
        Optional human-readable identifier (used in error messages).
    """

    __slots__ = ("data", "grad", "requires_grad", "name", "_backward", "_parents")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self.name = name
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return int(self.data.size)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying data as a (read-write) numpy array."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False, name=self.name)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _ensure(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a result tensor, wiring the backward closure when needed."""
        parents = tuple(parents)
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(-grad)

        return self._make(out_data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._ensure(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._ensure(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log instead")
        exponent = float(exponent)
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1.0))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._ensure(other)
        if self.data.ndim < 1 or other.data.ndim < 1:
            raise ShapeError("matmul requires at least 1-dimensional operands")
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if a.ndim == 2 and b.ndim == 2:
                if self.requires_grad:
                    self._accumulate(grad @ b.T)
                if other.requires_grad:
                    other._accumulate(a.T @ grad)
            elif a.ndim == 1 and b.ndim == 2:
                if self.requires_grad:
                    self._accumulate(grad @ b.T)
                if other.requires_grad:
                    other._accumulate(np.outer(a, grad))
            elif a.ndim == 2 and b.ndim == 1:
                if self.requires_grad:
                    self._accumulate(np.outer(grad, b))
                if other.requires_grad:
                    other._accumulate(a.T @ grad)
            elif a.ndim == 1 and b.ndim == 1:
                if self.requires_grad:
                    self._accumulate(grad * b)
                if other.requires_grad:
                    other._accumulate(grad * a)
            else:  # pragma: no cover - not used by the library
                raise ShapeError(
                    f"matmul backward unsupported for shapes {a.shape} @ {b.shape}"
                )

        return self._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # elementwise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / np.maximum(out_data, 1e-300))

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def clamp_min(self, minimum: float) -> "Tensor":
        """Elementwise ``max(x, minimum)`` (sub-gradient 0 where clipped)."""
        mask = self.data > minimum
        out_data = np.maximum(self.data, minimum)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = np.asarray(grad, dtype=np.float64)
            if axis is None:
                expanded = np.broadcast_to(grad, self.data.shape)
            else:
                if not keepdims:
                    grad = np.expand_dims(grad, axis=axis)
                expanded = np.broadcast_to(grad, self.data.shape)
            self._accumulate(expanded)

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = np.asarray(grad, dtype=np.float64)
            if axis is None:
                full_max = out_data
                mask = (self.data == full_max).astype(np.float64)
                mask /= mask.sum()
                self._accumulate(mask * grad)
            else:
                expanded_max = self.data.max(axis=axis, keepdims=True)
                mask = (self.data == expanded_max).astype(np.float64)
                mask /= mask.sum(axis=axis, keepdims=True)
                g = grad if keepdims else np.expand_dims(grad, axis=axis)
                self._accumulate(mask * g)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.asarray(grad).reshape(original))

        return self._make(out_data, (self,), backward)

    def transpose(self, axes: Optional[Tuple[int, ...]] = None) -> "Tensor":
        out_data = np.transpose(self.data, axes)
        if axes is None:
            inverse = None
        else:
            inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.transpose(np.asarray(grad), inverse))

        return self._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":  # noqa: N802 - mirrors numpy naming
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, np.asarray(grad, dtype=np.float64))
                self._accumulate(full)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # backward pass
    # ------------------------------------------------------------------ #
    def backward(self, gradient: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor through the recorded graph.

        Parameters
        ----------
        gradient:
            Seed gradient.  Defaults to 1.0 and is only optional when the
            tensor is a scalar.
        """
        if not self.requires_grad:
            raise GradientError("called backward() on a tensor that does not require grad")
        if gradient is None:
            if self.data.size != 1:
                raise GradientError(
                    "backward() without an explicit gradient requires a scalar output, "
                    f"got shape {self.data.shape}"
                )
            gradient = np.ones_like(self.data)
        gradient = np.asarray(gradient, dtype=np.float64)
        if gradient.shape != self.data.shape:
            gradient = np.broadcast_to(gradient, self.data.shape).copy()

        ordered: List[Tensor] = []
        visited = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    ordered.append(current)
                    continue
                if id(current) in visited:
                    continue
                visited.add(id(current))
                stack.append((current, True))
                for parent in current._parents:
                    if id(parent) not in visited:
                        stack.append((parent, False))

        visit(self)

        self._accumulate(gradient)
        for node in reversed(ordered):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # comparisons return plain numpy (no gradient flows through them)
    # ------------------------------------------------------------------ #
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other
