"""A small reverse-mode automatic differentiation engine on top of numpy.

The engine provides the :class:`~repro.autodiff.tensor.Tensor` class whose
operations build a dynamic computation graph by dispatching *named* ops from
the backend registry (:mod:`repro.backend.registry`); calling ``backward()``
on a scalar result propagates gradients to every tensor created with
``requires_grad=True``.  The forward/vjp rule of every primitive lives in
:mod:`repro.autodiff.primitives` as a declarative record, so ops are testable
in isolation and the recorded tape (``Tensor.trace()``) is inspectable.  It
is the substrate on which :mod:`repro.nn` (layers, losses, optimisers) and
ultimately the PILOTE model are built, replacing the PyTorch dependency of
the original paper.
"""

from repro.autodiff.tensor import Tensor, no_grad, is_grad_enabled
from repro.autodiff import ops
from repro.autodiff import primitives
from repro.autodiff.gradcheck import check_gradients, numerical_gradient

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "ops",
    "primitives",
    "check_gradients",
    "numerical_gradient",
]
