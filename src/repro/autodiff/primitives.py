"""Declarative definitions of the primitive tensor operations.

Each primitive is a ``(forward, vjp)`` pair of pure functions over numpy
arrays, registered by name in the backend op registry
(:mod:`repro.backend.registry`).  ``Tensor`` methods dispatch through
``registry.apply`` so every tape record carries the op name — the graph is
inspectable and each rule below is testable in isolation via
``get_op(name)`` without constructing tensors.

Conventions:

* ``forward(ctx, *arrays, **kwargs)`` returns the result array and stashes
  whatever the backward pass needs via ``ctx.save(...)``;
* ``vjp(ctx, grad)`` returns one cotangent per input (``None`` to skip);
  broadcast reduction is handled downstream by ``Tensor._accumulate``.
"""

from __future__ import annotations

import numpy as np

from repro.backend.registry import register_op
from repro.exceptions import ShapeError

# --------------------------------------------------------------------------- #
# arithmetic
# --------------------------------------------------------------------------- #


def _add_forward(ctx, a, b):
    return a + b


def _add_vjp(ctx, grad):
    return grad, grad


register_op("add", _add_forward, _add_vjp, doc="elementwise a + b")


def _neg_forward(ctx, a):
    return -a


def _neg_vjp(ctx, grad):
    return (-grad,)


register_op("neg", _neg_forward, _neg_vjp, doc="elementwise -a")


def _sub_forward(ctx, a, b):
    return a - b


def _sub_vjp(ctx, grad):
    return grad, -grad


register_op("sub", _sub_forward, _sub_vjp, doc="elementwise a - b")


def _mul_forward(ctx, a, b):
    ctx.save(a, b)
    return a * b


def _mul_vjp(ctx, grad):
    a, b = ctx.saved
    return grad * b, grad * a


register_op("mul", _mul_forward, _mul_vjp, doc="elementwise a * b")


def _div_forward(ctx, a, b):
    ctx.save(a, b)
    return a / b


def _div_vjp(ctx, grad):
    a, b = ctx.saved
    grad_a = grad / b if ctx.needs_input_grad[0] else None
    grad_b = -grad * a / (b**2) if ctx.needs_input_grad[1] else None
    return grad_a, grad_b


register_op("div", _div_forward, _div_vjp, doc="elementwise a / b")


def _pow_forward(ctx, a, *, exponent):
    ctx.save(a, exponent)
    return a**exponent


def _pow_vjp(ctx, grad):
    a, exponent = ctx.saved
    return (grad * exponent * a ** (exponent - 1.0),)


register_op("pow", _pow_forward, _pow_vjp, doc="elementwise a ** c for scalar c")


def _matmul_forward(ctx, a, b):
    ctx.save(a, b)
    return a @ b


def _matmul_vjp(ctx, grad):
    a, b = ctx.saved
    need_a, need_b = ctx.needs_input_grad
    if a.ndim == 2 and b.ndim == 2:
        return (
            grad @ b.T if need_a else None,
            a.T @ grad if need_b else None,
        )
    if a.ndim == 1 and b.ndim == 2:
        return (
            grad @ b.T if need_a else None,
            np.outer(a, grad) if need_b else None,
        )
    if a.ndim == 2 and b.ndim == 1:
        return (
            np.outer(grad, b) if need_a else None,
            a.T @ grad if need_b else None,
        )
    if a.ndim == 1 and b.ndim == 1:
        return (
            grad * b if need_a else None,
            grad * a if need_b else None,
        )
    raise ShapeError(  # pragma: no cover - not used by the library
        f"matmul backward unsupported for shapes {a.shape} @ {b.shape}"
    )


register_op("matmul", _matmul_forward, _matmul_vjp, doc="matrix product a @ b")

# --------------------------------------------------------------------------- #
# elementwise non-linearities
# --------------------------------------------------------------------------- #


def _exp_forward(ctx, a):
    out = np.exp(a)
    ctx.save(out)
    return out


def _exp_vjp(ctx, grad):
    (out,) = ctx.saved
    return (grad * out,)


register_op("exp", _exp_forward, _exp_vjp, doc="elementwise exponential")


def _log_forward(ctx, a):
    ctx.save(a)
    return np.log(a)


def _log_vjp(ctx, grad):
    (a,) = ctx.saved
    return (grad / a,)


register_op("log", _log_forward, _log_vjp, doc="elementwise natural log")


def _sqrt_forward(ctx, a):
    out = np.sqrt(a)
    ctx.save(out)
    return out


def _sqrt_vjp(ctx, grad):
    (out,) = ctx.saved
    return (grad * 0.5 / np.maximum(out, 1e-300),)


register_op("sqrt", _sqrt_forward, _sqrt_vjp, doc="elementwise square root")


def _relu_forward(ctx, a):
    mask = a > 0
    ctx.save(mask)
    return a * mask


def _relu_vjp(ctx, grad):
    (mask,) = ctx.saved
    return (grad * mask,)


register_op("relu", _relu_forward, _relu_vjp, doc="rectified linear unit")


def _sigmoid_forward(ctx, a):
    out = 1.0 / (1.0 + np.exp(-a))
    ctx.save(out)
    return out


def _sigmoid_vjp(ctx, grad):
    (out,) = ctx.saved
    return (grad * out * (1.0 - out),)


register_op("sigmoid", _sigmoid_forward, _sigmoid_vjp, doc="logistic sigmoid")


def _tanh_forward(ctx, a):
    out = np.tanh(a)
    ctx.save(out)
    return out


def _tanh_vjp(ctx, grad):
    (out,) = ctx.saved
    return (grad * (1.0 - out**2),)


register_op("tanh", _tanh_forward, _tanh_vjp, doc="hyperbolic tangent")


def _clamp_min_forward(ctx, a, *, minimum):
    mask = a > minimum
    ctx.save(mask)
    return np.maximum(a, minimum)


def _clamp_min_vjp(ctx, grad):
    (mask,) = ctx.saved
    return (grad * mask,)


register_op(
    "clamp_min", _clamp_min_forward, _clamp_min_vjp,
    doc="elementwise max(a, minimum) with sub-gradient 0 where clipped",
)


def _abs_forward(ctx, a):
    ctx.save(np.sign(a))
    return np.abs(a)


def _abs_vjp(ctx, grad):
    (sign,) = ctx.saved
    return (grad * sign,)


register_op("abs", _abs_forward, _abs_vjp, doc="elementwise absolute value")

# --------------------------------------------------------------------------- #
# reductions
# --------------------------------------------------------------------------- #


def _sum_forward(ctx, a, *, axis=None, keepdims=False):
    ctx.save(a.shape, axis, keepdims)
    return a.sum(axis=axis, keepdims=keepdims)


def _sum_vjp(ctx, grad):
    shape, axis, keepdims = ctx.saved
    grad = np.asarray(grad)
    if axis is not None and not keepdims:
        grad = np.expand_dims(grad, axis=axis)
    return (np.broadcast_to(grad, shape),)


register_op("sum", _sum_forward, _sum_vjp, doc="sum reduction over axis")


def _max_forward(ctx, a, *, axis=None, keepdims=False):
    out = a.max(axis=axis, keepdims=keepdims)
    ctx.save(a, out, axis, keepdims)
    return out


def _max_vjp(ctx, grad):
    a, out, axis, keepdims = ctx.saved
    grad = np.asarray(grad)
    if axis is None:
        mask = (a == out).astype(a.dtype)
        mask /= mask.sum()
        return (mask * grad,)
    expanded_max = a.max(axis=axis, keepdims=True)
    mask = (a == expanded_max).astype(a.dtype)
    mask /= mask.sum(axis=axis, keepdims=True)
    if not keepdims:
        grad = np.expand_dims(grad, axis=axis)
    return (mask * grad,)


register_op(
    "max", _max_forward, _max_vjp,
    doc="max reduction (gradient split uniformly across ties)",
)

# --------------------------------------------------------------------------- #
# shape manipulation
# --------------------------------------------------------------------------- #


def _reshape_forward(ctx, a, *, shape):
    ctx.save(a.shape)
    return a.reshape(shape)


def _reshape_vjp(ctx, grad):
    (original,) = ctx.saved
    return (np.asarray(grad).reshape(original),)


register_op("reshape", _reshape_forward, _reshape_vjp, doc="view with a new shape")


def _transpose_forward(ctx, a, *, axes=None):
    ctx.save(tuple(np.argsort(axes)) if axes is not None else None)
    return np.transpose(a, axes)


def _transpose_vjp(ctx, grad):
    (inverse,) = ctx.saved
    return (np.transpose(np.asarray(grad), inverse),)


register_op("transpose", _transpose_forward, _transpose_vjp, doc="axis permutation")


def _getitem_forward(ctx, a, *, index):
    ctx.save(a.shape, a.dtype, index)
    return a[index]


def _getitem_vjp(ctx, grad):
    shape, dtype, index = ctx.saved
    full = np.zeros(shape, dtype=dtype)
    np.add.at(full, index, np.asarray(grad, dtype=dtype))
    return (full,)


register_op(
    "getitem", _getitem_forward, _getitem_vjp,
    doc="basic/fancy indexing (gradient scattered with np.add.at)",
)

# --------------------------------------------------------------------------- #
# variadic ops
# --------------------------------------------------------------------------- #


def _concatenate_forward(ctx, *arrays, axis=0):
    sizes = [array.shape[axis] for array in arrays]
    ctx.save(np.cumsum([0] + sizes), axis)
    return np.concatenate(arrays, axis=axis)


def _concatenate_vjp(ctx, grad):
    offsets, axis = ctx.saved
    grad = np.asarray(grad)
    pieces = []
    for start, stop in zip(offsets[:-1], offsets[1:]):
        slicer = [slice(None)] * grad.ndim
        slicer[axis] = slice(int(start), int(stop))
        pieces.append(grad[tuple(slicer)])
    return tuple(pieces)


register_op(
    "concatenate", _concatenate_forward, _concatenate_vjp,
    doc="concatenation along an existing axis",
)


def _stack_forward(ctx, *arrays, axis=0):
    ctx.save(len(arrays), axis)
    return np.stack(arrays, axis=axis)


def _stack_vjp(ctx, grad):
    count, axis = ctx.saved
    pieces = np.split(np.asarray(grad), count, axis=axis)
    return tuple(np.squeeze(piece, axis=axis) for piece in pieces)


register_op("stack", _stack_forward, _stack_vjp, doc="stacking along a new axis")
