"""Confusion matrices (Figure 4 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import DataError


def confusion_matrix(
    y_true, y_pred, *, classes: Optional[Sequence[int]] = None
) -> np.ndarray:
    """Row-true / column-predicted confusion counts."""
    y_true = np.asarray(y_true).reshape(-1)
    y_pred = np.asarray(y_pred).reshape(-1)
    if y_true.shape != y_pred.shape:
        raise DataError("y_true and y_pred must have the same length")
    if classes is None:
        classes = np.unique(np.concatenate([y_true, y_pred]))
    classes = [int(c) for c in classes]
    index = {class_id: position for position, class_id in enumerate(classes)}
    matrix = np.zeros((len(classes), len(classes)), dtype=np.int64)
    for actual, predicted in zip(y_true, y_pred):
        if int(actual) not in index or int(predicted) not in index:
            raise DataError(
                f"label {actual} or {predicted} not covered by the provided class list"
            )
        matrix[index[int(actual)], index[int(predicted)]] += 1
    return matrix


@dataclass
class ConfusionMatrix:
    """A confusion matrix bundled with its class ids and display names."""

    matrix: np.ndarray
    classes: List[int]
    label_names: Dict[int, str]

    @classmethod
    def from_predictions(
        cls,
        y_true,
        y_pred,
        *,
        classes: Optional[Sequence[int]] = None,
        label_names: Optional[Dict[int, str]] = None,
    ) -> "ConfusionMatrix":
        y_true = np.asarray(y_true).reshape(-1)
        y_pred = np.asarray(y_pred).reshape(-1)
        if classes is None:
            classes = np.unique(np.concatenate([y_true, y_pred]))
        classes = [int(c) for c in classes]
        matrix = confusion_matrix(y_true, y_pred, classes=classes)
        return cls(matrix=matrix, classes=classes, label_names=dict(label_names or {}))

    # ------------------------------------------------------------------ #
    def normalized(self) -> np.ndarray:
        """Row-normalised matrix (per-true-class rates)."""
        totals = self.matrix.sum(axis=1, keepdims=True)
        safe = np.where(totals == 0, 1, totals)
        return self.matrix / safe

    def accuracy(self) -> float:
        total = self.matrix.sum()
        return float(np.trace(self.matrix) / total) if total else 0.0

    def count(self, true_class: int, predicted_class: int) -> int:
        """Number of ``true_class`` samples predicted as ``predicted_class``."""
        row = self.classes.index(int(true_class))
        column = self.classes.index(int(predicted_class))
        return int(self.matrix[row, column])

    def misclassification_rate(self, true_class: int, predicted_class: int) -> float:
        """Fraction of ``true_class`` samples predicted as ``predicted_class``."""
        row = self.classes.index(int(true_class))
        total = self.matrix[row].sum()
        if total == 0:
            return 0.0
        return float(self.count(true_class, predicted_class) / total)

    def to_text(self) -> str:
        """Fixed-width text rendering (the library's matplotlib-free Figure 4)."""
        names = [self.label_names.get(c, str(c)) for c in self.classes]
        width = max(max(len(n) for n in names) + 2, 10)
        header = " " * width + "".join(f"{n:>{width}}" for n in names)
        lines = [header]
        for row_name, row in zip(names, self.matrix):
            cells = "".join(f"{int(v):>{width}d}" for v in row)
            lines.append(f"{row_name:>{width}}{cells}")
        return "\n".join(lines)
