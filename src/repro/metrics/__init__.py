"""Evaluation metrics: classification scores, confusion matrices, forgetting, embedding quality."""

from repro.metrics.classification import (
    accuracy,
    classification_report,
    f1_score,
    per_class_accuracy,
    precision_recall_f1,
)
from repro.metrics.confusion import ConfusionMatrix, confusion_matrix
from repro.metrics.forgetting import (
    average_incremental_accuracy,
    backward_transfer,
    forgetting_measure,
    new_class_accuracy,
    old_class_accuracy,
)
from repro.metrics.embedding_quality import (
    class_separation_report,
    intra_inter_distance_ratio,
    silhouette_score,
)

__all__ = [
    "accuracy",
    "per_class_accuracy",
    "precision_recall_f1",
    "f1_score",
    "classification_report",
    "ConfusionMatrix",
    "confusion_matrix",
    "forgetting_measure",
    "backward_transfer",
    "average_incremental_accuracy",
    "old_class_accuracy",
    "new_class_accuracy",
    "silhouette_score",
    "intra_inter_distance_ratio",
    "class_separation_report",
]
