"""Classification metrics (accuracy, precision/recall/F1, per-class breakdowns)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.exceptions import DataError


def _validate(y_true, y_pred) -> tuple:
    y_true = np.asarray(y_true).reshape(-1)
    y_pred = np.asarray(y_pred).reshape(-1)
    if y_true.size == 0:
        raise DataError("metric inputs must not be empty")
    if y_true.shape != y_pred.shape:
        raise DataError(
            f"y_true and y_pred must have the same length, got {y_true.shape} and {y_pred.shape}"
        )
    return y_true, y_pred


def accuracy(y_true, y_pred) -> float:
    """Fraction of correctly classified samples."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def per_class_accuracy(y_true, y_pred) -> Dict[int, float]:
    """Recall of every class present in ``y_true``."""
    y_true, y_pred = _validate(y_true, y_pred)
    scores: Dict[int, float] = {}
    for class_id in np.unique(y_true):
        mask = y_true == class_id
        scores[int(class_id)] = float(np.mean(y_pred[mask] == class_id))
    return scores


def precision_recall_f1(
    y_true, y_pred, *, classes: Optional[Sequence[int]] = None
) -> Dict[int, Dict[str, float]]:
    """Per-class precision, recall and F1."""
    y_true, y_pred = _validate(y_true, y_pred)
    if classes is None:
        classes = np.unique(np.concatenate([y_true, y_pred]))
    report: Dict[int, Dict[str, float]] = {}
    for class_id in classes:
        true_positive = float(np.sum((y_pred == class_id) & (y_true == class_id)))
        predicted_positive = float(np.sum(y_pred == class_id))
        actual_positive = float(np.sum(y_true == class_id))
        precision = true_positive / predicted_positive if predicted_positive else 0.0
        recall = true_positive / actual_positive if actual_positive else 0.0
        f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
        report[int(class_id)] = {"precision": precision, "recall": recall, "f1": f1}
    return report


def f1_score(y_true, y_pred, *, average: str = "macro") -> float:
    """Macro- or micro-averaged F1 score."""
    if average not in ("macro", "micro"):
        raise DataError(f"average must be 'macro' or 'micro', got {average!r}")
    y_true, y_pred = _validate(y_true, y_pred)
    if average == "micro":
        return accuracy(y_true, y_pred)
    report = precision_recall_f1(y_true, y_pred, classes=np.unique(y_true))
    return float(np.mean([scores["f1"] for scores in report.values()]))


def classification_report(
    y_true, y_pred, *, label_names: Optional[Dict[int, str]] = None
) -> str:
    """Human-readable per-class report similar to scikit-learn's."""
    y_true, y_pred = _validate(y_true, y_pred)
    label_names = label_names or {}
    report = precision_recall_f1(y_true, y_pred, classes=np.unique(y_true))
    lines = [f"{'class':<14}{'precision':>10}{'recall':>10}{'f1':>10}{'support':>10}"]
    for class_id, scores in sorted(report.items()):
        name = label_names.get(class_id, str(class_id))
        support = int(np.sum(y_true == class_id))
        lines.append(
            f"{name:<14}{scores['precision']:>10.3f}{scores['recall']:>10.3f}"
            f"{scores['f1']:>10.3f}{support:>10d}"
        )
    lines.append(f"{'accuracy':<14}{accuracy(y_true, y_pred):>40.3f}")
    return "\n".join(lines)
