"""Catastrophic-forgetting metrics.

The paper's Definition 2 characterises forgetting as degraded loss/accuracy on
the old classes after the incremental update; the helpers here quantify that
(old-class accuracy drop, backward transfer, average incremental accuracy).
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np

from repro.exceptions import DataError
from repro.metrics.classification import accuracy


def old_class_accuracy(y_true, y_pred, old_classes: Iterable[int]) -> float:
    """Accuracy restricted to samples whose true class is an old class."""
    y_true = np.asarray(y_true).reshape(-1)
    y_pred = np.asarray(y_pred).reshape(-1)
    old = np.isin(y_true, np.asarray(sorted(int(c) for c in old_classes)))
    if not old.any():
        raise DataError("no samples of the old classes are present")
    return accuracy(y_true[old], y_pred[old])


def new_class_accuracy(y_true, y_pred, new_classes: Iterable[int]) -> float:
    """Accuracy restricted to samples whose true class is a new class."""
    y_true = np.asarray(y_true).reshape(-1)
    y_pred = np.asarray(y_pred).reshape(-1)
    new = np.isin(y_true, np.asarray(sorted(int(c) for c in new_classes)))
    if not new.any():
        raise DataError("no samples of the new classes are present")
    return accuracy(y_true[new], y_pred[new])


def forgetting_measure(accuracy_before: float, accuracy_after: float) -> float:
    """Drop in old-class accuracy caused by the incremental update (≥ 0 means forgetting)."""
    return float(accuracy_before - accuracy_after)


def backward_transfer(per_step_old_accuracy: Sequence[float]) -> float:
    """Average change of old-class accuracy relative to the first measurement.

    Negative values indicate forgetting; positive values indicate that learning
    new classes *helped* the old ones (rare but possible).
    """
    values = np.asarray(list(per_step_old_accuracy), dtype=np.float64)
    if values.size < 2:
        raise DataError("backward transfer needs at least two accuracy measurements")
    return float(np.mean(values[1:] - values[0]))


def average_incremental_accuracy(per_step_accuracy: Sequence[float]) -> float:
    """Mean accuracy over all incremental steps (the standard CIL summary metric)."""
    values = np.asarray(list(per_step_accuracy), dtype=np.float64)
    if values.size == 0:
        raise DataError("at least one accuracy measurement is required")
    return float(values.mean())


def forgetting_report(
    y_true,
    predictions_before,
    predictions_after,
    old_classes: Iterable[int],
    new_classes: Iterable[int],
) -> Dict[str, float]:
    """Bundle of forgetting-related numbers for one incremental step."""
    old_before = old_class_accuracy(y_true, predictions_before, old_classes)
    old_after = old_class_accuracy(y_true, predictions_after, old_classes)
    return {
        "old_accuracy_before": old_before,
        "old_accuracy_after": old_after,
        "forgetting": forgetting_measure(old_before, old_after),
        "new_accuracy_after": new_class_accuracy(y_true, predictions_after, new_classes),
        "overall_accuracy_after": accuracy(y_true, predictions_after),
    }
