"""Embedding-space quality metrics.

Figure 5 of the paper argues visually that PILOTE's embedding space keeps
classes better separated than the re-trained/pre-trained models.  Without a
plotting backend the same claim is made quantitative here: silhouette score and
the intra/inter-class distance ratio.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.exceptions import DataError


def _validate(embeddings: np.ndarray, labels: np.ndarray):
    embeddings = np.asarray(embeddings, dtype=np.float64)
    labels = np.asarray(labels).reshape(-1)
    if embeddings.ndim != 2:
        raise DataError(f"embeddings must be 2-D, got shape {embeddings.shape}")
    if labels.shape[0] != embeddings.shape[0]:
        raise DataError("labels and embeddings must have the same length")
    if np.unique(labels).size < 2:
        raise DataError("at least two classes are required")
    return embeddings, labels


def silhouette_score(embeddings: np.ndarray, labels: np.ndarray, max_samples: int = 2000) -> float:
    """Mean silhouette coefficient over (at most ``max_samples``) points.

    Values near 1 indicate compact, well-separated clusters; values near 0 (or
    negative) indicate overlapping classes.
    """
    embeddings, labels = _validate(embeddings, labels)
    count = embeddings.shape[0]
    if count > max_samples:
        step = count // max_samples + 1
        embeddings = embeddings[::step]
        labels = labels[::step]
        count = embeddings.shape[0]
    distances = np.linalg.norm(embeddings[:, None, :] - embeddings[None, :, :], axis=2)
    unique = np.unique(labels)
    scores = np.zeros(count)
    for index in range(count):
        own = labels[index]
        own_mask = labels == own
        same_count = own_mask.sum() - 1
        if same_count == 0:
            scores[index] = 0.0
            continue
        a = distances[index, own_mask].sum() / same_count
        b = np.inf
        for other in unique:
            if other == own:
                continue
            other_mask = labels == other
            b = min(b, distances[index, other_mask].mean())
        scores[index] = (b - a) / max(a, b) if max(a, b) > 0 else 0.0
    return float(scores.mean())


def intra_inter_distance_ratio(embeddings: np.ndarray, labels: np.ndarray) -> float:
    """Mean intra-class distance divided by mean inter-centroid distance (lower = better)."""
    embeddings, labels = _validate(embeddings, labels)
    unique = np.unique(labels)
    centroids = np.stack([embeddings[labels == c].mean(axis=0) for c in unique], axis=0)
    intra = []
    for position, class_id in enumerate(unique):
        rows = embeddings[labels == class_id]
        intra.append(np.linalg.norm(rows - centroids[position], axis=1).mean())
    pairwise = np.linalg.norm(centroids[:, None, :] - centroids[None, :, :], axis=2)
    upper = pairwise[np.triu_indices(len(unique), k=1)]
    inter = upper.mean() if upper.size else 0.0
    if inter == 0:
        return float("inf")
    return float(np.mean(intra) / inter)


def class_separation_report(embeddings: np.ndarray, labels: np.ndarray) -> Dict[str, float]:
    """Silhouette + intra/inter ratio in one dictionary (used by the Figure 5 experiment)."""
    return {
        "silhouette": silhouette_score(embeddings, labels),
        "intra_inter_ratio": intra_inter_distance_ratio(embeddings, labels),
    }
