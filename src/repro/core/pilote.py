"""The PILOTE learner.

PILOTE (Pushing Incremental Learning On human activities at the exTreme Edge)
combines four ingredients:

1. a Siamese embedding backbone trained with a supervised contrastive loss
   (cloud pre-training on the initially known activities);
2. a herding-selected exemplar support set shipped to the edge together with
   the pre-trained model;
3. an edge-side incremental update that jointly optimises the contrastive loss
   on new-class data and a feature-space distillation loss anchoring the
   old-class exemplar embeddings to the frozen pre-trained model
   (``L = α · L_disti + (1 − α) · L_contra``, Algorithm 1);
4. a nearest-class-mean classifier over class prototypes (Eq. 1).

Typical usage::

    config = PiloteConfig.edge_lightweight(seed=0)
    learner = PILOTE(config)
    learner.pretrain(old_train, old_validation)
    learner.learn_new_classes(new_train, new_validation)
    predictions = learner.predict(test.features)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.autodiff.tensor import Tensor, no_grad
from repro.backend import Backend, get_backend, make_backend
from repro.backend.sharded import ShardedBackend
from repro.core.config import PiloteConfig
from repro.core.embedding import EmbeddingNetwork
from repro.core.exemplars import ExemplarStore
from repro.core.ncm import NCMClassifier
from repro.core.pairs import PairSampler
from repro.core.prototypes import PrototypeStore
from repro.data.dataset import HARDataset
from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.utils.clock import perf_seconds
from repro.nn.losses import ContrastiveLoss, DistillationLoss
from repro.nn.optim import Adam
from repro.nn.schedulers import HalvingLR
from repro.nn.trainer import EarlyStopping, Trainer, TrainingHistory
from repro.utils.logging import get_logger
from repro.utils.rng import RandomState, resolve_rng

logger = get_logger("core.pilote")


class PILOTE:
    """Incremental human-activity learner for the extreme edge.

    Parameters
    ----------
    config:
        Hyper-parameters; defaults to the paper's settings
        (:meth:`PiloteConfig.paper_defaults`).
    seed:
        Overrides ``config.seed`` when given.
    backend:
        Compute backend for the learner's per-class workloads: a registry
        name (``"sharded"`` partitions herding / prototype refresh /
        support-set builds across a worker pool, bit-exact with serial), a
        prebuilt :class:`~repro.backend.Backend` instance, or ``None`` for
        the ambient process-wide backend.
    shards:
        Worker count for ``backend="sharded"`` (defaults to the core count);
        rejected for any other backend.
    """

    def __init__(
        self,
        config: Optional[PiloteConfig] = None,
        seed: RandomState = None,
        *,
        backend: Union[str, Backend, None] = None,
        shards: Optional[int] = None,
    ) -> None:
        self.config = config or PiloteConfig()
        self._rng = resolve_rng(seed if seed is not None else self.config.seed)
        self._backend, self._owns_backend = self._resolve_backend(backend, shards)
        self.model: Optional[EmbeddingNetwork] = None
        self.teacher: Optional[EmbeddingNetwork] = None
        self.exemplars = ExemplarStore(
            capacity=self.config.cache_size,
            strategy=self.config.exemplar_strategy,
            rng=self._rng,
        )
        self.prototypes = PrototypeStore(embedding_dim=self.config.embedding_dim)
        self.classifier = NCMClassifier()
        self._old_classes: List[int] = []
        self._new_classes: List[int] = []
        self._contrastive = ContrastiveLoss(
            margin=self.config.margin, variant=self.config.contrastive_variant
        )
        self._distillation = DistillationLoss()
        self._pretrain_dataset: Optional[HARDataset] = None
        self._classifier_ready = False
        self._state_version = 0
        # Bumped after every optimisation run; with the model's identity it
        # keys model broadcasts to the shard pool (ship once per revision).
        self._model_revision = 0
        self._phase_seconds: Dict[str, float] = {}

    @staticmethod
    def _resolve_backend(
        backend: Union[str, Backend, None], shards: Optional[int]
    ) -> Tuple[Optional[Backend], bool]:
        """``(backend instance or None, whether the learner owns it)``."""
        if backend is None:
            if shards is not None:
                raise ConfigurationError(
                    'shards= requires backend="sharded" (the default backend '
                    "is single-process)"
                )
            return None, False
        if isinstance(backend, Backend):
            if shards is not None:
                raise ConfigurationError(
                    "shards= cannot resize an already-built backend instance; "
                    "pass the backend name instead"
                )
            return backend, False
        if backend == ShardedBackend.name:
            return ShardedBackend(shards=shards), True
        if shards is not None:
            raise ConfigurationError(
                f'shards= requires backend="sharded", got backend={backend!r}'
            )
        return make_backend(backend), True

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def is_pretrained(self) -> bool:
        return self.model is not None and bool(self._old_classes)

    @property
    def classes_(self) -> List[int]:
        """All classes currently known to the learner."""
        return sorted(set(self._old_classes) | set(self._new_classes))

    @property
    def old_classes(self) -> List[int]:
        return list(self._old_classes)

    @property
    def new_classes(self) -> List[int]:
        return list(self._new_classes)

    @property
    def state_version(self) -> int:
        """Monotonic counter bumped whenever prototypes/classifier state changes.

        Serving-side caches (:class:`repro.edge.inference.InferenceEngine`)
        compare against this to know when to rebuild their prototype matrix.
        """
        return self._state_version

    @property
    def backend(self) -> Optional[Backend]:
        """The learner-pinned backend (``None`` = ambient process backend)."""
        return self._backend

    @property
    def phase_seconds(self) -> Dict[str, float]:
        """Wall-clock phase breakdown of the most recent learning call.

        Keys: ``"training"``, ``"herding"`` (exemplar selection) and
        ``"prototype_refresh"`` — the split :class:`repro.edge.profiler
        .EdgeProfiler` exports so benchmarks can attribute where a sharded
        speedup lands.
        """
        return dict(self._phase_seconds)

    def close(self) -> None:
        """Release the learner-owned backend's worker pool, if any.

        Only backends the learner built itself (``backend="sharded"``) are
        closed; instances handed in are the caller's to manage.  Idempotent.
        """
        if self._owns_backend and self._backend is not None:
            closer = getattr(self._backend, "close", None)
            if closer is not None:
                closer()

    # ------------------------------------------------------------------ #
    # cloud pre-training
    # ------------------------------------------------------------------ #
    def pretrain(
        self,
        train: HARDataset,
        validation: Optional[HARDataset] = None,
        *,
        exemplars_per_class: Optional[int] = None,
    ) -> TrainingHistory:
        """Cloud-side pre-training on the initially known activities.

        Trains the embedding backbone with the pure contrastive objective,
        then builds the exemplar support set and the class prototypes.

        Parameters
        ----------
        train, validation:
            Old-class data (``D_o``) and its validation split.
        exemplars_per_class:
            Support-set size per class; defaults to ``cache_size // n_classes``.
        """
        if train.n_samples < 2:
            raise DataError("pre-training requires at least two samples")
        self._phase_seconds = {}
        self.model = EmbeddingNetwork(train.n_features, config=self.config, rng=self._rng)
        self._old_classes = [int(c) for c in train.classes]
        self._new_classes = []
        self._pretrain_dataset = train
        history = self._run_training(
            features=train.features,
            labels=train.labels,
            validation=validation,
            max_epochs=self.config.max_epochs_pretrain,
            new_classes=None,
            teacher=None,
        )
        self.build_support_set(per_class=exemplars_per_class)
        logger.info(
            "pre-trained on classes %s (%d samples, %d epochs)",
            self._old_classes,
            train.n_samples,
            history.epochs_run,
        )
        return history

    def build_support_set(
        self,
        dataset: Optional[HARDataset] = None,
        *,
        per_class: Optional[int] = None,
        strategy: Optional[str] = None,
    ) -> ExemplarStore:
        """(Re)build the exemplar support set from old-class data.

        This is the cloud-side step of Algorithm 1 (lines 1–7).  It may be
        called again after pre-training with a different ``per_class`` budget
        or selection ``strategy`` — the support-set-size experiments
        (Figure 6) rely on that.
        """
        if self.model is None:
            raise NotFittedError("pretrain() must run before building the support set")
        dataset = dataset or self._pretrain_dataset
        if dataset is None:
            raise DataError("no dataset available to build the support set from")
        strategy = strategy or self.config.exemplar_strategy
        self.exemplars = ExemplarStore(
            capacity=self.config.cache_size if per_class is None else None,
            strategy=strategy,
            rng=self._rng,
        )
        classes = [int(c) for c in dataset.classes]
        budget = per_class
        if budget is None:
            budget = max(self.config.cache_size // max(len(classes), 1), 1)
        herding_start = perf_seconds()
        self._select_class_exemplars(
            [(class_id, dataset.class_subset(class_id)) for class_id in classes],
            budget,
        )
        self._phase_seconds["herding"] = perf_seconds() - herding_start
        self._refresh_prototypes()
        return self.exemplars

    # ------------------------------------------------------------------ #
    # edge-side incremental learning
    # ------------------------------------------------------------------ #
    def learn_new_classes(
        self,
        new_train: HARDataset,
        new_validation: Optional[HARDataset] = None,
        *,
        new_exemplars_per_class: Optional[int] = None,
    ) -> TrainingHistory:
        """Edge-side incremental update with new-class data (Algorithm 1, lines 8–13).

        Parameters
        ----------
        new_train:
            New-class samples ``D_n`` recorded on the edge.
        new_validation:
            Optional validation split used for early stopping.
        new_exemplars_per_class:
            How many new-class exemplars to keep afterwards; defaults to the
            same per-class budget as the old classes.
        """
        if not self.is_pretrained:
            raise NotFittedError("pretrain() must run before learn_new_classes()")
        if len(self.exemplars) == 0:
            raise NotFittedError("the support set is empty; call build_support_set() first")
        incoming = [int(c) for c in new_train.classes]
        already_known = set(self.classes_) & set(incoming)
        if already_known:
            raise DataError(f"classes {sorted(already_known)} are already known to the model")
        self._phase_seconds = {}

        # Freeze the current model as the distillation teacher φ_Θo.
        self.teacher = self.model.clone_frozen()

        support_features, support_labels = self.exemplars.as_dataset()
        combined_features = np.concatenate([support_features, new_train.features], axis=0)
        combined_labels = np.concatenate([support_labels, new_train.labels], axis=0)

        validation = new_validation
        if validation is not None and validation.n_samples > 1:
            validation_features = np.concatenate(
                [support_features, validation.features], axis=0
            )
            validation_labels = np.concatenate([support_labels, validation.labels], axis=0)
            validation_pair: Optional[Tuple[np.ndarray, np.ndarray]] = (
                validation_features,
                validation_labels,
            )
        else:
            validation_pair = None

        history = self._run_training(
            features=combined_features,
            labels=combined_labels,
            validation=None,
            validation_arrays=validation_pair,
            max_epochs=self.config.max_epochs_increment,
            new_classes=set(incoming),
            teacher=self.teacher,
        )

        # Store exemplars for the new classes and refresh all prototypes.
        budget = new_exemplars_per_class
        if budget is None:
            counts = self.exemplars.exemplars_per_class()
            budget = max(counts.values()) if counts else None
        herding_start = perf_seconds()
        self._select_class_exemplars(
            [(class_id, new_train.class_subset(class_id)) for class_id in incoming],
            budget,
        )
        self._phase_seconds["herding"] = perf_seconds() - herding_start
        self._new_classes = sorted(set(self._new_classes) | set(incoming))
        self._refresh_prototypes()
        logger.info(
            "learned new classes %s from %d samples (%d epochs)",
            incoming,
            new_train.n_samples,
            history.epochs_run,
        )
        return history

    def refine_prototype(self, class_id: int, features: np.ndarray) -> np.ndarray:
        """Fold new samples of a *known* class into its prototype — no training.

        The cheap edge-side increment: a device that keeps observing an
        activity it already knows does not need to retrain the backbone
        (``learn_new_classes`` rebuilds everything); it embeds the new
        windows under the frozen model and moves the class prototype to the
        running mean, weighting the existing prototype by the class's
        exemplar count.  Exactly one prototype row changes, so downstream
        delta re-syncs (:meth:`EngineStateSnapshot.diff
        <repro.edge.inference.EngineStateSnapshot.diff>`) ship one row
        instead of the whole engine state.

        Returns the updated prototype.
        """
        if self.model is None:
            raise NotFittedError("pretrain() must run before refine_prototype()")
        class_id = int(class_id)
        if class_id not in self.prototypes:
            raise DataError(
                f"class {class_id} is unknown; refine_prototype only updates "
                "existing prototypes (use learn_new_classes for new classes)"
            )
        features = np.asarray(features)
        if features.ndim == 1:
            features = features[None, :]
        if features.ndim != 2 or features.shape[0] == 0:
            raise DataError("features must be a non-empty (n, d) array")
        embeddings = self.model.embed(features)
        weight = float(self.exemplars.exemplars_per_class().get(class_id, 1))
        old = self.prototypes.get(class_id)
        updated = (old * weight + embeddings.sum(axis=0)) / (
            weight + embeddings.shape[0]
        )
        self.prototypes.set(class_id, updated)
        self.classifier = NCMClassifier().fit(self.prototypes)
        self._classifier_ready = True
        self._state_version += 1
        return self.prototypes.get(class_id)

    # ------------------------------------------------------------------ #
    # inference
    # ------------------------------------------------------------------ #
    def embed(self, features: np.ndarray) -> np.ndarray:
        """Embed feature rows with the current model (inference mode)."""
        if self.model is None:
            raise NotFittedError("the model has not been trained")
        return self.model.embed(features)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict activity classes with the NCM classifier (Eq. 1)."""
        self._ensure_classifier()
        return self.classifier.predict(self.embed(features))

    def predict_scores(self, features: np.ndarray) -> np.ndarray:
        """Soft class scores (softmax over negative prototype distances)."""
        self._ensure_classifier()
        return self.classifier.predict_scores(self.embed(features))

    def inference_engine(self, *, batch_size: int = 256) -> "InferenceEngine":
        """A batched serving engine bound to this learner (created lazily).

        The engine caches the prototype matrix and embeds many windows per
        call; it tracks :attr:`state_version` so incremental updates
        (:meth:`learn_new_classes`, :meth:`build_support_set`) invalidate the
        cache automatically.  Repeated calls return the same engine instance.
        """
        from repro.edge.inference import InferenceEngine

        engine = getattr(self, "_engine", None)
        if engine is None or engine.batch_size != batch_size:
            engine = InferenceEngine(self, batch_size=batch_size)
            self._engine = engine
        return engine

    def evaluate(self, dataset: HARDataset) -> float:
        """Plain accuracy of the learner on a labelled dataset."""
        predictions = self.predict(dataset.features)
        return float(np.mean(predictions == dataset.labels))

    # ------------------------------------------------------------------ #
    # resource accounting (Q2)
    # ------------------------------------------------------------------ #
    def support_set_nbytes(self) -> int:
        """Bytes needed to store the exemplar support set as float32."""
        return self.exemplars.nbytes()

    def model_nbytes(self) -> int:
        """Bytes needed to store the backbone parameters as float32."""
        if self.model is None:
            return 0
        return self.model.parameter_nbytes()

    def memory_footprint(self) -> Dict[str, int]:
        """Byte-level footprint of everything the edge must hold."""
        return {
            "model_bytes": self.model_nbytes(),
            "support_set_bytes": self.support_set_nbytes(),
            "prototype_bytes": self.prototypes.nbytes(),
            "total_bytes": self.model_nbytes()
            + self.support_set_nbytes()
            + self.prototypes.nbytes(),
        }

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _sharded_backend(self) -> Optional[Backend]:
        """The backend to fan per-class work out on, or ``None`` to stay serial.

        The learner-pinned backend wins over the ambient one; either counts
        only when it actually shards (``map_class_units`` with a world size
        above one) — a one-shard world runs the serial loops unchanged.
        """
        backend = self._backend if self._backend is not None else get_backend()
        if getattr(backend, "world_size", 1) > 1 and hasattr(backend, "map_class_units"):
            return backend
        return None

    def _model_token(self) -> Tuple[int, int]:
        """Staleness key for model broadcasts to the shard pool.

        Identity *and* revision: every network carries a process-unique
        monotonic ``instance_id`` (never reissued, unlike ``id()`` — a freed
        learner's address can be reused by a new model with an equal
        revision, which would make a shared pool silently skip the
        re-broadcast), and every optimisation run bumps the revision, so the
        pool re-ships exactly when the parameters could have changed.
        """
        return (self.model.instance_id, self._model_revision)

    def _select_class_exemplars(
        self, class_rows: Sequence[Tuple[int, np.ndarray]], budget: Optional[int]
    ) -> None:
        """Select and store exemplars for each ``(class_id, rows)`` unit.

        Under a sharded backend with the herding strategy, whole classes fan
        out to the shard pool (the ``"herd_class"`` kernel embeds the class
        and runs the exact serial :func:`~repro.core.exemplars
        .herding_selection` — identical shapes and data, so the indices are
        bit-for-bit the serial ones) and only the indices cross back.  The
        random strategy always stays on the coordinator: selection is one
        cheap RNG draw per class, and drawing here in class order keeps the
        store's RNG sequence identical to the serial path.
        """
        sharded = self._sharded_backend()
        if (
            sharded is not None
            and self.exemplars.strategy == "herding"
            and budget is not None
            and len(class_rows) > 1
        ):
            results = sharded.map_class_units(
                self.model,
                self._model_token(),
                "herd_class",
                [(class_id, rows, budget) for class_id, rows in class_rows],
            )
            indices_by_class = {class_id: indices for class_id, indices in results}
            for class_id, rows in class_rows:
                self.exemplars.set_selected(class_id, rows, indices_by_class[class_id])
            return
        for class_id, rows in class_rows:
            embeddings = self.model.embed(rows)
            self.exemplars.select(class_id, rows, embeddings, n_exemplars=budget)

    def _refresh_prototypes(self) -> None:
        """Recompute every class prototype from its exemplars under the current model."""
        if self.model is None:
            raise NotFittedError("the model has not been trained")
        start = perf_seconds()
        self.prototypes = PrototypeStore(embedding_dim=self.config.embedding_dim)
        class_ids = self.exemplars.classes
        sharded = self._sharded_backend()
        if sharded is not None and len(class_ids) > 1:
            # One whole class per unit: the worker computes embed(rows)
            # .mean(axis=0) with exactly the serial shapes, so each prototype
            # is bit-exact with the inline loop below.
            results = sharded.map_class_units(
                self.model,
                self._model_token(),
                "class_prototype",
                [(class_id, self.exemplars.get(class_id)) for class_id in class_ids],
            )
            for class_id, prototype in results:
                self.prototypes.set(class_id, prototype)
        else:
            for class_id in class_ids:
                rows = self.exemplars.get(class_id)
                embeddings = self.model.embed(rows)
                self.prototypes.set(class_id, embeddings.mean(axis=0))
        self._phase_seconds["prototype_refresh"] = perf_seconds() - start
        if len(self.prototypes) > 0:
            self.classifier = NCMClassifier().fit(self.prototypes)
            self._classifier_ready = True
        self._state_version += 1

    def _ensure_classifier(self) -> None:
        if not self._classifier_ready:
            if len(self.prototypes) == 0:
                raise NotFittedError("no prototypes available; train the model first")
            self.classifier = NCMClassifier().fit(self.prototypes)
            self._classifier_ready = True
            self._state_version += 1

    def _run_training(
        self,
        *,
        features: np.ndarray,
        labels: np.ndarray,
        validation: Optional[HARDataset],
        max_epochs: int,
        new_classes: Optional[Set[int]],
        teacher: Optional[EmbeddingNetwork],
        validation_arrays: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> TrainingHistory:
        """Shared optimisation loop for pre-training and incremental updates."""
        assert self.model is not None
        model = self.model
        config = self.config
        pair_strategy = "new_centred" if new_classes else "all"
        sampler = PairSampler(
            strategy=pair_strategy, max_pairs=config.max_pairs_per_batch, rng=self._rng
        )
        eval_sampler = PairSampler(
            strategy="all", max_pairs=config.max_pairs_per_batch, rng=self._rng
        )
        old_class_ids = set(self._old_classes)
        alpha = config.alpha if teacher is not None else 0.0

        def joint_loss(batch_features: np.ndarray, batch_labels: np.ndarray, *, training: bool) -> Tensor:
            batch_tensor = Tensor(batch_features)
            embeddings = model(batch_tensor)
            active_sampler = sampler if training else eval_sampler
            pairs = active_sampler.sample(batch_labels, new_classes=new_classes)
            left = embeddings[pairs.left]
            right = embeddings[pairs.right]
            contrastive = self._contrastive(left, right, pairs.same_class)
            if alpha <= 0.0 or teacher is None:
                return contrastive
            old_mask = np.isin(batch_labels, sorted(old_class_ids))
            if not old_mask.any():
                return contrastive * (1.0 - alpha)
            old_indices = np.flatnonzero(old_mask)
            with no_grad():
                teacher_embeddings = teacher(Tensor(batch_features[old_indices])).data
            student_embeddings = embeddings[old_indices]
            distillation = self._distillation(student_embeddings, Tensor(teacher_embeddings))
            return distillation * alpha + contrastive * (1.0 - alpha)

        def train_loss(batch_features: np.ndarray, batch_labels: np.ndarray) -> Tensor:
            return joint_loss(batch_features, batch_labels, training=True)

        def validation_loss(batch_features: np.ndarray, batch_labels: np.ndarray) -> Tensor:
            return joint_loss(batch_features, batch_labels, training=False)

        optimizer = Adam(model.parameters(), lr=config.learning_rate)
        scheduler = HalvingLR(optimizer)
        early_stopping = EarlyStopping(
            threshold=config.early_stopping_threshold,
            patience=config.early_stopping_patience,
        )
        trainer = Trainer(
            model,
            optimizer,
            scheduler=scheduler,
            early_stopping=early_stopping,
            max_epochs=max_epochs,
            batch_size=config.batch_size,
            rng=self._rng,
        )
        if validation_arrays is not None:
            validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = validation_arrays
        elif validation is not None and validation.n_samples > 1:
            validation_data = (validation.features, validation.labels)
        else:
            validation_data = None
        training_start = perf_seconds()
        history = trainer.fit(
            train_loss,
            features,
            labels,
            validation=validation_data,
            validation_loss=validation_loss,
        )
        self._phase_seconds["training"] = perf_seconds() - training_start
        self._model_revision += 1
        return history
