"""Functional interface to the feature-space distillation loss (Algorithm 1, line 11)."""

from __future__ import annotations

import numpy as np

from repro.autodiff.tensor import Tensor
from repro.nn.losses import DistillationLoss


def distillation_loss(new_embeddings, old_embeddings, *, reduction: str = "mean") -> Tensor:
    """Differentiable distillation term ``Σ ||φ_new(x) − φ_old(x)||²``.

    ``old_embeddings`` (the frozen teacher's embeddings) never receives a
    gradient.
    """
    criterion = DistillationLoss(reduction=reduction)
    new_embeddings = (
        new_embeddings if isinstance(new_embeddings, Tensor) else Tensor(new_embeddings)
    )
    old_embeddings = (
        old_embeddings if isinstance(old_embeddings, Tensor) else Tensor(old_embeddings)
    )
    return criterion(new_embeddings, old_embeddings)


def distillation_loss_value(new_embeddings: np.ndarray, old_embeddings: np.ndarray) -> float:
    """Pure-numpy evaluation of the mean distillation loss."""
    new = np.asarray(new_embeddings, dtype=np.float64)
    old = np.asarray(old_embeddings, dtype=np.float64)
    return float(((new - old) ** 2).sum(axis=1).mean())
