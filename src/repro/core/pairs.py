"""Pair sampling for the Siamese contrastive objective.

Algorithm 1 (line 12) forms contrastive pairs between the old-class support
set ``D_0`` and the new-class data ``D_n``.  The paper additionally notes that
thanks to the distillation constraint on old-class embeddings, the number of
contrastive pairs can be reduced to the pairs involving new-class samples
(instead of all-vs-all pairs over every class), which is the "new_centred"
strategy implemented here.  An "all" strategy (every pair within the batch) is
available for pre-training and ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.backend import get_backend
from repro.exceptions import DataError
from repro.utils.rng import RandomState, resolve_rng


@dataclass
class PairBatch:
    """Index representation of a set of sample pairs within a mini-batch.

    ``left`` and ``right`` index rows of the batch; ``same_class`` holds the
    binary pair label ``Y`` of Eq. 2 (1 when the two rows share a class).
    """

    left: np.ndarray
    right: np.ndarray
    same_class: np.ndarray

    def __post_init__(self) -> None:
        self.left = np.asarray(self.left, dtype=np.int64)
        self.right = np.asarray(self.right, dtype=np.int64)
        self.same_class = get_backend().asarray(self.same_class)
        if not (self.left.shape == self.right.shape == self.same_class.shape):
            raise DataError("pair index arrays must share the same shape")

    @property
    def n_pairs(self) -> int:
        return int(self.left.shape[0])

    @property
    def n_positive(self) -> int:
        return int(self.same_class.sum())

    @property
    def n_negative(self) -> int:
        return self.n_pairs - self.n_positive


class PairSampler:
    """Builds :class:`PairBatch` objects from mini-batch labels.

    Parameters
    ----------
    strategy:
        ``"all"`` — every unordered pair in the batch (capped at ``max_pairs``
        by uniform sub-sampling); ``"new_centred"`` — only pairs in which at
        least one member belongs to a designated set of new classes;
        ``"balanced"`` — equal numbers of positive and negative pairs drawn at
        random.
    max_pairs:
        Upper bound on the number of pairs returned per call.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        strategy: str = "all",
        max_pairs: int = 256,
        rng: RandomState = None,
    ) -> None:
        if strategy not in ("all", "new_centred", "balanced"):
            raise DataError(
                f"strategy must be one of 'all', 'new_centred', 'balanced', got {strategy!r}"
            )
        if max_pairs <= 0:
            raise DataError(f"max_pairs must be positive, got {max_pairs}")
        self.strategy = strategy
        self.max_pairs = int(max_pairs)
        self._rng = resolve_rng(rng)

    # ------------------------------------------------------------------ #
    def sample(
        self,
        labels: np.ndarray,
        new_classes: Optional[set] = None,
    ) -> PairBatch:
        """Sample pairs among the rows described by ``labels``."""
        labels = np.asarray(labels).reshape(-1)
        count = labels.shape[0]
        if count < 2:
            raise DataError("at least two samples are required to build pairs")
        if self.strategy == "balanced":
            return self._balanced(labels)
        left, right = np.triu_indices(count, k=1)
        if self.strategy == "new_centred":
            if not new_classes:
                raise DataError("new_centred pair sampling requires the set of new classes")
            new_ids = np.asarray(sorted(int(c) for c in new_classes))
            # Membership is resolved once per row, then gathered per pair —
            # O(n log c) instead of O(n² log c) isin calls over pair arrays.
            row_is_new = np.isin(labels, new_ids)
            involves_new = row_is_new[left] | row_is_new[right]
            left, right = left[involves_new], right[involves_new]
            if left.size == 0:
                # Fall back to all pairs (e.g. a batch containing only exemplars).
                left, right = np.triu_indices(count, k=1)
        if left.size > self.max_pairs:
            chosen = self._rng.choice(left.size, size=self.max_pairs, replace=False)
            left, right = left[chosen], right[chosen]
        same = labels[left] == labels[right]
        return PairBatch(left=left, right=right, same_class=same)

    # ------------------------------------------------------------------ #
    def _balanced(self, labels: np.ndarray) -> PairBatch:
        count = labels.shape[0]
        left, right = np.triu_indices(count, k=1)
        same = labels[left] == labels[right]
        positive = np.flatnonzero(same)
        negative = np.flatnonzero(~same)
        per_side = self.max_pairs // 2
        if positive.size == 0 or negative.size == 0:
            # Degenerate batch (single class): return whatever pairs exist.
            chosen = np.arange(left.size)
            if chosen.size > self.max_pairs:
                chosen = self._rng.choice(chosen, size=self.max_pairs, replace=False)
        else:
            take_pos = min(per_side, positive.size)
            take_neg = min(per_side, negative.size)
            chosen = np.concatenate(
                [
                    self._rng.choice(positive, size=take_pos, replace=False),
                    self._rng.choice(negative, size=take_neg, replace=False),
                ]
            )
        left, right = left[chosen], right[chosen]
        return PairBatch(
            left=left,
            right=right,
            same_class=labels[left] == labels[right],
        )


def count_contrastive_pairs(class_counts: dict, new_classes: Optional[set] = None) -> int:
    """Number of pairs formed under the paper's complexity discussion.

    With ``new_classes`` given, only pairs involving at least one new-class
    sample are counted (PILOTE's reduced pair set); otherwise all within-batch
    pairs are counted.
    """
    total = int(sum(class_counts.values()))
    all_pairs = total * (total - 1) // 2
    if not new_classes:
        return all_pairs
    old_total = int(sum(c for k, c in class_counts.items() if k not in new_classes))
    old_pairs = old_total * (old_total - 1) // 2
    return all_pairs - old_pairs
