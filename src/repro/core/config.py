"""Configuration of the PILOTE learner.

The defaults replicate the parameter settings reported in Section 6.1.2 of the
paper: a fully connected backbone of widths 1024 × 512 × 128 × 64 projecting
into a 128-dimensional embedding space, Adam with an initial learning rate of
0.01 halved every epoch, balancing weight α = 0.5, and early stopping once the
validation-loss change stays below 10⁻⁴ for five consecutive epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class PiloteConfig:
    """Hyper-parameters of PILOTE and of the embedding backbone.

    Attributes
    ----------
    hidden_dims:
        Widths of the hidden fully connected layers (BatchNorm + ReLU each).
    embedding_dim:
        Dimensionality of the final embedding space.
    alpha:
        Balancing weight between distillation and contrastive terms,
        ``L = α · L_disti + (1 − α) · L_contra``.
    margin:
        Margin of the contrastive loss.
    contrastive_variant:
        ``"squared"`` (paper Eq. 2) or ``"hadsell"``.
    learning_rate:
        Initial Adam learning rate (halved every epoch).
    batch_size:
        Mini-batch size for both pre-training and edge updates.
    max_epochs_pretrain / max_epochs_increment:
        Epoch caps for cloud pre-training and edge incremental updates.
    early_stopping_threshold / early_stopping_patience:
        The paper's plateau rule (1e-4, five consecutive epochs).
    cache_size:
        Edge cache size ``K``: the total number of old-class exemplars kept;
        divided evenly among old classes (``m = K / (s − 1)``).
    exemplar_strategy:
        ``"herding"`` (representative exemplars, Algorithm 1) or ``"random"``.
    max_pairs_per_batch:
        Cap on the number of contrastive pairs sampled from one mini-batch.
    normalize_embeddings:
        Whether to L2-normalise embeddings before distances are computed.
    seed:
        Base seed for parameter initialisation and batching.
    """

    hidden_dims: Tuple[int, ...] = (1024, 512, 128, 64)
    embedding_dim: int = 128
    alpha: float = 0.5
    margin: float = 1.0
    contrastive_variant: str = "squared"
    learning_rate: float = 0.01
    batch_size: int = 64
    max_epochs_pretrain: int = 30
    max_epochs_increment: int = 20
    early_stopping_threshold: float = 1e-4
    early_stopping_patience: int = 5
    cache_size: int = 800
    exemplar_strategy: str = "herding"
    max_pairs_per_batch: int = 256
    normalize_embeddings: bool = False
    batch_norm: bool = True
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.hidden_dims:
            raise ConfigurationError("hidden_dims must contain at least one layer width")
        if any(width <= 0 for width in self.hidden_dims):
            raise ConfigurationError(f"hidden layer widths must be positive, got {self.hidden_dims}")
        if self.embedding_dim <= 0:
            raise ConfigurationError(f"embedding_dim must be positive, got {self.embedding_dim}")
        if not 0.0 <= self.alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.margin <= 0:
            raise ConfigurationError(f"margin must be positive, got {self.margin}")
        if self.contrastive_variant not in ("squared", "hadsell"):
            raise ConfigurationError(
                f"contrastive_variant must be 'squared' or 'hadsell', got {self.contrastive_variant!r}"
            )
        if self.learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.batch_size <= 1:
            raise ConfigurationError(f"batch_size must be at least 2, got {self.batch_size}")
        if self.max_epochs_pretrain <= 0 or self.max_epochs_increment <= 0:
            raise ConfigurationError("epoch caps must be positive")
        if self.cache_size <= 0:
            raise ConfigurationError(f"cache_size must be positive, got {self.cache_size}")
        if self.exemplar_strategy not in ("herding", "random"):
            raise ConfigurationError(
                f"exemplar_strategy must be 'herding' or 'random', got {self.exemplar_strategy!r}"
            )
        if self.max_pairs_per_batch <= 0:
            raise ConfigurationError(
                f"max_pairs_per_batch must be positive, got {self.max_pairs_per_batch}"
            )

    # ------------------------------------------------------------------ #
    def layer_sizes(self, input_dim: int) -> Tuple[int, ...]:
        """Full layer-width sequence of the backbone for a given input size."""
        if input_dim <= 0:
            raise ConfigurationError(f"input_dim must be positive, got {input_dim}")
        return (int(input_dim),) + tuple(self.hidden_dims) + (int(self.embedding_dim),)

    def with_overrides(self, **kwargs) -> "PiloteConfig":
        """Return a copy with some fields replaced (dataclass ``replace``)."""
        return replace(self, **kwargs)

    @classmethod
    def paper_defaults(cls) -> "PiloteConfig":
        """The configuration described in Section 6.1.2 of the paper."""
        return cls()

    @classmethod
    def edge_lightweight(cls, seed: Optional[int] = None) -> "PiloteConfig":
        """A reduced backbone suitable for fast CPU experiments and tests.

        The layer pattern mirrors the paper's (wide → narrow → embedding) at a
        fraction of the parameter count, which keeps the numpy training loops
        fast while preserving the incremental-learning behaviour.
        """
        return cls(
            hidden_dims=(128, 64),
            embedding_dim=32,
            batch_size=32,
            max_epochs_pretrain=15,
            max_epochs_increment=10,
            cache_size=400,
            seed=seed,
        )
