"""Functional interface to the supervised contrastive loss (Eq. 2).

The class-based implementation lives in :class:`repro.nn.losses.ContrastiveLoss`;
this module exposes a thin functional wrapper plus a pure-numpy evaluation used
by diagnostics (no gradient graph).
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.tensor import Tensor
from repro.nn.losses import ContrastiveLoss


def contrastive_loss(
    left,
    right,
    same_class,
    *,
    margin: float = 1.0,
    variant: str = "squared",
    reduction: str = "mean",
) -> Tensor:
    """Differentiable supervised contrastive loss on embedding pairs.

    See :class:`repro.nn.losses.ContrastiveLoss` for parameter semantics.
    """
    criterion = ContrastiveLoss(margin=margin, variant=variant, reduction=reduction)
    left = left if isinstance(left, Tensor) else Tensor(left)
    right = right if isinstance(right, Tensor) else Tensor(right)
    return criterion(left, right, same_class)


def contrastive_loss_value(
    left: np.ndarray,
    right: np.ndarray,
    same_class: np.ndarray,
    *,
    margin: float = 1.0,
    variant: str = "squared",
) -> float:
    """Pure-numpy (non-differentiable) evaluation of the same loss."""
    left = np.asarray(left, dtype=np.float64)
    right = np.asarray(right, dtype=np.float64)
    same = np.asarray(same_class, dtype=np.float64).reshape(-1)
    squared = ((left - right) ** 2).sum(axis=1)
    if variant == "squared":
        dissimilar = np.maximum(0.0, margin**2 - squared)
    else:
        distance = np.sqrt(squared + 1e-12)
        dissimilar = np.maximum(0.0, margin - distance) ** 2
    per_pair = same * squared + (1.0 - same) * dissimilar
    return float(per_pair.mean())
