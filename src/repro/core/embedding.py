"""The Siamese embedding backbone.

The paper uses "a simple Fully Connected (FC) neural network with dimensions
[1024 × 512 × 128 × 64 × 128]", Batch Normalisation and ReLU on the first four
layers, and a final linear projection into a 128-dimensional embedding space.
Both Siamese branches share the same weights, so a single network object is
enough; pairs are formed downstream by indexing the embedded batch.
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from repro.autodiff import ops
from repro.autodiff.tensor import Tensor, no_grad
from repro.backend import get_backend
from repro.core.config import PiloteConfig
from repro.exceptions import ShapeError
from repro.nn.layers import Sequential, build_mlp
from repro.nn.module import Module
from repro.utils.rng import RandomState

#: Process-wide monotonic instance ids.  Unlike ``id()``, a consumed value is
#: never reissued, so ``instance_id`` safely keys per-model caches (the shard
#: pool's model broadcasts) across the lifetime of the process even after a
#: network is garbage collected and its address reused.
_instance_ids = itertools.count()


class EmbeddingNetwork(Module):
    """Feature-map ``φ_Θ : R^d → R^e`` implemented as an MLP.

    Parameters
    ----------
    input_dim:
        Dimensionality of the input feature vectors (80 for the paper's
        statistical features).
    config:
        :class:`PiloteConfig` describing the layer widths, embedding size and
        whether embeddings are L2-normalised.
    rng:
        Seed or generator for the weight initialisation.
    """

    def __init__(
        self,
        input_dim: int,
        config: Optional[PiloteConfig] = None,
        rng: RandomState = None,
    ) -> None:
        super().__init__()
        self.instance_id = next(_instance_ids)
        self.config = config or PiloteConfig()
        self.input_dim = int(input_dim)
        self.embedding_dim = self.config.embedding_dim
        layer_sizes = self.config.layer_sizes(input_dim)
        self.backbone: Sequential = build_mlp(
            layer_sizes,
            batch_norm=self.config.batch_norm,
            activation="relu",
            rng=rng if rng is not None else self.config.seed,
        )
        self.normalize = bool(self.config.normalize_embeddings)

    # ------------------------------------------------------------------ #
    def forward(self, inputs) -> Tensor:
        """Differentiable forward pass; accepts arrays or tensors."""
        tensor = inputs if isinstance(inputs, Tensor) else Tensor(inputs)
        if tensor.ndim != 2 or tensor.shape[1] != self.input_dim:
            raise ShapeError(
                f"expected input of shape (batch, {self.input_dim}), got {tensor.shape}"
            )
        embeddings = self.backbone(tensor)
        if self.normalize:
            embeddings = ops.l2_normalize(embeddings, axis=1)
        return embeddings

    def embed(self, features: np.ndarray, *, batch_size: int = 512) -> np.ndarray:
        """Inference-mode embedding of a feature matrix (no gradient graph).

        Large inputs are processed in chunks to bound peak memory on
        resource-constrained devices.
        """
        features = get_backend().asarray(features)
        if features.ndim == 1:
            features = features[None, :]
        was_training = self.training
        self.eval()
        outputs = []
        with no_grad():
            for start in range(0, features.shape[0], batch_size):
                chunk = features[start:start + batch_size]
                outputs.append(self.forward(Tensor(chunk)).data.copy())
        if was_training:
            self.train()
        return np.concatenate(outputs, axis=0)

    # ------------------------------------------------------------------ #
    def clone_frozen(self) -> "EmbeddingNetwork":
        """Deep copy used as the frozen teacher ``φ_Θo`` for distillation."""
        duplicate = EmbeddingNetwork(self.input_dim, config=self.config)
        duplicate.load_state_dict(self.state_dict())
        duplicate.eval()
        return duplicate

    def describe(self) -> dict:
        """Architecture summary (used by logs, examples and the edge profiler)."""
        return {
            "input_dim": self.input_dim,
            "hidden_dims": list(self.config.hidden_dims),
            "embedding_dim": self.embedding_dim,
            "n_parameters": self.num_parameters(),
            "parameter_bytes_float32": self.parameter_nbytes(),
            "batch_norm": self.config.batch_norm,
            "normalized": self.normalize,
        }
