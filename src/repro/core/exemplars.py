"""Exemplar ("support set") selection and storage.

Algorithm 1 of the paper selects, for every old class, the ``m = K / (s − 1)``
samples whose running embedding mean best approximates the class prototype —
the *herding* construction also used by iCaRL.  The resulting support set is
what the cloud ships to the edge device alongside the pre-trained model, so its
byte size is the quantity Q2 of the paper reasons about.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.backend import get_backend
from repro.exceptions import DataError
from repro.utils.rng import RandomState, resolve_rng
from repro.utils.serialization import float32_nbytes


def herding_selection(
    features: np.ndarray,
    embeddings: np.ndarray,
    n_exemplars: int,
) -> np.ndarray:
    """Indices of the herding-selected exemplars of one class.

    Implements lines 4–7 of Algorithm 1: iteratively pick the sample whose
    inclusion keeps the mean of the selected embeddings closest to the class
    prototype ``μ_y`` (each sample is selected at most once).

    Parameters
    ----------
    features:
        ``(n, d)`` raw feature rows of the class (only used for counting).
    embeddings:
        ``(n, e)`` embeddings of the same rows under the current model.
    n_exemplars:
        Number of exemplars ``m`` to select (capped at ``n``).

    Returns
    -------
    numpy.ndarray
        Indices into the class's rows, in selection order.

    Notes
    -----
    The selection at step ``k`` minimises ``||(S + e_i)/k − μ||`` over the
    remaining candidates, where ``S`` is the running sum of the already
    selected embeddings.  Expanding the square and dropping the terms that
    are constant across candidates, the argmin reduces to

        ``argmin_i  ||e_i||² + 2 · e_i · (S − k·μ)``

    so each step costs one matrix-vector product into a reused scratch
    buffer instead of materialising the ``(n, d)`` candidate-mean matrix and
    its row norms — the same selection, a fraction of the allocations.
    """
    backend = get_backend()
    embeddings = backend.asarray(embeddings)
    if embeddings.ndim != 2:
        raise DataError(f"embeddings must be 2-D, got shape {embeddings.shape}")
    count = embeddings.shape[0]
    if np.asarray(features).shape[0] != count:
        raise DataError("features and embeddings must describe the same rows")
    if n_exemplars <= 0:
        raise DataError(f"n_exemplars must be positive, got {n_exemplars}")
    n_exemplars = min(int(n_exemplars), count)

    prototype = embeddings.mean(axis=0)
    squared_norms = np.einsum("ij,ij->i", embeddings, embeddings)
    running_sum = np.zeros_like(prototype)
    centre = np.empty_like(prototype)
    available = np.ones(count, dtype=bool)
    scores = backend.scratch(count, embeddings.dtype, tag="herding.scores")
    selected: List[int] = []
    for step in range(1, n_exemplars + 1):
        np.multiply(prototype, -float(step), out=centre)
        centre += running_sum
        np.dot(embeddings, centre, out=scores)
        scores *= 2.0
        scores += squared_norms
        scores[~available] = np.inf
        best = int(np.argmin(scores))
        selected.append(best)
        available[best] = False
        running_sum += embeddings[best]
    return np.asarray(selected, dtype=np.int64)


def random_selection(
    features: np.ndarray,
    embeddings: np.ndarray,
    n_exemplars: int,
    rng: RandomState = None,
) -> np.ndarray:
    """Uniformly random exemplar selection (the paper's "random exemplars" setting)."""
    count = np.asarray(features).shape[0]
    if n_exemplars <= 0:
        raise DataError(f"n_exemplars must be positive, got {n_exemplars}")
    generator = resolve_rng(rng)
    take = min(int(n_exemplars), count)
    return np.sort(generator.choice(count, size=take, replace=False)).astype(np.int64)


SelectionFn = Callable[[np.ndarray, np.ndarray, int], np.ndarray]


class ExemplarStore:
    """Per-class exemplar sets ``P = (P_1, ..., P_t)``.

    The store keeps the raw feature rows (not embeddings) so that exemplars can
    be re-embedded whenever the model changes, exactly as Algorithm 1 requires.

    Parameters
    ----------
    capacity:
        Total cache size ``K``; ``None`` means unbounded (used by ablations).
    strategy:
        ``"herding"`` or ``"random"``.
    rng:
        Seed or generator for random selection.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        strategy: str = "herding",
        rng: RandomState = None,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise DataError(f"capacity must be positive, got {capacity}")
        if strategy not in ("herding", "random"):
            raise DataError(f"strategy must be 'herding' or 'random', got {strategy!r}")
        self.capacity = capacity
        self.strategy = strategy
        self._rng = resolve_rng(rng)
        self._exemplars: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    @property
    def classes(self) -> List[int]:
        return sorted(self._exemplars)

    def __contains__(self, class_id: int) -> bool:
        return int(class_id) in self._exemplars

    def __len__(self) -> int:
        return len(self._exemplars)

    def exemplars_per_class(self) -> Dict[int, int]:
        """Mapping ``class id → number of stored exemplars``."""
        return {class_id: rows.shape[0] for class_id, rows in self._exemplars.items()}

    def total_exemplars(self) -> int:
        return int(sum(rows.shape[0] for rows in self._exemplars.values()))

    def per_class_budget(self, n_classes: Optional[int] = None) -> Optional[int]:
        """``m = K / n_classes`` (Algorithm 1, line 1); ``None`` when unbounded."""
        if self.capacity is None:
            return None
        n_classes = n_classes if n_classes is not None else max(len(self._exemplars), 1)
        return max(self.capacity // max(n_classes, 1), 1)

    # ------------------------------------------------------------------ #
    def select(
        self,
        class_id: int,
        features: np.ndarray,
        embeddings: np.ndarray,
        n_exemplars: Optional[int] = None,
    ) -> np.ndarray:
        """Select and store exemplars for one class; returns the chosen indices."""
        features = get_backend().asarray(features)
        if features.ndim != 2 or features.shape[0] == 0:
            raise DataError(f"features for class {class_id} must be a non-empty 2-D array")
        budget = n_exemplars
        if budget is None:
            budget = self.per_class_budget()
        if budget is None:
            budget = features.shape[0]
        if self.strategy == "herding":
            indices = herding_selection(features, embeddings, budget)
        else:
            indices = random_selection(features, embeddings, budget, rng=self._rng)
        self._exemplars[int(class_id)] = features[indices].copy()
        return indices

    def set_selected(
        self, class_id: int, features: np.ndarray, indices: np.ndarray
    ) -> None:
        """Store rows chosen by an *externally computed* selection.

        The sharded backend runs herding on a shard worker and ships only the
        selected indices back; this method applies them with exactly the
        storage semantics of :meth:`select` (policy-dtype materialisation,
        fancy-indexed **copy**), so a store filled through the sharded path is
        bit-identical to one filled serially.
        """
        features = get_backend().asarray(features)
        if features.ndim != 2 or features.shape[0] == 0:
            raise DataError(f"features for class {class_id} must be a non-empty 2-D array")
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 1 or indices.shape[0] == 0:
            raise DataError(f"indices for class {class_id} must be a non-empty 1-D array")
        if indices.min() < 0 or indices.max() >= features.shape[0]:
            raise DataError(
                f"selection indices for class {class_id} fall outside the "
                f"{features.shape[0]} candidate rows"
            )
        self._exemplars[int(class_id)] = features[indices].copy()

    def set_exemplars(
        self, class_id: int, features: np.ndarray, *, copy: bool = True
    ) -> None:
        """Directly store exemplar rows for a class (used when re-balancing).

        ``copy=False`` stores the (policy-dtype) array **aliased**, without a
        defensive copy — the copy-on-write path pooled fleet templates use to
        share one support set across many devices.  The aliasing contract:

        * the store itself only ever *replaces* whole per-class entries
          (``select``/``set_selected``/``set_exemplars``) and never mutates
          rows in place, so sharing is safe from this side;
        * the caller must extend the same promise to the array it handed
          over: any later in-place write to it silently changes what
          :meth:`get`/:meth:`as_dataset` return, and the next prototype
          refresh folds the corrupted rows into the class means.  Re-balance
          by **replacing** entries, never by mutating the arrays behind them.
        * note that ``copy=False`` only aliases when the input already has
          the policy compute dtype — ``asarray`` with a differing dtype
          materialises a cast, which is a silent defensive copy.  Process
          shard boundaries also break aliasing naturally (pickled arrays are
          fresh buffers); the hazard is strictly in-process sharing, e.g. a
          serial-transport shard world or the pooled fleet templates.

        Tests pin this down from both sides (``tests/test_core_exemplars
        .py``): ``copy=True`` isolates the store from post-hoc mutation,
        ``copy=False`` demonstrably aliases.
        """
        features = get_backend().asarray(features)
        if features.ndim != 2 or features.shape[0] == 0:
            raise DataError("exemplar features must be a non-empty 2-D array")
        self._exemplars[int(class_id)] = features.copy() if copy else features

    def get(self, class_id: int) -> np.ndarray:
        if int(class_id) not in self._exemplars:
            raise KeyError(f"no exemplars stored for class {class_id}")
        return self._exemplars[int(class_id)]

    def remove(self, class_id: int) -> None:
        self._exemplars.pop(int(class_id), None)

    def rebalance(self, per_class: int) -> None:
        """Trim every class to at most ``per_class`` exemplars (keeps selection order)."""
        if per_class <= 0:
            raise DataError(f"per_class must be positive, got {per_class}")
        for class_id, rows in list(self._exemplars.items()):
            self._exemplars[class_id] = rows[:per_class]

    # ------------------------------------------------------------------ #
    def as_dataset(self) -> Tuple[np.ndarray, np.ndarray]:
        """All exemplars as ``(features, labels)`` arrays (the support set ``D_0``)."""
        if not self._exemplars:
            raise DataError("the exemplar store is empty")
        features = []
        labels = []
        for class_id in self.classes:
            rows = self._exemplars[class_id]
            features.append(rows)
            labels.append(np.full(rows.shape[0], class_id, dtype=np.int64))
        return np.concatenate(features, axis=0), np.concatenate(labels, axis=0)

    def nbytes(self, dtype_bytes: int = 4) -> int:
        """Storage footprint of the support set serialised as float32."""
        total_values = sum(rows.size for rows in self._exemplars.values())
        return float32_nbytes(total_values) if dtype_bytes == 4 else int(total_values * dtype_bytes)

    def describe(self) -> Dict[str, object]:
        """Summary used by the edge-transfer accounting and logs."""
        return {
            "strategy": self.strategy,
            "capacity": self.capacity,
            "classes": self.classes,
            "exemplars_per_class": self.exemplars_per_class(),
            "total_exemplars": self.total_exemplars(),
            "nbytes_float32": self.nbytes(),
        }
