"""PILOTE: the paper's core contribution.

The package implements incremental representation learning at the extreme
edge (Section 5 of the paper):

* a Siamese embedding backbone (:mod:`repro.core.embedding`) trained with the
  supervised contrastive loss with margin (Eq. 2),
* a feature-space distillation loss that anchors old-class exemplar embeddings
  to the pre-trained model (Algorithm 1),
* herding-based exemplar ("support set") selection and class prototypes,
* a nearest-class-mean classifier on the embedding space (Eq. 1),
* the :class:`~repro.core.pilote.PILOTE` learner orchestrating cloud
  pre-training and edge-side incremental updates.
"""

from repro.core.config import PiloteConfig
from repro.core.embedding import EmbeddingNetwork
from repro.core.pairs import PairBatch, PairSampler
from repro.core.contrastive import contrastive_loss
from repro.core.distillation import distillation_loss
from repro.core.exemplars import ExemplarStore, herding_selection, random_selection
from repro.core.prototypes import PrototypeStore, compute_class_prototypes
from repro.core.ncm import NCMClassifier
from repro.core.pilote import PILOTE
from repro.core.persistence import load_pilote, save_pilote

__all__ = [
    "PiloteConfig",
    "EmbeddingNetwork",
    "PairSampler",
    "PairBatch",
    "contrastive_loss",
    "distillation_loss",
    "ExemplarStore",
    "herding_selection",
    "random_selection",
    "PrototypeStore",
    "compute_class_prototypes",
    "NCMClassifier",
    "PILOTE",
    "save_pilote",
    "load_pilote",
]
