"""Class prototypes in the embedding space.

A class prototype ``μ_y`` is the mean embedding of the class's exemplar set
(Eq. 1 of the paper).  The :class:`PrototypeStore` keeps one prototype per
class and supports incremental updates as exemplar sets change.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.backend import get_backend
from repro.exceptions import DataError, NotFittedError


def compute_class_prototypes(
    embeddings: np.ndarray, labels: np.ndarray
) -> Dict[int, np.ndarray]:
    """Mean embedding per class.

    Parameters
    ----------
    embeddings:
        ``(n, d)`` embedding matrix.
    labels:
        ``(n,)`` integer class ids.
    """
    backend = get_backend()
    embeddings = backend.asarray(embeddings)
    labels = np.asarray(labels).reshape(-1)
    if embeddings.ndim != 2:
        raise DataError(f"embeddings must be 2-D, got shape {embeddings.shape}")
    if labels.shape[0] != embeddings.shape[0]:
        raise DataError(
            f"got {labels.shape[0]} labels for {embeddings.shape[0]} embeddings"
        )
    class_ids, means = backend.grouped_means(embeddings, labels)
    return {int(class_id): mean for class_id, mean in zip(class_ids, means)}


class PrototypeStore:
    """Mutable mapping ``class id → prototype vector``.

    The store keeps a monotonically increasing ``version`` that bumps on
    every mutation; downstream caches (the NCM classifier's prototype matrix,
    the batched inference engine) use it to detect staleness cheaply.
    """

    def __init__(self, embedding_dim: Optional[int] = None) -> None:
        self._prototypes: Dict[int, np.ndarray] = {}
        self._embedding_dim = embedding_dim
        self._version = 0

    @property
    def version(self) -> int:
        """Mutation counter used by downstream caches to detect staleness."""
        return self._version

    # ------------------------------------------------------------------ #
    def set(self, class_id: int, prototype: np.ndarray) -> None:
        """Insert or replace the prototype of one class."""
        prototype = np.asarray(prototype, dtype=np.float64).reshape(-1)
        if self._embedding_dim is None:
            self._embedding_dim = prototype.shape[0]
        elif prototype.shape[0] != self._embedding_dim:
            raise DataError(
                f"prototype for class {class_id} has dimension {prototype.shape[0]}, "
                f"expected {self._embedding_dim}"
            )
        self._prototypes[int(class_id)] = prototype
        self._version += 1

    def update_from(self, embeddings: np.ndarray, labels: np.ndarray) -> None:
        """Recompute prototypes for every class present in ``labels``."""
        for class_id, prototype in compute_class_prototypes(embeddings, labels).items():
            self.set(class_id, prototype)

    def get(self, class_id: int) -> np.ndarray:
        if int(class_id) not in self._prototypes:
            raise KeyError(f"no prototype stored for class {class_id}")
        return self._prototypes[int(class_id)]

    def remove(self, class_id: int) -> None:
        if self._prototypes.pop(int(class_id), None) is not None:
            self._version += 1

    def __contains__(self, class_id: int) -> bool:
        return int(class_id) in self._prototypes

    def __len__(self) -> int:
        return len(self._prototypes)

    @property
    def classes(self) -> List[int]:
        """Sorted class ids with stored prototypes."""
        return sorted(self._prototypes)

    @property
    def embedding_dim(self) -> Optional[int]:
        return self._embedding_dim

    def as_matrix(self, classes: Optional[Iterable[int]] = None) -> np.ndarray:
        """Prototypes stacked as a ``(n_classes, d)`` matrix (row order = ``classes``)."""
        order = list(classes) if classes is not None else self.classes
        if not order:
            raise NotFittedError("the prototype store is empty")
        return np.stack([self.get(class_id) for class_id in order], axis=0)

    def nbytes(self, dtype_bytes: int = 4) -> int:
        """Storage footprint of the prototypes when serialised as float32."""
        if self._embedding_dim is None:
            return 0
        return len(self._prototypes) * self._embedding_dim * dtype_bytes
