"""Saving and restoring a full PILOTE learner.

Edge deployments need to persist the learner between sessions (the device may
reboot between two data-collection campaigns).  The checkpoint contains the
backbone weights, the exemplar support set, the class prototypes and the
class bookkeeping; the configuration is stored as metadata so a restored
learner is functionally identical to the saved one.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.config import PiloteConfig
from repro.core.pilote import PILOTE
from repro.exceptions import NotFittedError, SerializationError
from repro.utils.serialization import load_npz_state, save_npz_state

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def pilote_state(learner: PILOTE) -> tuple:
    """``(state, metadata)`` of a trained learner — the checkpoint contents.

    ``state`` is a flat ``str → ndarray`` mapping (``model/<param>``,
    ``exemplars/<class>``, ``prototypes/<class>``) and ``metadata`` the
    config/bookkeeping dict.  Exposed separately from :func:`save_pilote` so
    callers can diff two states (delta checkpoints in
    :class:`~repro.fleet.checkpoint.CheckpointStore`) without touching disk.
    """
    if not learner.is_pretrained:
        raise NotFittedError("only a pre-trained learner can be saved")
    state = {}
    for key, value in learner.model.state_dict().items():
        state[f"model/{key}"] = value
    for class_id in learner.exemplars.classes:
        state[f"exemplars/{class_id}"] = learner.exemplars.get(class_id)
    for class_id in learner.prototypes.classes:
        state[f"prototypes/{class_id}"] = learner.prototypes.get(class_id)
    metadata = {
        "format_version": _FORMAT_VERSION,
        "config": dataclasses.asdict(learner.config),
        "input_dim": learner.model.input_dim,
        "old_classes": list(learner.old_classes),
        "new_classes": list(learner.new_classes),
        "exemplar_strategy": learner.exemplars.strategy,
        "exemplar_capacity": learner.exemplars.capacity,
    }
    return state, metadata


def save_pilote(learner: PILOTE, path: PathLike) -> Path:
    """Serialise a trained PILOTE learner to a single ``.npz`` checkpoint."""
    state, metadata = pilote_state(learner)
    return save_npz_state(path, state, metadata=metadata)


def pilote_from_state(state: dict, metadata: dict) -> PILOTE:
    """Rebuild a learner from a :func:`pilote_state`-shaped ``(state, metadata)``."""
    config_fields = dict(metadata["config"])
    config_fields["hidden_dims"] = tuple(config_fields["hidden_dims"])
    config = PiloteConfig(**config_fields)

    learner = PILOTE(config)
    from repro.core.embedding import EmbeddingNetwork  # local import avoids a cycle at module load

    learner.model = EmbeddingNetwork(int(metadata["input_dim"]), config=config)
    model_state = {
        key[len("model/"):]: value
        for key, value in state.items()
        if key.startswith("model/")
    }
    learner.model.load_state_dict(model_state)
    learner.model.eval()

    learner._old_classes = [int(c) for c in metadata["old_classes"]]
    learner._new_classes = [int(c) for c in metadata["new_classes"]]
    learner.exemplars.strategy = metadata.get("exemplar_strategy", config.exemplar_strategy)
    learner.exemplars.capacity = metadata.get("exemplar_capacity")
    for key, value in state.items():
        if key.startswith("exemplars/"):
            learner.exemplars.set_exemplars(int(key.split("/")[1]), np.asarray(value))
    for key, value in state.items():
        if key.startswith("prototypes/"):
            learner.prototypes.set(int(key.split("/")[1]), np.asarray(value))
    if len(learner.prototypes) > 0:
        learner.classifier = learner.classifier.fit(learner.prototypes)
        learner._classifier_ready = True
    return learner


def load_pilote(path: PathLike) -> PILOTE:
    """Restore a PILOTE learner saved with :func:`save_pilote`."""
    state = load_npz_state(path)
    metadata = state.get("__metadata__")
    if not isinstance(metadata, dict) or "config" not in metadata:
        raise SerializationError(f"{path} is not a PILOTE checkpoint")
    if metadata.get("format_version") != _FORMAT_VERSION:
        raise SerializationError(
            f"unsupported checkpoint version {metadata.get('format_version')!r}"
        )
    arrays = {key: value for key, value in state.items() if key != "__metadata__"}
    return pilote_from_state(arrays, metadata)
