"""Nearest Class Mean (NCM) classifier on the embedding space (Eq. 1).

Given class prototypes ``μ_y``, a sample is assigned to the class whose
prototype is nearest to its embedding.  The classifier itself holds no
trainable parameters, which is what makes it cheap enough for the edge.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.core.prototypes import PrototypeStore
from repro.exceptions import DataError, NotFittedError


class NCMClassifier:
    """Nearest-class-mean classification with Euclidean (or cosine) distance."""

    def __init__(self, metric: str = "euclidean") -> None:
        if metric not in ("euclidean", "cosine"):
            raise DataError(f"metric must be 'euclidean' or 'cosine', got {metric!r}")
        self.metric = metric
        self._store: Optional[PrototypeStore] = None
        self._classes: List[int] = []

    # ------------------------------------------------------------------ #
    def fit(self, prototypes) -> "NCMClassifier":
        """Fit from a :class:`PrototypeStore` or a ``{class id: vector}`` mapping."""
        if isinstance(prototypes, PrototypeStore):
            store = prototypes
        elif isinstance(prototypes, dict):
            store = PrototypeStore()
            for class_id, vector in prototypes.items():
                store.set(int(class_id), vector)
        else:
            raise DataError("prototypes must be a PrototypeStore or a dict")
        if len(store) == 0:
            raise DataError("cannot fit an NCM classifier with zero prototypes")
        self._store = store
        self._classes = store.classes
        return self

    @property
    def classes_(self) -> List[int]:
        if self._store is None:
            raise NotFittedError("the NCM classifier has not been fitted")
        return list(self._classes)

    # ------------------------------------------------------------------ #
    def distances(self, embeddings: np.ndarray) -> np.ndarray:
        """Distance of every embedding to every class prototype ``(n, n_classes)``."""
        if self._store is None:
            raise NotFittedError("the NCM classifier has not been fitted")
        embeddings = np.asarray(embeddings, dtype=np.float64)
        if embeddings.ndim == 1:
            embeddings = embeddings[None, :]
        prototypes = self._store.as_matrix(self._classes)
        if embeddings.shape[1] != prototypes.shape[1]:
            raise DataError(
                f"embeddings have dimension {embeddings.shape[1]}, prototypes "
                f"{prototypes.shape[1]}"
            )
        if self.metric == "euclidean":
            deltas = embeddings[:, None, :] - prototypes[None, :, :]
            return np.linalg.norm(deltas, axis=2)
        normalised_e = embeddings / (np.linalg.norm(embeddings, axis=1, keepdims=True) + 1e-12)
        normalised_p = prototypes / (np.linalg.norm(prototypes, axis=1, keepdims=True) + 1e-12)
        return 1.0 - normalised_e @ normalised_p.T

    def predict(self, embeddings: np.ndarray) -> np.ndarray:
        """Class id of the nearest prototype for every embedding."""
        nearest = np.argmin(self.distances(embeddings), axis=1)
        return np.asarray([self._classes[index] for index in nearest], dtype=np.int64)

    def predict_scores(self, embeddings: np.ndarray) -> np.ndarray:
        """Soft scores (negative distances, softmax-normalised) per class."""
        distances = self.distances(embeddings)
        logits = -distances
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        return exp / exp.sum(axis=1, keepdims=True)
