"""Nearest Class Mean (NCM) classifier on the embedding space (Eq. 1).

Given class prototypes ``μ_y``, a sample is assigned to the class whose
prototype is nearest to its embedding.  The classifier itself holds no
trainable parameters, which is what makes it cheap enough for the edge.

The hot path is fully vectorized through the compute backend: the prototype
matrix and the class-id lookup array are cached at fit time (refreshed
automatically via the store's mutation counter), distances go through one
GEMM-based kernel, and predictions map argmin indices to class ids with a
single ``take`` instead of a per-row Python loop.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.backend import default_dtype, get_backend
from repro.core.prototypes import PrototypeStore
from repro.exceptions import DataError, NotFittedError


class NCMClassifier:
    """Nearest-class-mean classification with Euclidean (or cosine) distance."""

    def __init__(self, metric: str = "euclidean") -> None:
        if metric not in ("euclidean", "cosine"):
            raise DataError(f"metric must be 'euclidean' or 'cosine', got {metric!r}")
        self.metric = metric
        self._store: Optional[PrototypeStore] = None
        self._classes: List[int] = []
        self._class_ids: Optional[np.ndarray] = None
        self._prototype_matrix: Optional[np.ndarray] = None
        self._cached_version: Optional[int] = None

    # ------------------------------------------------------------------ #
    def fit(self, prototypes) -> "NCMClassifier":
        """Fit from a :class:`PrototypeStore` or a ``{class id: vector}`` mapping."""
        if isinstance(prototypes, PrototypeStore):
            store = prototypes
        elif isinstance(prototypes, dict):
            store = PrototypeStore()
            for class_id, vector in prototypes.items():
                store.set(int(class_id), vector)
        else:
            raise DataError("prototypes must be a PrototypeStore or a dict")
        if len(store) == 0:
            raise DataError("cannot fit an NCM classifier with zero prototypes")
        self._store = store
        self._classes = store.classes
        self._class_ids = np.asarray(self._classes, dtype=np.int64)
        self._refresh_cache()
        return self

    def _refresh_cache(self) -> None:
        """(Re)build the cached prototype matrix in the policy compute dtype."""
        assert self._store is not None
        self._prototype_matrix = get_backend().asarray(self._store.as_matrix(self._classes))
        self._cached_version = self._store.version

    def prototype_matrix(self) -> np.ndarray:
        """The cached ``(n_classes, d)`` prototype matrix (row order = classes).

        Rebuilt when the store mutates (version bump) or the dtype policy
        changes — a classifier fitted under the reference profile must not
        keep serving float64 prototypes inside an edge-precision scope.
        """
        if self._store is None:
            raise NotFittedError("the NCM classifier has not been fitted")
        if (
            self._cached_version != self._store.version
            or self._prototype_matrix is None
            or self._prototype_matrix.dtype != default_dtype()
        ):
            self._refresh_cache()
        return self._prototype_matrix

    @property
    def classes_(self) -> List[int]:
        if self._store is None:
            raise NotFittedError("the NCM classifier has not been fitted")
        return list(self._classes)

    # ------------------------------------------------------------------ #
    def distances(self, embeddings: np.ndarray) -> np.ndarray:
        """Distance of every embedding to every class prototype ``(n, n_classes)``."""
        if self._store is None:
            raise NotFittedError("the NCM classifier has not been fitted")
        backend = get_backend()
        embeddings = backend.asarray(embeddings)
        if embeddings.ndim == 1:
            embeddings = embeddings[None, :]
        prototypes = self.prototype_matrix()
        if embeddings.shape[1] != prototypes.shape[1]:
            raise DataError(
                f"embeddings have dimension {embeddings.shape[1]}, prototypes "
                f"{prototypes.shape[1]}"
            )
        return backend.pairwise_distances(embeddings, prototypes, metric=self.metric)

    def predict(self, embeddings: np.ndarray) -> np.ndarray:
        """Class id of the nearest prototype for every embedding."""
        nearest = np.argmin(self.distances(embeddings), axis=1)
        assert self._class_ids is not None
        return self._class_ids.take(nearest)

    def predict_scores(self, embeddings: np.ndarray) -> np.ndarray:
        """Soft scores (negative distances, softmax-normalised) per class."""
        distances = self.distances(embeddings)
        logits = -distances
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        return exp / exp.sum(axis=1, keepdims=True)
