"""Low-level statistical feature primitives over windowed sensor data.

All functions take a batch of windows of shape ``(n_windows, window_length,
channels)`` and return per-window feature blocks of shape ``(n_windows, k)``.
They are intentionally simple (linear in the window length) so the extraction
can run on the edge device, as required by the paper.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import DataError
from repro.timeseries.jerk import jerk
from repro.utils.validation import check_array


def _check_windows(windows: np.ndarray) -> np.ndarray:
    windows = check_array(windows, name="windows")
    if windows.ndim != 3:
        raise DataError(
            f"expected windows of shape (n, time, channels), got {windows.shape}"
        )
    return windows


def channel_means(windows: np.ndarray) -> np.ndarray:
    """Per-channel mean over the window: shape ``(n, channels)``."""
    windows = _check_windows(windows)
    return windows.mean(axis=1)


def channel_variances(windows: np.ndarray) -> np.ndarray:
    """Per-channel variance over the window: shape ``(n, channels)``."""
    windows = _check_windows(windows)
    return windows.var(axis=1)


def channel_min_max_range(windows: np.ndarray) -> np.ndarray:
    """Per-channel peak-to-peak range: shape ``(n, channels)``."""
    windows = _check_windows(windows)
    return windows.max(axis=1) - windows.min(axis=1)


def channel_energy(windows: np.ndarray) -> np.ndarray:
    """Per-channel mean signal energy (mean of squares): shape ``(n, channels)``."""
    windows = _check_windows(windows)
    return (windows**2).mean(axis=1)


def triaxial_magnitude_statistics(
    windows: np.ndarray,
    triaxial_groups: Sequence[Tuple[int, int, int]],
) -> np.ndarray:
    """Mean and variance of the Euclidean magnitude of each three-axis sensor.

    Returns ``(n, 2 * len(triaxial_groups))`` with the layout
    ``[mag_mean_g0, mag_var_g0, mag_mean_g1, ...]``.
    """
    windows = _check_windows(windows)
    blocks = []
    for group in triaxial_groups:
        triaxial = windows[:, :, list(group)]
        magnitude = np.linalg.norm(triaxial, axis=2)
        blocks.append(magnitude.mean(axis=1))
        blocks.append(magnitude.var(axis=1))
    if not blocks:
        return np.zeros((windows.shape[0], 0))
    return np.stack(blocks, axis=1)


def triaxial_jerk_statistics(
    windows: np.ndarray,
    triaxial_groups: Sequence[Tuple[int, int, int]],
    sampling_rate_hz: float = 1.0,
    include_magnitude: bool = True,
) -> np.ndarray:
    """Jerk statistics of each three-axis sensor.

    For every triaxial group this produces the mean and the variance of the
    per-axis jerk (averaged over the three axes), and — when
    ``include_magnitude`` is true — the mean and variance of the jerk
    magnitude, giving 4 features per group.
    """
    windows = _check_windows(windows)
    blocks = []
    for group in triaxial_groups:
        triaxial = windows[:, :, list(group)]
        derivative = jerk(triaxial, sampling_rate_hz=sampling_rate_hz)
        blocks.append(derivative.mean(axis=(1, 2)))
        blocks.append(derivative.var(axis=(1, 2)))
        if include_magnitude:
            magnitude = np.linalg.norm(derivative, axis=2)
            blocks.append(magnitude.mean(axis=1))
            blocks.append(magnitude.var(axis=1))
    if not blocks:
        return np.zeros((windows.shape[0], 0))
    return np.stack(blocks, axis=1)
