"""Hand-crafted statistical feature extraction.

The paper feeds a lightweight, linear-time statistical feature extractor with
one-second windows of 22-channel sensor data and obtains an 80-dimensional
feature vector per window ("the average, the variance for each feature, the
average jerk, and the variance of the jerk for each three-dimensional feature
sensor").  :class:`~repro.features.extractor.StatisticalFeatureExtractor`
reproduces that pipeline; with the default 22-channel sensor layout it emits
exactly 80 features.
"""

from repro.features.statistical import (
    channel_means,
    channel_variances,
    triaxial_jerk_statistics,
    triaxial_magnitude_statistics,
)
from repro.features.extractor import StatisticalFeatureExtractor
from repro.features.registry import FeatureRegistry, FeatureSpec

__all__ = [
    "channel_means",
    "channel_variances",
    "triaxial_jerk_statistics",
    "triaxial_magnitude_statistics",
    "StatisticalFeatureExtractor",
    "FeatureRegistry",
    "FeatureSpec",
]
