"""The paper's statistical feature extractor.

With the default 22-channel sensor layout (six three-axis sensors plus four
scalar channels, see :mod:`repro.data.sensors`), the extractor produces exactly
80 features per one-second window:

* mean of every channel ........................... 22
* variance of every channel ....................... 22
* jerk mean / jerk variance per triaxial sensor .... 12
* jerk-magnitude mean / variance per triaxial ...... 12
* magnitude mean / variance per triaxial sensor .... 12

Total: 80.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DataError
from repro.features.registry import FeatureRegistry
from repro.features.statistical import (
    channel_means,
    channel_variances,
    triaxial_jerk_statistics,
    triaxial_magnitude_statistics,
)
from repro.utils.validation import check_array


class StatisticalFeatureExtractor:
    """Window-level statistical feature extraction (linear time).

    Parameters
    ----------
    triaxial_groups:
        Channel-index triples identifying three-axis sensors (accelerometer,
        gyroscope, ...).  Jerk and magnitude statistics are computed per group.
    sampling_rate_hz:
        Sampling rate used to scale the jerk to physical units.
    extra_registry:
        Optional :class:`FeatureRegistry` with additional feature blocks that
        are appended after the standard 80 statistical features.
    """

    def __init__(
        self,
        triaxial_groups: Sequence[Tuple[int, int, int]],
        sampling_rate_hz: float = 120.0,
        extra_registry: Optional[FeatureRegistry] = None,
    ) -> None:
        if sampling_rate_hz <= 0:
            raise DataError(f"sampling_rate_hz must be positive, got {sampling_rate_hz}")
        self.triaxial_groups = [tuple(int(i) for i in group) for group in triaxial_groups]
        for group in self.triaxial_groups:
            if len(group) != 3:
                raise DataError(f"triaxial groups must have exactly 3 channels, got {group}")
        self.sampling_rate_hz = float(sampling_rate_hz)
        self.extra_registry = extra_registry

    # ------------------------------------------------------------------ #
    def transform(self, windows: np.ndarray) -> np.ndarray:
        """Map a window batch ``(n, time, channels)`` to a feature matrix ``(n, d)``."""
        windows = check_array(windows, name="windows")
        if windows.ndim == 2:
            windows = windows[None, :, :]
        if windows.ndim != 3:
            raise DataError(
                f"expected windows of shape (n, time, channels), got {windows.shape}"
            )
        n_channels = windows.shape[2]
        for group in self.triaxial_groups:
            if max(group) >= n_channels:
                raise DataError(
                    f"triaxial group {group} references channel beyond the "
                    f"{n_channels} available channels"
                )
        blocks = [
            channel_means(windows),
            channel_variances(windows),
            triaxial_jerk_statistics(
                windows, self.triaxial_groups, sampling_rate_hz=self.sampling_rate_hz
            ),
            triaxial_magnitude_statistics(windows, self.triaxial_groups),
        ]
        features = np.concatenate(blocks, axis=1)
        if self.extra_registry is not None and len(self.extra_registry) > 0:
            features = np.concatenate([features, self.extra_registry.compute(windows)], axis=1)
        return features

    __call__ = transform

    # ------------------------------------------------------------------ #
    def feature_names(self, n_channels: int) -> List[str]:
        """Human-readable names of the produced features, in column order."""
        names = [f"mean_ch{c}" for c in range(n_channels)]
        names += [f"var_ch{c}" for c in range(n_channels)]
        for index, group in enumerate(self.triaxial_groups):
            names += [
                f"jerk_mean_tri{index}",
                f"jerk_var_tri{index}",
                f"jerk_mag_mean_tri{index}",
                f"jerk_mag_var_tri{index}",
            ]
        for index in range(len(self.triaxial_groups)):
            names += [f"mag_mean_tri{index}", f"mag_var_tri{index}"]
        if self.extra_registry is not None:
            names += [f"extra_{name}" for name in self.extra_registry.names()]
        return names

    def n_features(self, n_channels: int) -> int:
        """Number of features produced for a given channel count."""
        base = 2 * n_channels + 6 * len(self.triaxial_groups)
        return base
