"""Feature registry: named, composable feature blocks.

The registry makes the extractor extensible (the paper notes that "more
advanced feature extractors can be explored and integrated into our framework")
while keeping the default configuration identical to the paper's 80-feature
statistical extractor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.exceptions import ConfigurationError

FeatureFn = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class FeatureSpec:
    """A named feature block.

    Attributes
    ----------
    name:
        Unique identifier of the block.
    function:
        Callable mapping a window batch ``(n, time, channels)`` to a feature
        block ``(n, k)``.
    description:
        Human-readable explanation (used by introspection tools and docs).
    """

    name: str
    function: FeatureFn
    description: str = ""


class FeatureRegistry:
    """An ordered collection of :class:`FeatureSpec` blocks."""

    def __init__(self) -> None:
        self._specs: Dict[str, FeatureSpec] = {}
        self._order: List[str] = []

    def register(self, name: str, function: FeatureFn, description: str = "") -> FeatureSpec:
        """Add a feature block; names must be unique."""
        if name in self._specs:
            raise ConfigurationError(f"feature block {name!r} is already registered")
        spec = FeatureSpec(name=name, function=function, description=description)
        self._specs[name] = spec
        self._order.append(name)
        return spec

    def remove(self, name: str) -> None:
        """Remove a feature block by name."""
        if name not in self._specs:
            raise KeyError(name)
        del self._specs[name]
        self._order.remove(name)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._order)

    def names(self) -> List[str]:
        """Names of the registered blocks, in application order."""
        return list(self._order)

    def compute(self, windows: np.ndarray) -> np.ndarray:
        """Apply every registered block and concatenate the results column-wise."""
        if not self._order:
            raise ConfigurationError("the feature registry is empty")
        blocks = []
        for name in self._order:
            block = np.asarray(self._specs[name].function(windows), dtype=np.float64)
            if block.ndim == 1:
                block = block[:, None]
            if block.shape[0] != windows.shape[0]:
                raise ConfigurationError(
                    f"feature block {name!r} returned {block.shape[0]} rows "
                    f"for {windows.shape[0]} windows"
                )
            blocks.append(block)
        return np.concatenate(blocks, axis=1)
