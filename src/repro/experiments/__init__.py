"""Reproductions of every table and figure in the paper's evaluation section.

Each sub-module exposes a ``run(settings)`` function returning a result object
with the rows/series the paper reports plus a ``to_text()`` rendering; the
benchmarks under ``benchmarks/`` simply time those functions and print the
result.  :class:`~repro.experiments.common.ExperimentSettings` controls the
scale (synthetic dataset size, backbone size, number of rounds) so the same
code serves quick CI runs and paper-scale reproductions.
"""

from repro.experiments.common import ExperimentSettings, make_dataset
from repro.experiments import (
    ablations,
    edge_resources,
    figure4,
    figure5,
    figure6,
    figure7,
    multi_increment,
    table2,
)

__all__ = [
    "ExperimentSettings",
    "make_dataset",
    "table2",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "ablations",
    "edge_resources",
    "multi_increment",
]
