"""Table 2 — accuracy with vs. without handling catastrophic forgetting.

For each of the five activities held out as the new class, the pre-trained,
re-trained and PILOTE strategies (sharing the same pre-trained model) are
scored on the full five-activity test set; the paper reports the mean and
standard deviation over five rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.data.activities import Activity
from repro.evaluation.protocol import AggregateResult, RepeatedRounds
from repro.evaluation.results import ResultTable
from repro.evaluation.runner import ExperimentRunner
from repro.experiments.common import ExperimentSettings, make_dataset
from repro.utils.logging import get_logger

logger = get_logger("experiments.table2")


@dataclass
class Table2Result:
    """Aggregated accuracies per scenario and method."""

    table: ResultTable
    per_scenario: Dict[str, Dict[str, AggregateResult]]

    def to_text(self) -> str:
        return self.table.to_text()

    def method_wins(self, method: str = "pilote", against: str = "re-trained") -> int:
        """Number of scenarios where ``method``'s mean accuracy beats ``against``'s."""
        wins = 0
        for results in self.per_scenario.values():
            if results[method].mean >= results[against].mean:
                wins += 1
        return wins


def run(
    settings: Optional[ExperimentSettings] = None,
    *,
    activities: Optional[List[Activity]] = None,
) -> Table2Result:
    """Reproduce Table 2.

    Parameters
    ----------
    settings:
        Scale/protocol settings (defaults to :meth:`ExperimentSettings.default`).
    activities:
        Restrict the scenarios to a subset of activities (used by quick tests).
    """
    settings = settings or ExperimentSettings.default()
    activities = list(activities) if activities is not None else list(Activity)
    runner = ExperimentRunner(settings.config)
    table = ResultTable(
        "Table 2: accuracy of learning models without and with considering "
        "the catastrophic forgetting problem",
        columns=["new_class", "pre-trained", "re-trained", "pilote"],
    )
    per_scenario: Dict[str, Dict[str, AggregateResult]] = {}

    for activity in activities:
        protocol = RepeatedRounds(settings.n_rounds, seed=settings.seed)

        def one_round(rng: np.random.Generator, round_index: int) -> Dict[str, float]:
            dataset = make_dataset(settings, rng=rng)
            comparison = runner.run_scenario(
                dataset,
                int(activity),
                exemplars_per_class=settings.exemplars_per_class,
                rng=rng,
            )
            return comparison.summary()

        aggregates = protocol.run(one_round)
        per_scenario[activity.display_name] = aggregates
        table.add_row(
            new_class=activity.display_name,
            **{
                "pre-trained": aggregates["pre-trained"],
                "re-trained": aggregates["re-trained"],
                "pilote": aggregates["pilote"],
            },
        )
        logger.info(
            "Table2 %s: pre=%s re=%s pilote=%s",
            activity.display_name,
            aggregates["pre-trained"],
            aggregates["re-trained"],
            aggregates["pilote"],
        )
    return Table2Result(table=table, per_scenario=per_scenario)
