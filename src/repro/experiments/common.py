"""Shared experiment settings and helpers.

The paper's experiments run on ~200k windows and a 1024-wide backbone; a pure
numpy reproduction cannot afford that for every CI run, so the scale is a
parameter.  Three presets are provided:

* ``quick()``       — smallest useful scale, used by the test suite;
* ``default()``     — the benchmark scale (minutes on a laptop);
* ``paper_scale()`` — the paper's backbone and a large synthetic dataset, for
  users who want to let it run longer.

Absolute accuracies differ from the paper (synthetic data, different scale) —
the orderings and crossovers are what the reproduction checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.config import PiloteConfig
from repro.data.dataset import HARDataset
from repro.data.synthetic import make_feature_dataset
from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState, resolve_rng


@dataclass(frozen=True)
class ExperimentSettings:
    """Scale and protocol knobs shared by all experiments."""

    samples_per_class: int = 300
    n_rounds: int = 3
    config: PiloteConfig = field(
        default_factory=lambda: PiloteConfig(
            hidden_dims=(256, 128, 64),
            embedding_dim=64,
            batch_size=64,
            max_epochs_pretrain=20,
            max_epochs_increment=15,
            cache_size=800,
        )
    )
    exemplars_per_class: int = 200
    seed: Optional[int] = 7

    def __post_init__(self) -> None:
        if self.samples_per_class < 20:
            raise ConfigurationError("samples_per_class must be at least 20")
        if self.n_rounds <= 0:
            raise ConfigurationError("n_rounds must be positive")
        if self.exemplars_per_class <= 0:
            raise ConfigurationError("exemplars_per_class must be positive")

    # ------------------------------------------------------------------ #
    @classmethod
    def quick(cls, seed: Optional[int] = 7) -> "ExperimentSettings":
        """Small scale for unit/integration tests (seconds per scenario)."""
        return cls(
            samples_per_class=120,
            n_rounds=2,
            config=PiloteConfig.edge_lightweight(seed=seed),
            exemplars_per_class=40,
            seed=seed,
        )

    @classmethod
    def default(cls, seed: Optional[int] = 7) -> "ExperimentSettings":
        """The benchmark scale used by ``benchmarks/``."""
        return cls(seed=seed)

    @classmethod
    def paper_scale(cls, seed: Optional[int] = 7) -> "ExperimentSettings":
        """The paper's backbone (1024×512×128×64×128) and five rounds."""
        return cls(
            samples_per_class=1000,
            n_rounds=5,
            config=PiloteConfig.paper_defaults(),
            exemplars_per_class=200,
            seed=seed,
        )


def make_dataset(settings: ExperimentSettings, rng: RandomState = None) -> HARDataset:
    """Generate the synthetic five-activity feature dataset for one round."""
    generator = resolve_rng(rng if rng is not None else settings.seed)
    return make_feature_dataset(settings.samples_per_class, seed=generator)
