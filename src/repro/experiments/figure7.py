"""Figure 7 — model accuracy vs. the number of new-class exemplars (extreme edge).

The old-class support set is fixed at 200 exemplars per class and the amount of
available new-class ('Run') data is swept down to a few dozen samples.  The
paper's observations to reproduce: PILOTE reaches high accuracy with only ~30
new-class samples and dominates the re-trained model especially below ~50
samples; the pre-trained model's accuracy is the flat reference line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.activities import Activity
from repro.data.streams import build_incremental_scenario
from repro.evaluation.protocol import AggregateResult, RepeatedRounds
from repro.evaluation.runner import ExperimentRunner
from repro.experiments.common import ExperimentSettings, make_dataset
from repro.utils.logging import get_logger
from repro.viz.ascii import ascii_line_plot

logger = get_logger("experiments.figure7")

DEFAULT_SWEEP: Tuple[int, ...] = (10, 25, 50, 75, 100, 150, 200)


@dataclass
class Figure7Result:
    """Accuracy per method over the new-class sample sweep."""

    sample_counts: List[int]
    series: Dict[str, List[AggregateResult]]

    def mean_series(self) -> Dict[str, List[float]]:
        return {method: [a.mean for a in values] for method, values in self.series.items()}

    def to_text(self) -> str:
        lines = ["Figure 7: accuracy vs. number of new-class ('Run') exemplars", ""]
        flat = self.mean_series()
        header = f"{'new-class samples':>18}"
        for name in flat:
            header += f"{name:>16}"
        lines.append(header)
        for index, count in enumerate(self.sample_counts):
            row = f"{count:>18d}"
            for name in flat:
                row += f"{flat[name][index]:>16.4f}"
            lines.append(row)
        lines.append("")
        lines.append(
            ascii_line_plot(
                self.sample_counts, flat, title="accuracy vs. new-class exemplar count"
            )
        )
        return "\n".join(lines)


def run(
    settings: Optional[ExperimentSettings] = None,
    *,
    new_activity: Activity = Activity.RUN,
    sample_counts: Sequence[int] = DEFAULT_SWEEP,
) -> Figure7Result:
    """Reproduce Figure 7 (the pre-trained model is shared within each round)."""
    settings = settings or ExperimentSettings.default()
    sample_counts = [int(c) for c in sample_counts]
    runner = ExperimentRunner(settings.config)
    collected: Dict[str, List[List[float]]] = {
        method: [[] for _ in sample_counts] for method in runner.methods
    }
    protocol = RepeatedRounds(settings.n_rounds, seed=settings.seed)

    def one_round(rng: np.random.Generator, round_index: int) -> Dict[str, float]:
        dataset = make_dataset(settings, rng=rng)
        scenario = build_incremental_scenario(dataset, [int(new_activity)], rng=rng)
        pretrained = runner.pretrain(
            scenario, exemplars_per_class=settings.exemplars_per_class, rng=rng
        )
        outputs: Dict[str, float] = {}
        for position, count in enumerate(sample_counts):
            comparison = runner.compare(
                scenario,
                pretrained=pretrained,
                new_class_samples=count,
                rng=rng,
            )
            for method, result in comparison.methods.items():
                collected[method][position].append(result.accuracy)
                outputs[f"{method}/{count}"] = result.accuracy
        logger.info("figure7 round %d finished", round_index)
        return outputs

    protocol.run(one_round)
    series = {
        method: [
            AggregateResult(
                mean=float(np.mean(values)), std=float(np.std(values)), values=tuple(values)
            )
            for values in per_count
        ]
        for method, per_count in collected.items()
    }
    return Figure7Result(sample_counts=sample_counts, series=series)
