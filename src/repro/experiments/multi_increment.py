"""Sequential multi-step incremental learning (beyond the paper's single step).

The paper's evaluation adds one new activity at a time to a model pre-trained
on the other four.  A natural extension — called out in the paper's future
work — is a longer class-incremental sequence: start from two activities and
add the remaining ones one by one, measuring accuracy over all classes seen so
far after every step.  This experiment runs that protocol for PILOTE and the
Re-trained baseline and reports per-step accuracy, average incremental
accuracy and backward transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.base import clone_pretrained
from repro.core.pilote import PILOTE
from repro.data.activities import Activity
from repro.data.dataset import HARDataset, train_val_test_split
from repro.evaluation.runner import ExperimentRunner
from repro.experiments.common import ExperimentSettings, make_dataset
from repro.metrics.classification import accuracy
from repro.metrics.forgetting import average_incremental_accuracy, backward_transfer
from repro.utils.rng import resolve_rng


@dataclass
class MultiIncrementResult:
    """Per-step accuracies of a sequential class-incremental run."""

    class_order: List[int]
    step_classes: List[List[int]]
    step_accuracy: Dict[str, List[float]]
    old_class_accuracy: Dict[str, List[float]]

    def average_incremental_accuracy(self, method: str) -> float:
        return average_incremental_accuracy(self.step_accuracy[method])

    def backward_transfer(self, method: str) -> float:
        return backward_transfer(self.old_class_accuracy[method])

    def to_text(self) -> str:
        lines = ["Sequential class-incremental learning (extension experiment)", ""]
        header = f"{'step':>6}{'classes seen':>30}"
        for method in self.step_accuracy:
            header += f"{method:>14}"
        lines.append(header)
        for index, classes in enumerate(self.step_classes):
            row = f"{index:>6d}{str(classes):>30}"
            for method in self.step_accuracy:
                row += f"{self.step_accuracy[method][index]:>14.4f}"
            lines.append(row)
        lines.append("")
        for method in self.step_accuracy:
            lines.append(
                f"{method}: average incremental accuracy "
                f"{self.average_incremental_accuracy(method):.4f}, backward transfer "
                f"{self.backward_transfer(method):+.4f}"
            )
        return "\n".join(lines)


def run(
    settings: Optional[ExperimentSettings] = None,
    *,
    base_classes: Sequence[Activity] = (Activity.STILL, Activity.DRIVE),
    increment_order: Sequence[Activity] = (Activity.ESCOOTER, Activity.WALK, Activity.RUN),
) -> MultiIncrementResult:
    """Run the sequential protocol for PILOTE and the Re-trained baseline."""
    settings = settings or ExperimentSettings.default()
    rng = resolve_rng(settings.seed)
    dataset = make_dataset(settings, rng=rng)
    splits = train_val_test_split(dataset, rng=rng)

    base_ids = [int(a) for a in base_classes]
    increment_ids = [int(a) for a in increment_order]
    methods = {"pilote": None, "re-trained": None}

    # Shared pre-training on the base classes.
    base_learner = PILOTE(settings.config, seed=rng)
    base_learner.pretrain(
        splits.train.select_classes(base_ids),
        splits.validation.select_classes(base_ids),
        exemplars_per_class=settings.exemplars_per_class,
    )
    learners: Dict[str, PILOTE] = {}
    for method in methods:
        learner = clone_pretrained(base_learner)
        if method == "re-trained":
            learner.config = learner.config.with_overrides(alpha=0.0)
        learners[method] = learner

    step_classes: List[List[int]] = []
    step_accuracy: Dict[str, List[float]] = {m: [] for m in methods}
    old_accuracy: Dict[str, List[float]] = {m: [] for m in methods}
    seen = list(base_ids)

    def record(step_seen: List[int]) -> None:
        test = splits.test.select_classes(step_seen)
        base_test = splits.test.select_classes(base_ids)
        step_classes.append(list(step_seen))
        for method, learner in learners.items():
            step_accuracy[method].append(
                accuracy(test.labels, learner.predict(test.features))
            )
            old_accuracy[method].append(
                accuracy(base_test.labels, learner.predict(base_test.features))
            )

    record(seen)
    for class_id in increment_ids:
        new_train = splits.train.select_classes([class_id])
        new_validation = splits.validation.select_classes([class_id])
        for learner in learners.values():
            learner.learn_new_classes(new_train, new_validation)
        seen = seen + [class_id]
        record(seen)

    return MultiIncrementResult(
        class_order=base_ids + increment_ids,
        step_classes=step_classes,
        step_accuracy=step_accuracy,
        old_class_accuracy=old_accuracy,
    )
