"""Figure 5 — visualisation of the embedding spaces of the learning models.

Without a plotting backend, the reproduction exports a 2-D PCA projection of
each model's test-set embeddings (for external plotting) and reports class
-separation metrics; the paper's qualitative claim translates into the ordering
``PILOTE ≥ Re-trained ≥ Pre-trained`` on silhouette score (and the reverse on
the intra/inter distance ratio).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.data.activities import Activity
from repro.evaluation.runner import ExperimentRunner
from repro.experiments.common import ExperimentSettings, make_dataset
from repro.metrics.embedding_quality import class_separation_report
from repro.viz.ascii import ascii_scatter
from repro.viz.projection import project_embeddings_2d
from repro.utils.rng import resolve_rng


@dataclass
class Figure5Result:
    """Embedding separation metrics and 2-D projections per method."""

    separation: Dict[str, Dict[str, float]]
    projections: Dict[str, Dict[int, np.ndarray]]
    label_names: Dict[int, str]

    def to_text(self, include_scatter: bool = False) -> str:
        lines = ["Figure 5: embedding-space class separation", ""]
        header = f"{'method':<14}{'silhouette':>12}{'intra/inter':>14}"
        lines.append(header)
        lines.append("-" * len(header))
        for method, metrics in self.separation.items():
            lines.append(
                f"{method:<14}{metrics['silhouette']:>12.4f}{metrics['intra_inter_ratio']:>14.4f}"
            )
        if include_scatter:
            for method, projection in self.projections.items():
                lines.append("")
                lines.append(
                    ascii_scatter(
                        projection, label_names=self.label_names, title=f"embedding space: {method}"
                    )
                )
        return "\n".join(lines)


def run(
    settings: Optional[ExperimentSettings] = None,
    *,
    new_activity: Activity = Activity.RUN,
    max_points_per_class: int = 150,
) -> Figure5Result:
    """Reproduce Figure 5 for the three paper methods."""
    settings = settings or ExperimentSettings.default()
    rng = resolve_rng(settings.seed)
    dataset = make_dataset(settings, rng=rng)
    runner = ExperimentRunner(settings.config, keep_learners=True)
    comparison = runner.run_scenario(
        dataset,
        int(new_activity),
        exemplars_per_class=settings.exemplars_per_class,
        rng=rng,
    )
    test = comparison.scenario.test.subsample(max_points_per_class, per_class=True, rng=rng)
    label_names = {int(a): a.display_name for a in Activity}

    separation: Dict[str, Dict[str, float]] = {}
    projections: Dict[str, Dict[int, np.ndarray]] = {}
    for method, learner in comparison.learners.items():
        embeddings = learner.embed(test.features)
        separation[method] = class_separation_report(embeddings, test.labels)
        projections[method] = project_embeddings_2d(embeddings, test.labels)
    return Figure5Result(
        separation=separation, projections=projections, label_names=label_names
    )
