"""Figure 4 — confusion matrices when learning the new activity 'Run'.

The paper's claim: the re-trained model forgets 'Walk' (a large block of Walk
samples is predicted as Run), while PILOTE keeps the two similar activities
separated.  The reproduction returns both confusion matrices plus the
Walk→Run misclassification rates so the asymmetry can be checked numerically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.data.activities import ACTIVITY_NAMES, Activity
from repro.evaluation.runner import ExperimentRunner
from repro.experiments.common import ExperimentSettings, make_dataset
from repro.metrics.confusion import ConfusionMatrix
from repro.utils.rng import resolve_rng


@dataclass
class Figure4Result:
    """Confusion matrices of the compared methods for the Run scenario."""

    matrices: Dict[str, ConfusionMatrix]
    walk_to_run_rate: Dict[str, float]

    def to_text(self) -> str:
        blocks = []
        for method, matrix in self.matrices.items():
            blocks.append(f"--- {method} (accuracy {matrix.accuracy():.4f}) ---")
            blocks.append(matrix.to_text())
            blocks.append(
                f"Walk predicted as Run: {self.walk_to_run_rate[method]:.1%}"
            )
            blocks.append("")
        return "\n".join(blocks)


def run(
    settings: Optional[ExperimentSettings] = None,
    *,
    new_activity: Activity = Activity.RUN,
) -> Figure4Result:
    """Reproduce Figure 4 (single round; the figure shows one representative run)."""
    settings = settings or ExperimentSettings.default()
    rng = resolve_rng(settings.seed)
    dataset = make_dataset(settings, rng=rng)
    runner = ExperimentRunner(settings.config, methods=("re-trained", "pilote"))
    comparison = runner.run_scenario(
        dataset,
        int(new_activity),
        exemplars_per_class=settings.exemplars_per_class,
        rng=rng,
    )
    label_names = {int(a): a.display_name for a in Activity}
    matrices: Dict[str, ConfusionMatrix] = {}
    walk_to_run: Dict[str, float] = {}
    test = comparison.scenario.test
    for method, result in comparison.methods.items():
        matrix = ConfusionMatrix.from_predictions(
            test.labels,
            result.predictions,
            classes=sorted(label_names),
            label_names=label_names,
        )
        matrices[method] = matrix
        walk_to_run[method] = matrix.misclassification_rate(
            int(Activity.WALK), int(new_activity)
        )
    return Figure4Result(matrices=matrices, walk_to_run_rate=walk_to_run)
