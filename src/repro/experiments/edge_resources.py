"""Q2 — applicability on the edge: storage and latency accounting.

The paper's Section 6.3 argues that with fewer than 200 exemplars per class
(< 256 KB of storage) PILOTE converges within 20 epochs at less than half a
second per epoch.  This experiment measures the analogous quantities for the
reproduction: support-set bytes as a function of the exemplar budget, model
bytes, per-epoch wall-clock time of the incremental update, and inference
latency, optionally extrapolated to slower device profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pilote import PILOTE
from repro.data.activities import Activity
from repro.data.streams import build_incremental_scenario
from repro.edge.device import DEVICE_PROFILES
from repro.edge.profiler import EdgeProfiler, LatencyReport
from repro.edge.transfer import exemplar_storage_bytes
from repro.evaluation.runner import ExperimentRunner
from repro.experiments.common import ExperimentSettings, make_dataset
from repro.utils.rng import resolve_rng


@dataclass
class EdgeResourcesResult:
    """Storage and latency measurements for the Q2 analysis."""

    storage_rows: List[Dict[str, float]]
    latency: LatencyReport
    device_latencies: Dict[str, Dict[str, float]]
    accuracy_after_increment: float

    def to_text(self) -> str:
        lines = ["Q2: applicability on the edge", "", "Support-set storage:"]
        header = f"{'exemplars/class':>16}{'classes':>9}{'kilobytes':>12}"
        lines.append(header)
        for row in self.storage_rows:
            lines.append(
                f"{int(row['exemplars_per_class']):>16d}{int(row['n_classes']):>9d}"
                f"{row['kilobytes']:>12.1f}"
            )
        lines.append("")
        lines.append("Incremental-update latency (this machine):")
        for key, value in self.latency.summary().items():
            lines.append(f"  {key:<28}{value:>12.4f}")
        lines.append(f"  {'accuracy_after_increment':<28}{self.accuracy_after_increment:>12.4f}")
        lines.append("")
        lines.append("Extrapolated per-epoch latency on device profiles:")
        for device, summary in self.device_latencies.items():
            lines.append(
                f"  {device:<14} mean epoch {summary['mean_epoch_seconds']:.3f}s, "
                f"total {summary['total_seconds']:.2f}s"
            )
        return "\n".join(lines)


def run(
    settings: Optional[ExperimentSettings] = None,
    *,
    new_activity: Activity = Activity.RUN,
    storage_budgets: Sequence[int] = (50, 100, 200, 500, 1000, 2500),
) -> EdgeResourcesResult:
    """Measure the Q2 quantities on one incremental-update run."""
    settings = settings or ExperimentSettings.default()
    rng = resolve_rng(settings.seed)
    dataset = make_dataset(settings, rng=rng)
    scenario = build_incremental_scenario(dataset, [int(new_activity)], rng=rng)

    # Storage accounting is analytic: exemplar count × feature dim × 4 bytes.
    n_features = dataset.n_features
    n_old_classes = len(scenario.old_classes)
    storage_rows = [
        {
            "exemplars_per_class": float(budget),
            "n_classes": float(n_old_classes),
            "bytes": float(exemplar_storage_bytes(budget * n_old_classes, n_features)),
            "kilobytes": exemplar_storage_bytes(budget * n_old_classes, n_features) / 1024,
        }
        for budget in storage_budgets
    ]

    # Latency: time one full incremental update with the paper's 200/class budget.
    runner = ExperimentRunner(settings.config)
    pretrained = runner.pretrain(
        scenario, exemplars_per_class=settings.exemplars_per_class, rng=rng
    )
    learner: PILOTE = pretrained
    profiler = EdgeProfiler()
    latency = profiler.profile_increment(
        learner,
        scenario.new_train,
        scenario.new_validation,
        inference_data=scenario.test,
    )
    accuracy_after = learner.evaluate(scenario.test)
    device_latencies = {
        name: latency.scaled_to(profile).summary() for name, profile in DEVICE_PROFILES.items()
    }
    return EdgeResourcesResult(
        storage_rows=storage_rows,
        latency=latency,
        device_latencies=device_latencies,
        accuracy_after_increment=accuracy_after,
    )
