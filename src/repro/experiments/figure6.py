"""Figure 6 — model accuracy vs. the support set's size.

Six curves: {PILOTE, Re-trained, Pre-trained} × {representative (herded),
random} exemplars, swept over the number of exemplars per class.  The paper's
observations to reproduce:

* accuracy grows with the number of exemplars and saturates;
* PILOTE dominates the re-trained model, with the largest gap at small
  support sets;
* below roughly 50 exemplars per class the re-trained model falls *below* the
  pre-trained model (over-fitting + forgetting), while PILOTE stays above it;
* representative exemplars matter more to PILOTE than to the other models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.activities import Activity
from repro.evaluation.protocol import AggregateResult, RepeatedRounds
from repro.evaluation.runner import ExperimentRunner
from repro.experiments.common import ExperimentSettings, make_dataset
from repro.utils.logging import get_logger
from repro.viz.ascii import ascii_line_plot

logger = get_logger("experiments.figure6")

DEFAULT_SWEEP: Tuple[int, ...] = (10, 25, 50, 100, 200, 350, 500)
STRATEGY_LABELS = {"herding": "repr. exemplars", "random": "random exemplars"}


@dataclass
class Figure6Result:
    """Accuracy series per (method, exemplar strategy) over the support-set sweep."""

    exemplar_counts: List[int]
    series: Dict[str, Dict[str, List[AggregateResult]]]
    # series[strategy][method] is a list aligned with exemplar_counts

    def mean_series(self) -> Dict[str, List[float]]:
        """Flat ``{"<method> (<strategy>)": [mean accuracies]}`` mapping for plotting."""
        flat: Dict[str, List[float]] = {}
        for strategy, methods in self.series.items():
            label = STRATEGY_LABELS.get(strategy, strategy)
            for method, aggregates in methods.items():
                flat[f"{method} ({label})"] = [a.mean for a in aggregates]
        return flat

    def to_text(self) -> str:
        lines = ["Figure 6: accuracy vs. number of exemplars per class", ""]
        header = f"{'exemplars':>10}"
        flat = self.mean_series()
        for name in flat:
            header += f"{name:>28}"
        lines.append(header)
        for index, count in enumerate(self.exemplar_counts):
            row = f"{count:>10d}"
            for name in flat:
                row += f"{flat[name][index]:>28.4f}"
            lines.append(row)
        lines.append("")
        lines.append(
            ascii_line_plot(
                self.exemplar_counts,
                flat,
                title="accuracy vs. exemplars per class",
            )
        )
        return "\n".join(lines)


def run(
    settings: Optional[ExperimentSettings] = None,
    *,
    new_activity: Activity = Activity.RUN,
    exemplar_counts: Sequence[int] = DEFAULT_SWEEP,
    strategies: Sequence[str] = ("herding", "random"),
) -> Figure6Result:
    """Reproduce Figure 6.

    The pre-trained model is shared across the whole sweep within a round (as
    in the paper): only the support set handed to the edge changes.
    """
    settings = settings or ExperimentSettings.default()
    exemplar_counts = [int(c) for c in exemplar_counts]
    runner = ExperimentRunner(settings.config)
    collected: Dict[str, Dict[str, List[List[float]]]] = {
        strategy: {method: [[] for _ in exemplar_counts] for method in runner.methods}
        for strategy in strategies
    }

    protocol = RepeatedRounds(settings.n_rounds, seed=settings.seed)

    def one_round(rng: np.random.Generator, round_index: int) -> Dict[str, float]:
        dataset = make_dataset(settings, rng=rng)
        from repro.data.streams import build_incremental_scenario

        scenario = build_incremental_scenario(dataset, [int(new_activity)], rng=rng)
        pretrained = runner.pretrain(
            scenario, exemplars_per_class=max(exemplar_counts), rng=rng
        )
        outputs: Dict[str, float] = {}
        for strategy in strategies:
            for position, count in enumerate(exemplar_counts):
                comparison = runner.compare(
                    scenario,
                    pretrained=pretrained,
                    exemplars_per_class=count,
                    exemplar_strategy=strategy,
                    rng=rng,
                )
                for method, result in comparison.methods.items():
                    collected[strategy][method][position].append(result.accuracy)
                    outputs[f"{strategy}/{method}/{count}"] = result.accuracy
        logger.info("figure6 round %d finished", round_index)
        return outputs

    protocol.run(one_round)

    series: Dict[str, Dict[str, List[AggregateResult]]] = {}
    for strategy, methods in collected.items():
        series[strategy] = {}
        for method, per_count in methods.items():
            series[strategy][method] = [
                AggregateResult(
                    mean=float(np.mean(values)), std=float(np.std(values)), values=tuple(values)
                )
                for values in per_count
            ]
    return Figure6Result(exemplar_counts=exemplar_counts, series=series)
