"""Ablations beyond the paper's figures.

DESIGN.md calls out the design choices worth isolating:

* the balancing weight α between distillation and contrastive terms
  (α = 0 degenerates to the Re-trained baseline, α = 1 freezes the embedding
  on old classes and learns nothing contrastively);
* the contrastive margin m;
* the exemplar-selection strategy (herding vs. random), already swept in
  Figure 6 but isolated here at a single support-set size;
* the contrastive-loss variant (paper's squared-margin form vs. the classic
  Hadsell form).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.activities import Activity
from repro.data.streams import build_incremental_scenario
from repro.evaluation.protocol import AggregateResult, RepeatedRounds
from repro.evaluation.results import ResultTable
from repro.evaluation.runner import ExperimentRunner
from repro.experiments.common import ExperimentSettings, make_dataset
from repro.baselines.base import clone_pretrained
from repro.metrics.classification import accuracy
from repro.metrics.forgetting import new_class_accuracy, old_class_accuracy


@dataclass
class AblationResult:
    """One result table per ablated hyper-parameter."""

    tables: Dict[str, ResultTable]

    def to_text(self) -> str:
        return "\n\n".join(table.to_text() for table in self.tables.values())


def _evaluate_variant(
    pretrained,
    scenario,
    *,
    alpha: Optional[float] = None,
    margin: Optional[float] = None,
    variant: Optional[str] = None,
) -> Dict[str, float]:
    """Clone the shared pre-trained learner, apply overrides, learn, and score."""
    learner = clone_pretrained(pretrained)
    overrides = {}
    if alpha is not None:
        overrides["alpha"] = alpha
    if margin is not None:
        overrides["margin"] = margin
    if variant is not None:
        overrides["contrastive_variant"] = variant
    if overrides:
        learner.config = learner.config.with_overrides(**overrides)
        # Loss modules capture margin/variant at construction time; rebuild them.
        from repro.nn.losses import ContrastiveLoss

        learner._contrastive = ContrastiveLoss(
            margin=learner.config.margin, variant=learner.config.contrastive_variant
        )
    learner.learn_new_classes(scenario.new_train, scenario.new_validation)
    predictions = learner.predict(scenario.test.features)
    return {
        "accuracy": accuracy(scenario.test.labels, predictions),
        "old_accuracy": old_class_accuracy(
            scenario.test.labels, predictions, scenario.old_classes
        ),
        "new_accuracy": new_class_accuracy(
            scenario.test.labels, predictions, scenario.new_classes
        ),
    }


def run(
    settings: Optional[ExperimentSettings] = None,
    *,
    new_activity: Activity = Activity.RUN,
    alphas: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 0.9),
    margins: Sequence[float] = (0.5, 1.0, 2.0),
    variants: Sequence[str] = ("squared", "hadsell"),
) -> AblationResult:
    """Run the α / margin / loss-variant ablations."""
    settings = settings or ExperimentSettings.default()
    runner = ExperimentRunner(settings.config)
    protocol = RepeatedRounds(settings.n_rounds, seed=settings.seed)

    collected: Dict[str, Dict[str, List[float]]] = {}

    def record(table: str, key: str, values: Dict[str, float]) -> None:
        for metric, value in values.items():
            collected.setdefault(table, {}).setdefault(f"{key}/{metric}", []).append(value)

    def one_round(rng: np.random.Generator, round_index: int) -> Dict[str, float]:
        dataset = make_dataset(settings, rng=rng)
        scenario = build_incremental_scenario(dataset, [int(new_activity)], rng=rng)
        pretrained = runner.pretrain(
            scenario, exemplars_per_class=settings.exemplars_per_class, rng=rng
        )
        for alpha in alphas:
            record("alpha", f"{alpha:g}", _evaluate_variant(pretrained, scenario, alpha=alpha))
        for margin in margins:
            record("margin", f"{margin:g}", _evaluate_variant(pretrained, scenario, margin=margin))
        for variant in variants:
            record("variant", variant, _evaluate_variant(pretrained, scenario, variant=variant))
        return {"round": float(round_index)}

    protocol.run(one_round)

    tables: Dict[str, ResultTable] = {}
    titles = {
        "alpha": "Ablation: balancing weight α (α=0 is the Re-trained baseline)",
        "margin": "Ablation: contrastive margin m",
        "variant": "Ablation: contrastive-loss variant",
    }
    for table_name, metrics in collected.items():
        keys = sorted({key.split("/")[0] for key in metrics})
        table = ResultTable(
            titles[table_name],
            columns=[table_name, "accuracy", "old_accuracy", "new_accuracy"],
        )
        for key in keys:
            def agg(metric: str) -> AggregateResult:
                values = metrics[f"{key}/{metric}"]
                return AggregateResult(
                    mean=float(np.mean(values)), std=float(np.std(values)), values=tuple(values)
                )

            table.add_row(
                **{
                    table_name: key,
                    "accuracy": agg("accuracy"),
                    "old_accuracy": agg("old_accuracy"),
                    "new_accuracy": agg("new_accuracy"),
                }
            )
        tables[table_name] = table
    return AblationResult(tables=tables)
