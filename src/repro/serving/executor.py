"""Pluggable batch executors behind the event-loop scheduler.

The :class:`~repro.serving.scheduler.EventLoopScheduler` decides *which*
batch runs next on each lane; an :class:`Executor` decides *where and how*
that batch actually executes.  Three implementations ship with the library
(:data:`EXECUTORS`, ``pilote fleet-sim --executor {serial,thread,process}``):

* :class:`SerialExecutor` (``"serial"``, the default) — inline execution on
  the calling thread, bit-exact with the historical scheduler: every batch
  is timed with the wall clock and converted to device-seconds through the
  profile's ``relative_compute``, so N lanes drain "in parallel" only on
  the simulated clock;
* :class:`ThreadExecutor` (``"thread"``) — a shared-memory thread pool.
  The numpy kernels release the GIL during GEMMs so compute overlaps
  partially, but this executor is primarily for I/O-shaped lanes (devices
  whose ``infer`` waits on something other than the interpreter);
* :class:`ProcessExecutor` (``"process"``) — a persistent pool of worker
  OS processes, one process per *lane group* (lane ``i`` always lands on
  worker ``i % workers``, keeping per-lane caches warm).  Each worker
  installs its own compute backend at startup
  (:func:`repro.backend.install_worker_backend`) and serves from shipped
  :class:`~repro.edge.inference.EngineStateSnapshot`\\ s — picklable
  replicas of each lane's :class:`~repro.edge.inference.InferenceEngine`
  keyed by ``PILOTE.state_version``, re-shipped automatically when a
  broadcast or incremental update bumps the live version.  Request futures
  are completed from the worker pool's IPC result queue inside ``drain()``.

Executors are a *mechanism* seam: FIFO/EDF queue order, routing policies,
rollout staging and deadline accounting all live above it in the scheduler
and compose unchanged with every implementation.  What changes is the
meaning of time (:attr:`Executor.clock`): the serial executor reports
*modeled* device latency on the simulated parallel clock, the concurrent
executors report *measured* wall-clock latency (``DeviceStats.clock ==
"wall"``), which is what ``benchmarks/bench_workers.py`` gates real
multi-core speedup on.  Deadlines follow the active clock — under a
wall-clock executor a ``deadline_seconds`` is a *real* bound, so the SLO
breakdown depends on the hardware actually serving (slow pool, more
expiries), exactly as a production deployment would; seeded,
hardware-independent deadline numbers need the serial executor, which is
why ``pilote fleet-sim`` rejects ``--deadline-ms`` with a wall-clock
executor (its generated arrivals are simulated-clock quantities).

Worker death is a first-class outcome, not a hang: when a worker process
dies mid-round, its outstanding batches fail with a typed
:class:`~repro.exceptions.WorkerDiedError` (no future is dropped or
answered twice), the worker is respawned with a fresh queue, and the next
round re-ships whatever snapshots it lost.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
from concurrent.futures import ThreadPoolExecutor as _ThreadPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.backend import default_dtype, get_backend, precision, resolve_dtype
from repro.utils.clock import perf_seconds
from repro.exceptions import (
    ConfigurationError,
    ExecutorError,
    ServingError,
    SnapshotMismatchError,
    WorkerDiedError,
)

__all__ = [
    "LaneTask",
    "LaneResult",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "EXECUTORS",
    "make_executor",
]

#: Seconds between liveness checks while waiting on the IPC result queue.
_POLL_SECONDS = 0.1


@dataclass(frozen=True)
class LaneTask:
    """One unit of executor work: a coalesced window batch bound to a lane."""

    position: int
    windows: np.ndarray


@dataclass(frozen=True)
class LaneResult:
    """Outcome of one :class:`LaneTask`.

    ``wall`` is the engine compute measured where it ran (inside the worker
    for remote executors); ``error`` carries the typed failure instead of
    raising, so one bad batch cannot abort a whole round.
    """

    position: int
    outputs: Optional[np.ndarray]
    wall: float
    error: Optional[BaseException] = None


class Executor:
    """Strategy running the scheduler's prepared batches.

    The scheduler calls :meth:`bind` once with its *live* device list (so
    ``replace_device`` reaches executors too), then :meth:`run` with one
    task per lane and round; :meth:`close` releases pools.  ``concurrent``
    tells the scheduler whether tasks handed to one :meth:`run` call may
    execute in parallel (round-based drain) or must interleave on the
    simulated clock (the serial drain); ``clock`` labels the resulting
    ``DeviceStats`` rows (``"simulated"`` modeled latency vs ``"wall"``
    measured latency).
    """

    #: Registry key and CLI name of the executor.
    name: str = "abstract"
    #: How ``DeviceStats`` rows produced through this executor are labelled.
    clock: str = "simulated"
    #: Whether one ``run()`` call may execute its tasks in parallel.
    concurrent: bool = False

    def bind(self, devices: Sequence) -> None:
        self._devices = devices

    def run(self, tasks: Sequence[LaneTask]) -> List[LaneResult]:
        """Execute every task; returns one :class:`LaneResult` per task."""
        raise NotImplementedError  # repro: noqa[repro-errors] abstract protocol method

    def close(self) -> None:
        """Release worker pools (idempotent; serial executors are a no-op)."""

    def describe(self) -> str:
        return self.name

    # Concurrent executors additionally expose ``resize(workers) -> int``
    # (grow/shrink the pool between rounds without losing in-flight work);
    # the control plane's autoscaler feature-detects it with getattr, the
    # same duck-typed seam as ``sync_stats``.


def _resolve_workers(requested: Optional[int], n_lanes: int) -> int:
    """Worker count: requested, else one per core, never more than lanes."""
    if requested is not None and requested <= 0:
        raise ConfigurationError(f"workers must be positive, got {requested}")
    limit = requested if requested is not None else (os.cpu_count() or 1)
    return max(1, min(int(limit), n_lanes))


def _device_dtype(device) -> np.dtype:
    """The dtype a device's ``infer`` runs under.

    Fleet devices pin their profile's compute dtype
    (``FleetDevice.serving_dtype``); in-process adapters serve under the
    ambient policy dtype at call time.
    """
    name = getattr(device, "serving_dtype", None)
    return resolve_dtype(name) if name is not None else default_dtype()


def _timed_infer(device, windows: np.ndarray, position: int) -> LaneResult:
    """Run one batch on a live device, capturing wall time and failure."""
    start = perf_seconds()
    try:
        outputs = device.infer(windows)
    except Exception as error:  # typed errors travel through the futures
        return LaneResult(position, None, 0.0, error)
    return LaneResult(position, outputs, perf_seconds() - start, None)


class SerialExecutor(Executor):
    """Inline execution on the simulated clock — the historical behaviour.

    Bit-exact with the pre-executor scheduler: same engine calls, same
    wall-clock timing converted to device-seconds through
    ``profile.relative_compute``, same simulated-parallel reports
    (``benchmarks/bench_workers.py`` gates the equivalence)."""

    name = "serial"
    clock = "simulated"
    concurrent = False

    def __init__(self, workers: Optional[int] = None) -> None:
        # Accepted for registry uniformity, but a pool size on the inline
        # executor is always a caller mistake — reject it loudly rather
        # than silently serving on one core.
        if workers is not None:
            raise ConfigurationError(
                "the serial executor runs batches inline; workers= requires "
                'executor="thread" or executor="process"'
            )

    def run(self, tasks: Sequence[LaneTask]) -> List[LaneResult]:
        return [
            _timed_infer(self._devices[task.position], task.windows, task.position)
            for task in tasks
        ]


class ThreadExecutor(Executor):
    """Shared-memory concurrency over a persistent thread pool.

    Lanes within one round run on pool threads; numpy's kernels release the
    GIL, so compute overlaps partially — full per-core speedup needs the
    :class:`ProcessExecutor`.  The global dtype policy is *not* thread-safe
    to mutate concurrently, so the round is grouped by each device's
    serving dtype and each group runs under one ambient ``precision``
    scope; the per-device ``precision`` contexts inside ``FleetDevice
    .serve`` then only ever rewrite the value already in force, which keeps
    heterogeneous-precision fleets deterministic.
    """

    name = "thread"
    clock = "wall"
    concurrent = True

    def __init__(self, workers: Optional[int] = None) -> None:
        self._requested = workers
        self._pool: Optional[_ThreadPool] = None
        self.n_workers = 0

    def bind(self, devices: Sequence) -> None:
        super().bind(devices)
        self.n_workers = _resolve_workers(self._requested, len(devices))

    def _ensure_pool(self) -> _ThreadPool:
        if self._pool is None:
            self._pool = _ThreadPool(
                max_workers=self.n_workers, thread_name_prefix="repro-serve"
            )
        return self._pool

    def resize(self, workers: int) -> int:
        """Grow or shrink the thread pool; returns the effective size.

        Thread tasks are joined within each ``run()`` call, so between
        rounds nothing is in flight and the pool can simply be rebuilt at
        the new size on next use.  Capped at the lane count like the
        initial sizing.
        """
        if workers <= 0:
            raise ConfigurationError(f"workers must be positive, got {workers}")
        workers = max(1, min(int(workers), len(self._devices)))
        if workers != self.n_workers:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
            self.n_workers = workers
        return self.n_workers

    def run(self, tasks: Sequence[LaneTask]) -> List[LaneResult]:
        pool = self._ensure_pool()
        groups: Dict[np.dtype, List[LaneTask]] = {}
        for task in tasks:
            groups.setdefault(_device_dtype(self._devices[task.position]), []).append(task)
        results: List[LaneResult] = []
        for dtype, group in groups.items():
            with precision(dtype):
                futures = [
                    pool.submit(
                        _timed_infer, self._devices[task.position],
                        task.windows, task.position,
                    )
                    for task in group
                ]
                results.extend(future.result() for future in futures)
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# ---------------------------------------------------------------------- #
# process workers
# ---------------------------------------------------------------------- #
def _portable_error(error: BaseException) -> BaseException:
    """The error itself when picklable, else a typed stand-in."""
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return ServingError(f"{type(error).__name__}: {error}")


def _process_worker_main(worker_index, task_queue, result_queue, backend_name):
    """Worker process loop: install a backend, serve shipped snapshots.

    Messages: ``("sync", position, snapshot)`` installs/replaces the lane's
    :class:`~repro.edge.inference.SnapshotEngine`; ``("delta", position,
    delta)`` advances the retained base snapshot with an
    :class:`~repro.edge.inference.EngineSnapshotDelta` (only the rows that
    moved cross the IPC queue); ``("run", task_id, position, windows)``
    answers on the shared result queue as ``(task_id, position, outputs,
    wall, error)``; ``("crash",)`` kills the process without cleanup (the
    parent's worker-death path, exercised by tests); ``None`` shuts down
    cleanly.
    """
    from repro.backend import install_worker_backend
    from repro.edge.inference import SnapshotEngine

    install_worker_backend(backend_name)
    engines: Dict[int, SnapshotEngine] = {}
    snapshots: Dict[int, object] = {}  # lane -> last installed EngineStateSnapshot
    while True:
        try:
            message = task_queue.get()
        except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover
            break
        if message is None:
            break
        kind = message[0]
        if kind == "sync":
            _, position, snapshot = message
            engines[position] = SnapshotEngine(snapshot)
            snapshots[position] = snapshot
            continue
        if kind == "delta":
            _, position, delta = message
            # Apply onto the retained base; any failure (missing base, stale
            # version — possible only if the parent's book-keeping broke)
            # drops the lane so the next "run" fails typed through its future
            # rather than serving stale state.
            try:
                base = snapshots.get(position)
                if base is None:
                    raise ExecutorError(
                        f"worker {worker_index} received a delta for lane "
                        f"{position} but holds no base snapshot"
                    )
                snapshot = base.apply_delta(delta)
            except Exception:
                engines.pop(position, None)
                snapshots.pop(position, None)
            else:
                engines[position] = SnapshotEngine(snapshot)
                snapshots[position] = snapshot
            continue
        if kind == "crash":
            os._exit(1)
        _, task_id, position, windows = message
        try:
            engine = engines.get(position)
            if engine is None:
                raise ExecutorError(
                    f"worker {worker_index} holds no engine snapshot for "
                    f"lane {position}"
                )
            start = perf_seconds()
            outputs = engine.predict(windows)
            wall = perf_seconds() - start
        except Exception as error:
            result_queue.put((task_id, position, None, 0.0, _portable_error(error)))
        else:
            result_queue.put((task_id, position, outputs, wall, None))


class _Worker:
    """One pool member: the OS process plus its private task queue."""

    __slots__ = ("index", "process", "task_queue")

    def __init__(self, index, process, task_queue) -> None:
        self.index = index
        self.process = process
        self.task_queue = task_queue


class ProcessExecutor(Executor):
    """Persistent multi-process worker pool, one process per lane group.

    Lane ``i`` is pinned to worker ``i % workers`` so each worker keeps a
    warm :class:`~repro.edge.inference.SnapshotEngine` per lane it owns.
    Snapshots are shipped lazily and re-shipped only when the lane's live
    engine, its learner, or the learner's ``PILOTE.state_version`` changes
    (a broadcast, an on-device increment, or a device/learner replacement —
    a fresh learner restarts its version counter, so identity is part of
    the staleness key), so steady-state rounds carry just the window
    payloads.  A version bump on an already-shipped lane ships an
    :class:`~repro.edge.inference.EngineSnapshotDelta` — only the prototype
    rows and parameters that moved — falling back to the full snapshot when
    the delta would not be smaller or the architecture changed
    (``sync_stats()`` reports bytes shipped and full vs delta counts).  Every device behind the scheduler must expose an ``engine``
    (``FleetDevice``/``EdgeDevice`` do; ``serve(...)`` wires it for the
    in-process adapters) — a lane without one fails with a typed
    :class:`~repro.exceptions.ExecutorError`.

    A dead worker fails its in-flight batches with
    :class:`~repro.exceptions.WorkerDiedError` and is respawned with a
    fresh queue before the next round; lanes it owned re-sync their
    snapshots automatically.
    """

    name = "process"
    clock = "wall"
    concurrent = True

    def __init__(self, workers: Optional[int] = None) -> None:
        self._requested = workers
        methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._workers: List[_Worker] = []
        self._results = None
        # lane -> (engine, learner, state_version, snapshot) last shipped.
        # Identity matters, not just the version number: a redeploy or device
        # replacement installs a *fresh* learner whose counter restarts, so
        # an equal version from a different object must still re-ship.  The
        # retained snapshot is the delta base the worker holds too, so a
        # version bump ships only the rows that moved.
        self._shipped: Dict[int, tuple] = {}
        self._task_counter = 0
        self.n_workers = 0
        # Workers removed by resize() drain their queued messages, exit on
        # the sentinel, and are joined opportunistically (blocking at
        # close()) — the drain-then-retire path that keeps a shrink from
        # killing work already handed to the pool.
        self._retiring: List[_Worker] = []
        self._running = False  # inside run(): tasks are in flight over IPC
        # Shipping telemetry (survives close() so reports can read it after
        # the pool is released): bytes over the IPC queue, full vs delta.
        self.bytes_shipped = 0
        self.full_syncs = 0
        self.delta_syncs = 0

    def bind(self, devices: Sequence) -> None:
        super().bind(devices)
        self.n_workers = _resolve_workers(self._requested, len(devices))

    # -- pool lifecycle ------------------------------------------------- #
    def _ensure_workers(self) -> None:
        if self._workers:
            return
        if self._results is None:
            self._results = self._context.Queue()
        for index in range(self.n_workers):
            self._spawn(index)

    def _spawn(self, index: int) -> None:
        task_queue = self._context.Queue()
        process = self._context.Process(
            target=_process_worker_main,
            args=(index, task_queue, self._results, get_backend().name),
            daemon=True,
            name=f"repro-worker-{index}",
        )
        process.start()
        worker = _Worker(index, process, task_queue)
        if index < len(self._workers):
            self._workers[index] = worker
            # The replacement starts with empty caches: forget what was
            # shipped to its dead predecessor so the next round re-syncs.
            for position in list(self._shipped):
                if position % self.n_workers == index:
                    del self._shipped[position]
        else:
            self._workers.append(worker)

    def resize(self, workers: int) -> int:
        """Grow or shrink the worker pool; returns the effective size.

        Only legal *between* rounds (a resize while ``run()`` has tasks in
        flight raises :class:`~repro.exceptions.ExecutorError` — lane
        ownership is ``position % n_workers``, and remapping it under
        unanswered tasks would orphan them).  Growing spawns fresh workers;
        shrinking retires the tail workers through the drain-then-retire
        path: the sentinel queues *behind* anything already on their task
        queues, so queued syncs/batches complete before the process exits,
        and the join happens opportunistically (blocking at :meth:`close`).
        Lanes whose owning slot changed re-ship their snapshots to the new
        owner on the next round.  Capped at the lane count.
        """
        if workers <= 0:
            raise ConfigurationError(f"workers must be positive, got {workers}")
        if self._running:
            raise ExecutorError(
                "cannot resize the process pool mid-round: tasks are in "
                "flight and lane ownership is position % n_workers; resize "
                "between drains (e.g. from a control-plane tick)"
            )
        workers = max(1, min(int(workers), len(self._devices)))
        old = self.n_workers
        self.n_workers = workers
        if not self._workers or workers == old:
            return self.n_workers
        if workers > old:
            for index in range(old, workers):
                self._spawn(index)
        else:
            retired = self._workers[workers:]
            del self._workers[workers:]
            for worker in retired:
                try:
                    worker.task_queue.put(None)
                except (ValueError, OSError):  # pragma: no cover
                    pass
            self._retiring.extend(retired)
        # Remap: any lane whose owner slot moved must re-sync its snapshot
        # to the new owner (the old owner's copy is unreachable or retired).
        for position in list(self._shipped):
            if position % old != position % workers:
                del self._shipped[position]
        self._reap_retired(block=False)
        return self.n_workers

    def kill_worker(self, index: int, *, wait: bool = True) -> int:
        """Chaos hook: crash one pool worker (``os._exit`` in-process).

        With ``wait`` the call blocks until the process is gone, so the
        next round deterministically finds a dead worker (it is respawned
        before queueing and no batch is lost).  Without it the crash
        message sits behind whatever is already queued and lands mid-round:
        batches queued after it fail with the typed
        :class:`~repro.exceptions.WorkerDiedError` — the storm the chaos
        scenarios drive.  Returns the killed worker's pool index.
        """
        self._ensure_workers()
        worker = self._workers[index % self.n_workers]
        worker.task_queue.put(("crash",))
        if wait:
            worker.process.join(timeout=5.0)
        return worker.index

    def _reap_retired(self, block: bool) -> None:
        """Join workers retired by :meth:`resize` (best-effort when not
        blocking; terminates stragglers when blocking at close time)."""
        still_draining: List[_Worker] = []
        for worker in self._retiring:
            worker.process.join(timeout=2.0 if block else 0.0)
            if worker.process.is_alive():
                if block:  # pragma: no cover - stuck worker
                    worker.process.terminate()
                    worker.process.join(timeout=1.0)
                else:
                    still_draining.append(worker)
        self._retiring = still_draining

    def close(self) -> None:
        for worker in self._workers:
            try:
                worker.task_queue.put(None)
            except (ValueError, OSError):  # pragma: no cover - queue torn down
                pass
        for worker in self._workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        self._workers = []
        self._reap_retired(block=True)
        self._shipped = {}
        if self._results is not None:
            self._results.close()
            self._results = None

    # -- snapshot shipping ---------------------------------------------- #
    def _live_engine(self, position: int):
        device = self._devices[position]
        engine = getattr(device, "engine", None)
        if engine is None:
            raise ExecutorError(
                f"lane {position} (device "
                f"{getattr(device, 'device_id', '?')}) exposes no "
                "InferenceEngine; the process executor serves from shipped "
                "engine snapshots"
            )
        return engine

    def _sync_lane(self, worker: _Worker, position: int) -> None:
        engine = self._live_engine(position)
        learner = engine.learner
        shipped = self._shipped.get(position)
        if (
            shipped is not None
            and shipped[0] is engine
            and shipped[1] is learner
            and shipped[2] == learner.state_version
        ):
            return
        device = self._devices[position]
        snapshot = engine.state_snapshot(
            compute_dtype=str(_device_dtype(device))
        )
        delta = None
        if shipped is not None and shipped[0] is engine and shipped[1] is learner:
            # Same engine/learner, newer version: the worker still holds the
            # previously shipped snapshot, so only the rows that moved need
            # to cross the IPC queue.  Architectural changes raise
            # SnapshotMismatchError and fall back to the full re-ship.
            try:
                delta = snapshot.diff(shipped[3])
            except SnapshotMismatchError:
                delta = None
        if delta is not None and delta.nbytes < snapshot.nbytes:
            worker.task_queue.put(("delta", position, delta))
            self.bytes_shipped += delta.nbytes
            self.delta_syncs += 1
        else:
            worker.task_queue.put(("sync", position, snapshot))
            self.bytes_shipped += snapshot.nbytes
            self.full_syncs += 1
        self._shipped[position] = (engine, learner, snapshot.state_version, snapshot)

    def sync_stats(self) -> Dict[str, int]:
        """Cumulative snapshot-shipping telemetry (full syncs, deltas, bytes)."""
        return {
            "bytes_shipped": self.bytes_shipped,
            "full_syncs": self.full_syncs,
            "delta_syncs": self.delta_syncs,
        }

    # -- execution ------------------------------------------------------ #
    def run(self, tasks: Sequence[LaneTask]) -> List[LaneResult]:
        self._ensure_workers()
        self._running = True
        try:
            return self._run(tasks)
        finally:
            self._running = False

    def _run(self, tasks: Sequence[LaneTask]) -> List[LaneResult]:
        pending: Dict[int, LaneTask] = {}
        owners: Dict[int, _Worker] = {}
        results: List[LaneResult] = []
        for task in tasks:
            worker = self._workers[task.position % self.n_workers]
            if not worker.process.is_alive():
                # Died idle between rounds: respawn before queueing so the
                # round doesn't burn its tasks just to notice.
                self._spawn(worker.index)
                worker = self._workers[worker.index]
            try:
                self._sync_lane(worker, task.position)
            except Exception as error:
                # An unsnapshottable lane (no engine, learner not fitted,
                # snapshot failure, ...) fails its batch through the future,
                # like any other serving error — never a lost task, and
                # never an aborted round stranding already-queued lanes.
                results.append(LaneResult(task.position, None, 0.0, error))
                continue
            self._task_counter += 1
            task_id = self._task_counter
            pending[task_id] = task
            owners[task_id] = worker
            worker.task_queue.put(
                ("run", task_id, task.position, np.asarray(task.windows))
            )
        while pending:
            try:
                task_id, position, outputs, wall, error = self._results.get(
                    timeout=_POLL_SECONDS
                )
            except queue.Empty:
                self._reap_dead(pending, owners, results)
                continue
            if pending.pop(task_id, None) is None:
                # Late answer from a worker already declared dead for this
                # task — the future was failed once; never complete it twice.
                continue
            owners.pop(task_id, None)
            results.append(LaneResult(position, outputs, wall, error))
        return results

    def _reap_dead(self, pending, owners, results) -> None:
        """Fail tasks owned by dead workers; respawn their processes.

        Matching is by worker *identity*, not pool index: a slot whose
        occupant died and was already replaced mid-round may own tasks
        under both the dead object and its healthy replacement, and only
        the former's may be failed (or its slot respawned again).
        """
        dead = {
            id(worker): worker
            for worker in owners.values()
            if not worker.process.is_alive()
        }
        if not dead:
            return
        for task_id in [tid for tid, worker in owners.items() if id(worker) in dead]:
            task = pending.pop(task_id)
            worker = owners.pop(task_id)
            results.append(
                LaneResult(
                    task.position,
                    None,
                    0.0,
                    WorkerDiedError(
                        f"worker process {worker.index} (pid "
                        f"{worker.process.pid}) died before answering lane "
                        f"{task.position}"
                    ),
                )
            )
        for worker in dead.values():
            # Respawn only if the dead worker still occupies its slot — a
            # mid-round replacement must not be displaced (and orphaned).
            if self._workers[worker.index] is worker:
                self._spawn(worker.index)


#: CLI/config name → executor class.
EXECUTORS = {
    SerialExecutor.name: SerialExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
}


def make_executor(
    executor: Union[str, Executor, None], *, workers: Optional[int] = None
) -> Executor:
    """Resolve an executor instance from a name, an instance or ``None``.

    ``None`` means the default :class:`SerialExecutor` (inline, simulated
    clock — the historical behaviour).  ``workers`` sizes the pool of the
    concurrent executors (default: one per CPU core, capped at the lane
    count); it cannot be combined with an already-built instance.
    """
    if isinstance(executor, Executor):
        if workers is not None:
            raise ConfigurationError(
                "workers= cannot resize an already-built executor instance; "
                "pass the executor name instead"
            )
        return executor
    if executor is None:
        executor = SerialExecutor.name
    try:
        executor_class = EXECUTORS[executor]
    except (KeyError, TypeError):
        raise ConfigurationError(
            f"unknown executor {executor!r}; expected one of {sorted(EXECUTORS)}"
        ) from None
    return executor_class(workers=workers)
