"""`ServingClient` — one serving facade for every layer of the system.

``serve(obj)`` builds a client from whatever can answer predictions:

* a bare :class:`~repro.core.pilote.PILOTE` learner (or its
  :class:`~repro.edge.inference.InferenceEngine`) — served in process;
* an :class:`~repro.edge.device.EdgeDevice` with an attached engine;
* a :class:`~repro.edge.magneto.MagnetoPlatform` — the paper's one-device
  pipeline;
* a :class:`~repro.fleet.FleetCoordinator` — an N-device fleet with
  pluggable routing.

Every layer answers the *same* protocol (:class:`~repro.serving.protocol
.PredictRequest` in, :class:`~repro.serving.protocol.PendingResult` /
:class:`~repro.serving.protocol.PredictResponse` out), so code written
against the client is indifferent to whether one learner or eight devices sit
behind it::

    from repro.serving import serve, PredictRequest

    client = serve(fleet, routing="least-loaded", seed=0)
    pending = client.submit(PredictRequest(user_id=7, features=windows))
    client.drain()                      # run the event loop
    response = pending.result()         # class ids + latency + device id

    class_ids = serve(learner).predict(windows)   # one-liner, same types

When the fleet has an active A/B rollout
(:class:`~repro.serving.rollout.ABRollout`), the client confines each user to
their cohort's devices before applying the routing policy, so treatment and
control populations never mix.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.edge.device import DeviceProfile, EdgeDevice
from repro.edge.inference import InferenceEngine
from repro.edge.magneto import MagnetoPlatform
from repro.exceptions import ClientClosedError, RoutingError, ServingError
from repro.fleet.coordinator import (
    FleetCoordinator,
    FleetDevice,
    HierarchicalFleetCoordinator,
)
from repro.fleet.router import RoutingReport
from repro.serving.executor import Executor
from repro.serving.protocol import PendingResult, PredictRequest
from repro.serving.routing import RegionalRouting, RoutingPolicy
from repro.serving.scheduler import EventLoopScheduler
from repro.utils.rng import RandomState

__all__ = ["ServingClient", "serve", "LocalServingDevice", "IN_PROCESS_PROFILE"]

#: Profile of the in-process pseudo-device wrapping a bare learner/engine.
IN_PROCESS_PROFILE = DeviceProfile(
    "in-process",
    storage_bytes=2**30,
    memory_bytes=2**30,
    relative_compute=1.0,
)


class LocalServingDevice:
    """Adapts any ``infer(windows) -> class_ids`` callable to the device API.

    Gives bare learners, engines and edge devices the interface the
    event-loop scheduler expects from a fleet device: ``infer``,
    ``device_id`` and ``profile``.  ``engine`` optionally names the
    :class:`~repro.edge.inference.InferenceEngine` behind the callable so
    the multi-process executor can snapshot it for remote serving
    (``serve(...)`` wires it automatically); ``serving_dtype`` stays
    ``None`` because in-process adapters serve under the ambient dtype
    policy rather than a device profile's pinned dtype.
    """

    serving_dtype = None

    def __init__(
        self,
        infer,
        *,
        profile: DeviceProfile = IN_PROCESS_PROFILE,
        device_id: int = 0,
        engine=None,
    ) -> None:
        self._infer = infer
        self.profile = profile
        self.device_id = int(device_id)
        self.engine = engine

    def infer(self, windows: np.ndarray) -> np.ndarray:
        return self._infer(windows)


class ServingClient:
    """Futures-based serving client over an event-loop scheduler.

    Parameters
    ----------
    devices:
        Device-like targets (``FleetCoordinator.devices`` passes its live
        list, so device replacement reaches in-flight requests).
    routing:
        Policy name (``"hash"``, ``"least-loaded"``, ``"p2c"``), a
        :class:`~repro.serving.routing.RoutingPolicy` instance, or ``None``
        for the seeded-hash default.
    seed:
        Seeds the routing policy; same seed, same placement.
    scheduling:
        Queue order of the event-loop scheduler: ``"fifo"`` (arrival order,
        the default) or ``"edf"`` (earliest-deadline-first — requests with
        the tightest deadlines are served first; see
        :mod:`repro.serving.scheduler` for the full deadline semantics).
    executor:
        Where batches execute — ``"serial"`` (inline on the simulated
        clock, the default), ``"thread"`` or ``"process"`` (real
        multi-process workers; see :mod:`repro.serving.executor`), or an
        :class:`~repro.serving.executor.Executor` instance.  ``workers``
        sizes the concurrent pools.  Call :meth:`close` (or use the client
        as a context manager) to release worker pools.
    coordinator:
        The owning :class:`~repro.fleet.FleetCoordinator`, when there is one;
        enables cohort-confined routing under an active A/B rollout.
    """

    def __init__(
        self,
        devices: Sequence,
        *,
        routing: Union[str, RoutingPolicy, None] = None,
        seed: RandomState = None,
        scheduling: str = "fifo",
        executor: Union[str, Executor, None] = None,
        workers: Optional[int] = None,
        coordinator: Optional[FleetCoordinator] = None,
        label: str = "fleet",
    ) -> None:
        self._scheduler = EventLoopScheduler(
            devices, routing, seed=seed, scheduling=scheduling,
            executor=executor, workers=workers,
        )
        self._coordinator = coordinator
        self._closed = False
        self.label = label
        #: Attached :class:`~repro.control.ControlPlane`, if any.
        self.control = None

    # ------------------------------------------------------------------ #
    @property
    def routing(self) -> str:
        """Name of the active routing policy."""
        return self._scheduler.policy.name

    @property
    def scheduling(self) -> str:
        """Active queue order (``"fifo"`` or ``"edf"``)."""
        return self._scheduler.scheduling

    @property
    def executor(self) -> str:
        """Name of the active executor (``serial``/``thread``/``process``)."""
        return self._scheduler.executor.name

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run; submits raise typed afterwards."""
        return self._closed

    def close(self) -> None:
        """Close the client: fail still-pending futures typed, release pools.

        Idempotent.  Any request submitted but not yet drained completes
        with :class:`~repro.exceptions.ClientClosedError` (counted in
        ``RoutingReport.total_failed``) rather than being dropped, and
        further :meth:`submit`/:meth:`submit_many` calls raise the same
        typed error instead of failing obscurely inside a released
        executor.  :meth:`report` keeps working after close.
        """
        if self._closed:
            return
        self._closed = True
        self._scheduler.fail_pending(
            ClientClosedError(
                "serving client closed with requests still pending; their "
                "futures were failed with this error instead of being dropped"
            )
        )
        self._scheduler.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def scheduler(self) -> EventLoopScheduler:
        return self._scheduler

    @property
    def n_devices(self) -> int:
        return self._scheduler.n_devices

    @property
    def pending_requests(self) -> int:
        return self._scheduler.pending_requests

    # ------------------------------------------------------------------ #
    def submit(self, request) -> PendingResult:
        """Queue one request; returns a future completed by :meth:`drain`."""
        return self.submit_many([request])[0]

    def submit_many(self, requests: Sequence) -> List[PendingResult]:
        """Queue many requests at once (vectorised routing), one future each.

        Routing only considers *deployed* devices, so serving keeps working
        mid-rollout (staged canaries leave part of the fleet without a
        learner until :meth:`~repro.fleet.FleetCoordinator.advance_rollout`
        reaches it).  Under an active A/B rollout, each user is additionally
        confined to their cohort's devices.
        """
        if self._closed:
            raise ClientClosedError(
                "cannot submit to a closed serving client; build a new one "
                "with repro.serving.serve(...)"
            )
        rollout = (
            self._coordinator.active_rollout if self._coordinator is not None else None
        )
        if rollout is not None and rollout.routes_users:
            futures = self._submit_cohorted(requests, rollout)
        else:
            lanes = self._deployed_lanes()
            if lanes is None:
                futures = self._scheduler.submit_many(requests)
            elif not requests:
                futures = []
            else:
                user_ids = np.fromiter(
                    (r.user_id for r in requests), dtype=np.int64, count=len(requests)
                )
                assignment = self._scheduler.policy.assign_batch(
                    requests, user_ids, self._scheduler, lanes=lanes
                )
                futures = self._scheduler.submit_assigned(requests, assignment)
        # Every submit path funnels through the control plane (when one is
        # attached): controllers see the queued wave and may replace entries
        # (hedged pairs) or act on the pre-drain signals (autoscaling).
        if self.control is not None and requests:
            futures = self.control.after_submit(requests, futures)
        return futures

    def drain(self) -> int:
        """Run the event loop until every pending request is answered."""
        drained = self._scheduler.drain()
        if self.control is not None:
            self.control.after_drain()
            # A controller's tick may itself queue work (none of the stock
            # controllers do, but the hook allows it) — never leave it behind.
            if self._scheduler.pending_requests:
                drained += self._scheduler.drain()
        return drained

    # ------------------------------------------------------------------ #
    def attach_control(self, plane) -> None:
        """Install a :class:`~repro.control.ControlPlane` on this client.

        Called by the plane's constructor; afterwards every
        :meth:`submit_many` wave and every :meth:`drain` flow through the
        plane's hooks.  Detach by setting :attr:`control` back to ``None``
        (and clearing ``scheduler.admission`` if a shedder installed itself).
        """
        self.control = plane

    def control_stats(self) -> Optional[dict]:
        """The attached control plane's telemetry, or ``None``."""
        return self.control.stats() if self.control is not None else None

    def predict(
        self,
        features: np.ndarray,
        *,
        user_id: int = 0,
        arrival_seconds: float = 0.0,
        deadline_seconds: Optional[float] = None,
        metadata=None,
    ) -> np.ndarray:
        """Synchronous convenience: submit one request, drain, return ids."""
        pending = self.submit(
            PredictRequest(
                user_id=user_id,
                features=features,
                arrival_seconds=arrival_seconds,
                deadline_seconds=deadline_seconds,
                metadata=metadata,
            )
        )
        self.drain()
        return pending.result().class_ids

    def clock_now(self) -> float:
        """Current reading of the scheduler clock (stamps live arrivals)."""
        return self._scheduler.clock_now()

    def report(self) -> RoutingReport:
        """Per-device serving statistics on the simulated clock."""
        return self._scheduler.report()

    def sync_stats(self) -> Optional[dict]:
        """The executor's snapshot-shipping counters, when it keeps any.

        ``{"bytes_shipped", "full_syncs", "delta_syncs"}`` for the process
        executor, ``None`` for executors that ship nothing; feeds the
        report's JSON export (``RoutingReport.to_dict(sync_stats=...)``).
        """
        executor = self._scheduler.executor
        stats = getattr(executor, "sync_stats", None)
        return dict(stats()) if callable(stats) else None

    def replace_device(self, device_id: int, replacement) -> None:
        """Swap a device; queued requests are served by the replacement."""
        self._scheduler.replace_device(device_id, replacement)

    def describe(self) -> dict:
        return {
            "label": self.label,
            "routing": self.routing,
            "scheduling": self.scheduling,
            "executor": self.executor,
            "n_devices": self.n_devices,
            "pending_requests": self.pending_requests,
        }

    # ------------------------------------------------------------------ #
    def _deployed_lanes(self) -> Optional[np.ndarray]:
        """Lane subset with a deployed device, or ``None`` when all are.

        Only meaningful behind a coordinator (fleet devices know whether
        they carry a learner yet); local adapters are always servable.
        """
        if self._coordinator is None:
            return None
        devices = self._scheduler.devices
        lanes = [
            position
            for position, device in enumerate(devices)
            if getattr(device, "is_deployed", True)
        ]
        if len(lanes) == len(devices):
            return None
        if not lanes:
            raise RoutingError("no deployed devices in the fleet; deploy() first")
        return np.asarray(lanes, dtype=np.int64)

    def _submit_cohorted(self, requests: Sequence, rollout) -> List[PendingResult]:
        """Confine each user to their rollout cohort, then route within it."""
        scheduler = self._scheduler
        cohort_indices: dict = {}
        for index, request in enumerate(requests):
            cohort = rollout.policy.user_cohort(request.user_id)
            cohort_indices.setdefault(cohort, []).append(index)
        # Resolve every cohort's lanes up front: an unservable cohort raises
        # *before* anything is queued, so no request is half-submitted.
        lanes_by_cohort = {
            cohort: self._cohort_lanes(rollout, cohort) for cohort in cohort_indices
        }
        futures: List[Optional[PendingResult]] = [None] * len(requests)
        for cohort, indices in cohort_indices.items():
            lanes = lanes_by_cohort[cohort]
            group = [requests[i] for i in indices]
            user_ids = np.fromiter(
                (r.user_id for r in group), dtype=np.int64, count=len(group)
            )
            assignment = scheduler.policy.assign_batch(
                group, user_ids, scheduler, lanes=lanes
            )
            for future, index in zip(
                scheduler.submit_assigned(group, assignment), indices
            ):
                futures[index] = future
        return futures  # type: ignore[return-value]

    def _cohort_lanes(self, rollout, cohort: Optional[str]) -> Optional[np.ndarray]:
        if cohort is None:
            return None
        lanes = [
            position
            for position, device in enumerate(self._scheduler.devices)
            if rollout.plan.cohorts.get(device.device_id) == cohort
            and getattr(device, "is_deployed", True)
        ]
        if not lanes:
            raise RoutingError(
                f"rollout cohort {cohort!r} has no deployed devices to serve it"
            )
        return np.asarray(lanes, dtype=np.int64)


# ---------------------------------------------------------------------- #
def serve(
    target,
    *,
    routing: Union[str, RoutingPolicy, None] = None,
    seed: RandomState = None,
    scheduling: str = "fifo",
    executor: Union[str, Executor, None] = None,
    workers: Optional[int] = None,
    adaptive: bool = False,
) -> ServingClient:
    """Build a :class:`ServingClient` from any serving-capable object.

    Accepts a :class:`~repro.core.pilote.PILOTE` learner, an
    :class:`~repro.edge.inference.InferenceEngine`, an
    :class:`~repro.edge.device.EdgeDevice`, a
    :class:`~repro.edge.magneto.MagnetoPlatform`, a single
    :class:`~repro.fleet.FleetDevice` or a whole
    :class:`~repro.fleet.FleetCoordinator` — every layer answers the same
    request/response protocol afterwards.  ``scheduling`` picks the queue
    order (``"fifo"`` arrival order or ``"edf"`` earliest-deadline-first);
    ``executor`` picks where batches run (``"serial"`` inline on the
    simulated clock, ``"thread"``, or ``"process"`` for real multi-process
    workers sized by ``workers``).  ``adaptive=True`` attaches the default
    :class:`~repro.control.ControlPlane` stack (load shedding, hedged
    requests where the fleet has sibling lanes, pool autoscaling where the
    executor is resizable) to the built client.
    """
    from repro.core.pilote import PILOTE  # deferred: core must not import serving

    options = dict(
        routing=routing, seed=seed, scheduling=scheduling,
        executor=executor, workers=workers,
    )
    client = _build_client(target, options, PILOTE)
    if adaptive:
        from repro.control import ControlPlane  # deferred: control imports serving

        ControlPlane(client)
    return client


def _build_client(target, options: dict, PILOTE) -> ServingClient:
    routing = options["routing"]
    if isinstance(target, HierarchicalFleetCoordinator):
        if not target.regions:
            raise ServingError("the fleet has no devices; provision() first")
        lanes = target.serving_lanes()
        if routing is None or routing == "hash":
            # Hash through the fleet's device → lane map so pooled devices
            # keep the exact user placement a flat fleet would give them.
            options["routing"] = RegionalRouting(target)
        return ServingClient(
            lanes,
            coordinator=target,
            label="fleet-tree",
            **options,
        )
    if isinstance(target, FleetCoordinator):
        if not target.devices:
            raise ServingError("the fleet has no devices; provision() first")
        return ServingClient(
            target.devices,
            coordinator=target,
            label="fleet",
            **options,
        )
    if isinstance(target, FleetDevice):
        return ServingClient([target], label="fleet-device", **options)
    if isinstance(target, MagnetoPlatform):
        device = LocalServingDevice(
            target._serve_edge,
            profile=target.device.profile,
            engine=target.device.engine,
        )
        return ServingClient([device], label="platform", **options)
    if isinstance(target, EdgeDevice):
        device = LocalServingDevice(
            target.serve, profile=target.profile, engine=target.engine
        )
        return ServingClient([device], label="edge-device", **options)
    if isinstance(target, InferenceEngine):
        device = LocalServingDevice(target.predict, engine=target)
        return ServingClient([device], label="engine", **options)
    if isinstance(target, PILOTE):
        engine = target.inference_engine()
        device = LocalServingDevice(engine.predict, engine=engine)
        return ServingClient([device], label="learner", **options)
    raise ServingError(
        f"don't know how to serve {type(target).__name__}; expected a PILOTE "
        "learner, InferenceEngine, EdgeDevice, MagnetoPlatform, FleetDevice "
        "or FleetCoordinator"
    )
