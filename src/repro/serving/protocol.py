"""Typed request/response protocol of the unified serving API.

Every serving surface in the library — a bare :class:`~repro.core.pilote.PILOTE`
learner, a :class:`~repro.edge.magneto.MagnetoPlatform`, a whole
:class:`~repro.fleet.FleetCoordinator` fleet — answers the same three types:

* :class:`PredictRequest` — who is asking (``user_id``), what for (a
  ``(n_windows, n_features)`` feature batch), by when (an optional simulated
  ``deadline_seconds``) and any opaque ``metadata`` the caller wants echoed
  back;
* :class:`PendingResult` — a future returned by
  :meth:`~repro.serving.ServingClient.submit` that completes on the simulated
  clock when the scheduler drains;
* :class:`PredictResponse` — per-window class decisions plus the serving
  facts (which device answered, simulated completion time, latency, whether
  the deadline was missed).

Failures are typed: :class:`~repro.exceptions.ServingError` subclasses such
as :class:`~repro.exceptions.DeadlineExceededError` come back through
:meth:`PendingResult.exception` / :meth:`PendingResult.result` rather than
escaping mid-drain.

The legacy :class:`~repro.fleet.traffic.InferenceRequest` is accepted
everywhere a :class:`PredictRequest` is (it carries the same ``user_id`` /
``features`` / ``arrival_seconds`` core), so existing traffic generators feed
the new API unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import InvalidRequestError

__all__ = [
    "PredictRequest",
    "Prediction",
    "PredictResponse",
    "PendingResult",
]


@dataclass(frozen=True, eq=False)
class PredictRequest:
    """One user's inference request under the unified serving protocol.

    Compared by identity (``eq=False``): the generated field-wise ``==``
    would raise on the ndarray payload, and two requests carrying equal
    windows are still distinct requests.

    Attributes
    ----------
    user_id:
        Stable non-negative identity of the requesting user; routing policies
        shard or balance on it.
    features:
        ``(n_windows, n_features)`` feature batch (a single 1-D window is
        promoted to one row, by copy).  Both dimensions must be non-empty —
        a ``(n, 0)`` batch has nothing to classify and is rejected here
        with a typed :class:`~repro.exceptions.InvalidRequestError` instead
        of failing deep inside the engine GEMM.  The stored array is marked
        read-only at construction: batches coalesce into shared engine
        calls after submit, so post-submit mutation would silently corrupt
        co-batched requests.  A 2-D input is stored *without copying* (the
        hot path must not duplicate payloads), which means the caller's own
        array object becomes read-only — deliberate: mutating a submitted
        payload should fail loudly at the write site, not corrupt a batch.
    arrival_seconds:
        Simulated arrival time of the request.
    deadline_seconds:
        Optional absolute simulated deadline.  A request whose deadline is
        already unmeetable at submit is *rejected* by admission control (the
        future completes immediately with
        :class:`~repro.exceptions.DeadlineExceededError`); one whose service
        has not *started* by its deadline is *expired* with the same error
        at drain time; one that started in time but finished late is
        answered with ``deadline_missed=True``.  Deadlines also drive queue
        order under earliest-deadline-first scheduling
        (``serve(..., scheduling="edf")``).
    metadata:
        Opaque caller payload, echoed back on the response.
    request_id:
        Optional caller-assigned correlation id, echoed back on the response.
    """

    user_id: int
    features: np.ndarray
    arrival_seconds: float = 0.0
    deadline_seconds: Optional[float] = None
    metadata: Optional[Mapping[str, Any]] = None
    request_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.user_id < 0:
            raise InvalidRequestError(
                f"user_id must be non-negative, got {self.user_id}"
            )
        features = np.asarray(self.features)
        if features.ndim == 1:
            # Promote to one row by copy: freezing a view of the caller's
            # 1-D buffer would not stop mutation through the base array.
            features = features[None, :].copy()
        if features.ndim != 2 or features.shape[0] == 0:
            raise InvalidRequestError(
                f"features must be a non-empty (n_windows, n_features) batch, "
                f"got shape {np.asarray(self.features).shape}"
            )
        if features.shape[1] == 0:
            raise InvalidRequestError(
                f"features must carry at least one feature per window, got "
                f"shape {features.shape}; a zero-feature batch cannot be "
                "classified"
            )
        # Freeze the payload: after submit it may be concatenated into a
        # coalesced engine batch, so caller mutation must fail loudly.
        features.setflags(write=False)
        object.__setattr__(self, "features", features)
        if self.deadline_seconds is not None and self.deadline_seconds <= self.arrival_seconds:
            raise InvalidRequestError(
                f"deadline_seconds ({self.deadline_seconds}) must be after "
                f"arrival_seconds ({self.arrival_seconds})"
            )

    @property
    def n_windows(self) -> int:
        return int(self.features.shape[0])


@dataclass(frozen=True)
class Prediction:
    """One window's class decision within a response."""

    window: int
    class_id: int


class PredictResponse:
    """Completed answer to one request (built lazily by the future).

    Carries the per-window class ids plus the serving facts recorded by the
    event-loop scheduler: the device that answered, the simulated completion
    time and the derived latency/deadline verdict.
    """

    __slots__ = ("request", "class_ids", "device_id", "completed_seconds")

    def __init__(
        self,
        request,
        class_ids: np.ndarray,
        device_id: int,
        completed_seconds: float,
    ) -> None:
        self.request = request
        self.class_ids = class_ids
        self.device_id = device_id
        self.completed_seconds = completed_seconds

    # ------------------------------------------------------------------ #
    @property
    def user_id(self) -> int:
        return self.request.user_id

    @property
    def request_id(self) -> Optional[int]:
        return getattr(self.request, "request_id", None)

    @property
    def metadata(self) -> Optional[Mapping[str, Any]]:
        return getattr(self.request, "metadata", None)

    @property
    def n_windows(self) -> int:
        return int(self.class_ids.shape[0])

    @property
    def latency_seconds(self) -> float:
        return self.completed_seconds - self.request.arrival_seconds

    @property
    def deadline_missed(self) -> bool:
        deadline = getattr(self.request, "deadline_seconds", None)
        return deadline is not None and self.completed_seconds > deadline

    @property
    def predictions(self) -> Tuple[Prediction, ...]:
        return tuple(
            Prediction(window=index, class_id=int(class_id))
            for index, class_id in enumerate(self.class_ids)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PredictResponse(user_id={self.user_id}, n_windows={self.n_windows}, "
            f"device_id={self.device_id}, completed={self.completed_seconds:.6f})"
        )


class PendingResult:
    """Future for one submitted request, completed on the simulated clock.

    This is the *interface* every serving future implements; the scheduler
    returns its batch-backed implementation (one three-slot view per
    request, sharing completion state with the whole engine batch).  The
    contract:

    * :meth:`done` — whether the request has been answered or failed;
    * :meth:`result` — the :class:`PredictResponse`; transparently drains
      the owning scheduler first, so ``submit(...).result()`` behaves like
      a synchronous call, and raises the typed
      :class:`~repro.exceptions.ServingError` on failure;
    * :meth:`exception` — the failure, or ``None``;
    * :meth:`add_done_callback` — runs ``callback(self)`` at completion
      (immediately if already done).
    """

    __slots__ = ("request",)

    def __init__(self, request) -> None:
        self.request = request

    def done(self) -> bool:
        """Whether the request has been answered (or failed)."""
        raise NotImplementedError  # repro: noqa[repro-errors] abstract protocol method

    def add_done_callback(self, callback: Callable[["PendingResult"], None]) -> None:
        """Run ``callback(self)`` at completion (immediately if already done)."""
        raise NotImplementedError  # repro: noqa[repro-errors] abstract protocol method

    def exception(self) -> Optional[BaseException]:
        """The request's failure, if any (drains the scheduler if pending)."""
        raise NotImplementedError  # repro: noqa[repro-errors] abstract protocol method

    def result(self) -> PredictResponse:
        """The completed response; raises the typed error on failure."""
        raise NotImplementedError  # repro: noqa[repro-errors] abstract protocol method

    def cancel(self) -> bool:
        """Best-effort cancellation of a still-queued request.

        Returns ``True`` when the request is marked for cancellation (it
        will resolve with :class:`~repro.exceptions.RequestCancelledError`
        unless its batch reaches service first — cancellation is advisory,
        never retroactive).  The base implementation is not cancellable and
        returns ``False``; the scheduler's batch-backed future overrides.
        """
        return False

    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was accepted for this future."""
        return False
