"""`pilote serve` — one workload, three serving layers, one API.

The demonstration behind the acceptance story of the unified serving API:
the *same* seeded request stream is answered by

1. a bare :class:`~repro.core.pilote.PILOTE` learner served in process,
2. the paper's one-device :class:`~repro.edge.magneto.MagnetoPlatform`, and
3. an N-device :class:`~repro.fleet.FleetCoordinator` fleet,

all through :func:`repro.serving.serve` with identical
:class:`~repro.serving.PredictRequest` / :class:`~repro.serving.PredictResponse`
types.  The run reports per-layer throughput/latency on the simulated clock
and each layer's prediction agreement with the bare learner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.data.streams import build_incremental_scenario
from repro.edge.cloud import CloudServer
from repro.edge.magneto import MagnetoPlatform
from repro.evaluation.scenarios import FLEET_SCENARIO
from repro.exceptions import ConfigurationError
from repro.experiments.common import ExperimentSettings, make_dataset
from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.traffic import TrafficGenerator, WorkloadSpec
from repro.serving.client import serve
from repro.utils.logging import get_logger
from repro.utils.rng import resolve_rng

logger = get_logger("serving.simulation")


@dataclass
class ServingSimulationResult:
    """Per-layer serving statistics for the same request stream."""

    routing_policy: str
    n_requests: int
    layer_rows: List[Dict[str, object]] = field(default_factory=list)
    scheduling_order: str = "fifo"

    def to_text(self) -> str:
        lines = [
            "Unified serving API: one request stream, three layers",
            "",
            f"requests per layer: {self.n_requests}  "
            f"(routing policy: {self.routing_policy}, "
            f"scheduling: {self.scheduling_order})",
            "",
            f"{'layer':>10}{'devices':>9}{'windows':>9}{'throughput':>12}"
            f"{'mean ms':>9}{'p99 ms':>9}{'agreement':>11}",
        ]
        for row in self.layer_rows:
            lines.append(
                f"{row['layer']:>10}{row['devices']:>9}{row['windows']:>9}"
                f"{row['throughput']:>12.0f}{row['mean_latency_ms']:>9.2f}"
                f"{row['p99_latency_ms']:>9.2f}{row['agreement']:>11.4f}"
            )
        lines.extend(
            [
                "",
                "every layer answered the identical PredictRequest stream through",
                "repro.serving.serve(...) and returned PredictResponse futures.",
            ]
        )
        return "\n".join(lines)


def run(
    settings: Optional[ExperimentSettings] = None,
    *,
    n_devices: Optional[int] = None,
    routing: Optional[str] = None,
    scheduling: Optional[str] = None,
) -> ServingSimulationResult:
    """Serve one seeded workload through learner, platform and fleet.

    ``scheduling`` picks the event-loop queue order (``"fifo"``/``"edf"``);
    the stream itself is deadline-less, so both orders serve it identically
    — the flag exists to exercise the EDF path end to end from the CLI.
    """
    settings = settings or ExperimentSettings.default()
    scheduling = scheduling or "fifo"
    n_devices = n_devices if n_devices is not None else FLEET_SCENARIO.n_devices
    if n_devices <= 0:
        raise ConfigurationError(f"n_devices must be positive, got {n_devices}")
    rng = resolve_rng(settings.seed)
    dataset = make_dataset(settings, rng=rng)
    scenario = build_incremental_scenario(
        dataset, [int(c) for c in FLEET_SCENARIO.new_classes], rng=rng
    )

    # One cloud pre-training feeds every layer.
    cloud = CloudServer(settings.config, seed=settings.seed)
    cloud.pretrain(
        scenario.old_train,
        scenario.old_validation,
        exemplars_per_class=settings.exemplars_per_class,
    )
    learner = cloud.learner
    assert learner is not None
    package = cloud.export_package()

    platform = MagnetoPlatform(settings.config, seed=settings.seed)
    platform.cloud.learner = learner
    platform.cloud.history = cloud.history
    platform.deploy_to_edge()

    fleet = FleetCoordinator(settings.config, seed=settings.seed)
    fleet.provision(n_devices)
    fleet.deploy(package)

    workload = WorkloadSpec(
        pattern="zipf",
        n_users=64,
        requests_per_tick=32,
        n_ticks=6,
        tick_seconds=0.0,
    )
    layers = [
        ("learner", learner, 1),
        ("platform", platform, 1),
        ("fleet", fleet, n_devices),
    ]
    baseline: Optional[np.ndarray] = None
    rows: List[Dict[str, object]] = []
    n_requests = 0
    for label, target, devices in layers:
        client = serve(target, routing=routing, scheduling=scheduling, seed=settings.seed)
        traffic = TrafficGenerator(scenario.test, workload, seed=settings.seed)
        futures = []
        for requests in traffic.ticks():
            futures.extend(client.submit_many(requests))
            client.drain()
        class_ids = np.concatenate([f.result().class_ids for f in futures])
        if baseline is None:
            baseline = class_ids
        report = client.report()
        n_requests = int(report.total_requests)
        rows.append(
            {
                "layer": label,
                "devices": devices,
                "windows": int(report.total_windows),
                "throughput": report.aggregate_throughput,
                "mean_latency_ms": report.mean_latency_seconds * 1e3,
                "p99_latency_ms": report.p99_latency_seconds * 1e3,
                "agreement": float(np.mean(class_ids == baseline)),
            }
        )
        logger.info(
            "served %d requests through the %s layer (%s routing)",
            n_requests,
            label,
            client.routing,
        )
    return ServingSimulationResult(
        routing_policy=routing or "hash",
        n_requests=n_requests,
        layer_rows=rows,
        scheduling_order=scheduling,
    )
