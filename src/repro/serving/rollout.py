"""Rollout policies — the staging seam on ``FleetCoordinator.deploy``.

A :class:`RolloutPolicy` decides *which devices receive a package when*, and
labels every device with a cohort so accuracy/latency can be compared across
the rollout:

* :class:`AllAtOnceRollout` (``"all-at-once"``) — the historical behaviour:
  one stage, every device, one ``"fleet"`` cohort;
* :class:`StagedRollout` (``"staged"``) — canary fractions: stage 0 deploys
  to the first ``fractions[0]`` share of the fleet, each
  ``FleetCoordinator.advance_rollout()`` call widens to the next fraction;
* :class:`ABRollout` (``"ab"``) — a treatment arm of devices receives the
  package while the control arm keeps what it was running; *users* are
  hashed into matching cohorts, and the serving client confines each user
  to their arm's devices.

The coordinator owns the state (:class:`ActiveRollout`) and the reporting
(:meth:`~repro.fleet.FleetCoordinator.rollout_report` — per-cohort accuracy
from the device learners, per-cohort latency from a serving report).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Type, Union

import numpy as np

from repro.exceptions import ConfigurationError, ServingError
from repro.serving.routing import splitmix64

__all__ = [
    "RolloutPolicy",
    "AllAtOnceRollout",
    "StagedRollout",
    "ABRollout",
    "RolloutPlan",
    "ActiveRollout",
    "CohortReport",
    "RolloutReport",
    "ROLLOUT_POLICIES",
    "make_rollout_policy",
]


@dataclass(frozen=True)
class RolloutPlan:
    """Concrete schedule produced by a policy for one fleet.

    ``stages`` lists the device ids *newly* deployed at each stage (no
    repeats); ``cohorts`` labels every device — including ones this plan
    never deploys to (e.g. the control arm).
    """

    stages: List[List[int]]
    cohorts: Dict[int, str]

    @property
    def n_stages(self) -> int:
        return len(self.stages)


class RolloutPolicy:
    """Strategy for staging a package across a fleet."""

    #: Registry key of the policy.
    name: str = "abstract"
    #: Whether :meth:`user_cohort` confines users to their cohort's devices.
    routes_users: bool = False

    def plan(self, device_ids: Sequence[int], rng) -> RolloutPlan:
        raise NotImplementedError  # repro: noqa[repro-errors] abstract protocol method

    def user_cohort(self, user_id: int) -> Optional[str]:
        """Cohort a user's requests must stay inside (``None`` = any)."""
        return None

    def describe(self) -> str:
        return self.name


class AllAtOnceRollout(RolloutPolicy):
    """Deploy to every device in one stage — the pre-rollout behaviour."""

    name = "all-at-once"

    def plan(self, device_ids: Sequence[int], rng) -> RolloutPlan:
        ids = [int(d) for d in device_ids]
        return RolloutPlan(stages=[ids], cohorts={d: "fleet" for d in ids})


class StagedRollout(RolloutPolicy):
    """Canary fractions: widen the deployment stage by stage.

    ``fractions`` are cumulative shares of the fleet, strictly increasing in
    ``(0, 1]``; devices beyond the final fraction are labelled
    ``"held-back"`` and never deployed by this plan.
    """

    name = "staged"

    def __init__(self, fractions: Sequence[float] = (0.25, 1.0)) -> None:
        fractions = tuple(float(f) for f in fractions)
        if not fractions:
            raise ConfigurationError("staged rollout needs at least one fraction")
        previous = 0.0
        for fraction in fractions:
            if not previous < fraction <= 1.0:
                raise ConfigurationError(
                    f"fractions must be strictly increasing in (0, 1], got {fractions}"
                )
            previous = fraction
        self.fractions = fractions

    def plan(self, device_ids: Sequence[int], rng) -> RolloutPlan:
        ids = [int(d) for d in device_ids]
        stages: List[List[int]] = []
        cohorts: Dict[int, str] = {}
        already = 0
        for stage_index, fraction in enumerate(self.fractions):
            upto = max(math.ceil(fraction * len(ids)), already)
            stage = ids[already:upto]
            stages.append(stage)
            for device_id in stage:
                cohorts[device_id] = f"stage-{stage_index}"
            already = upto
        for device_id in ids[already:]:
            cohorts[device_id] = "held-back"
        return RolloutPlan(stages=stages, cohorts=cohorts)


class ABRollout(RolloutPolicy):
    """A/B test: a treatment arm gets the package, control keeps running.

    Device arms are drawn (seeded) at plan time; *user* arms come from a
    salted hash, so each user deterministically lands in ``"treatment"`` or
    ``"control"`` and the serving client keeps their requests inside that
    arm's devices.  Use on a fleet that is already serving a baseline
    package — the control arm is never redeployed by this plan.
    """

    name = "ab"
    routes_users = True

    def __init__(self, treatment_fraction: float = 0.5) -> None:
        if not 0.0 < treatment_fraction < 1.0:
            raise ConfigurationError(
                f"treatment_fraction must be in (0, 1), got {treatment_fraction}"
            )
        self.treatment_fraction = float(treatment_fraction)
        self._salt: Optional[np.uint64] = None

    def plan(self, device_ids: Sequence[int], rng) -> RolloutPlan:
        ids = [int(d) for d in device_ids]
        if len(ids) < 2:
            raise ConfigurationError("an A/B rollout needs at least two devices")
        n_treatment = min(
            max(math.ceil(self.treatment_fraction * len(ids)), 1), len(ids) - 1
        )
        order = [ids[i] for i in rng.permutation(len(ids))]
        treatment = sorted(order[:n_treatment])
        cohorts = {
            device_id: ("treatment" if device_id in set(treatment) else "control")
            for device_id in ids
        }
        self._salt = np.uint64(rng.integers(0, 2**63 - 1, dtype=np.int64))
        return RolloutPlan(stages=[treatment], cohorts=cohorts)

    def user_cohort(self, user_id: int) -> str:
        if self._salt is None:
            raise ServingError("ABRollout.user_cohort called before plan()")
        hashed = int(splitmix64(np.asarray([user_id]), self._salt)[0])
        share = (hashed % 2**53) / 2**53
        return "treatment" if share < self.treatment_fraction else "control"


@dataclass
class ActiveRollout:
    """A rollout in progress on a coordinator."""

    policy: RolloutPolicy
    plan: RolloutPlan
    package: object
    next_stage: int = 1

    @property
    def complete(self) -> bool:
        return self.next_stage >= self.plan.n_stages

    @property
    def routes_users(self) -> bool:
        return self.policy.routes_users


# ---------------------------------------------------------------------- #
@dataclass
class CohortReport:
    """One cohort's share of a rollout: devices, accuracy, latency."""

    cohort: str
    device_ids: List[int]
    n_deployed: int
    accuracy: Optional[float] = None
    requests: int = 0
    mean_latency_seconds: float = 0.0
    p99_latency_seconds: float = 0.0


@dataclass
class RolloutReport:
    """Per-cohort comparison across a (possibly still running) rollout."""

    policy: str
    per_cohort: Dict[str, CohortReport] = field(default_factory=dict)

    def to_text(self) -> str:
        lines = [
            f"Rollout report ({self.policy})",
            f"{'cohort':>12}{'devices':>9}{'deployed':>10}{'accuracy':>10}"
            f"{'requests':>10}{'mean ms':>9}{'p99 ms':>9}",
        ]
        for cohort in sorted(self.per_cohort):
            row = self.per_cohort[cohort]
            accuracy = f"{row.accuracy:.4f}" if row.accuracy is not None else "-"
            lines.append(
                f"{cohort:>12}{len(row.device_ids):>9}{row.n_deployed:>10}"
                f"{accuracy:>10}{row.requests:>10}"
                f"{row.mean_latency_seconds * 1e3:>9.2f}"
                f"{row.p99_latency_seconds * 1e3:>9.2f}"
            )
        return "\n".join(lines)


#: CLI/config name → rollout policy class.
ROLLOUT_POLICIES: Dict[str, Type[RolloutPolicy]] = {
    AllAtOnceRollout.name: AllAtOnceRollout,
    StagedRollout.name: StagedRollout,
    ABRollout.name: ABRollout,
}


def make_rollout_policy(policy: Union[str, RolloutPolicy]) -> RolloutPolicy:
    """Resolve a rollout policy from a name or an instance."""
    if isinstance(policy, RolloutPolicy):
        return policy
    try:
        return ROLLOUT_POLICIES[policy]()
    except KeyError:
        raise ConfigurationError(
            f"unknown rollout policy {policy!r}; "
            f"expected one of {sorted(ROLLOUT_POLICIES)}"
        ) from None
