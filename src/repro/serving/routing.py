"""Pluggable routing policies for the event-loop serving scheduler.

A :class:`RoutingPolicy` decides which device lane each request lands on.
Three implementations ship with the library:

* :class:`HashRouting` (``"hash"``) — the fleet's historical behaviour: a
  salted splitmix64 hash of the user id, so a user's data always lands on
  the same device (the MAGNETO privacy model requires per-user stickiness);
* :class:`LeastLoadedRouting` (``"least-loaded"``) — each request goes to
  the lane with the smallest current load estimate, trading per-user
  stickiness for tail latency under skewed (Zipf) populations;
* :class:`PowerOfTwoRouting` (``"p2c"``) — two independent hash candidates
  per user, the less-loaded one wins: near-least-loaded balance while each
  user only ever touches two devices.

Load is the scheduler's estimate ``queued_requests + backlog_seconds x
observed_service_rate`` (see ``EventLoopScheduler.lane_loads``), so policies
stay correct both when a whole stream is submitted before draining and when
the caller drains tick by tick.  The balancing policies refresh that
estimate *per arrival-time segment* of a submission (plus the assignments
they have already made within the call), so a multi-tick batch balances
against the backlog as of each tick's arrival instead of a stale snapshot
taken at the first request's arrival.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Type, Union

import numpy as np

from repro.exceptions import RoutingError
from repro.utils.hashing import splitmix64

__all__ = [
    "RoutingPolicy",
    "HashRouting",
    "RegionalRouting",
    "LeastLoadedRouting",
    "PowerOfTwoRouting",
    "ROUTING_POLICIES",
    "make_routing_policy",
    "splitmix64",
]


def _draw_salt(rng) -> np.uint64:
    return np.uint64(rng.integers(0, 2**63 - 1, dtype=np.int64))


def _arrival_segments(requests) -> tuple:
    """``(arrivals, bounds)``: runs of equal arrival time in a submission.

    ``bounds`` holds segment edges ``[0, ..., len(requests)]``; the balancing
    policies refresh their load estimate at each segment's arrival so
    multi-tick submissions never balance against a stale backlog snapshot.
    """
    arrivals = np.fromiter(
        (r.arrival_seconds for r in requests), dtype=np.float64, count=len(requests)
    )
    bounds = [0, *(np.flatnonzero(np.diff(arrivals)) + 1).tolist(), len(requests)]
    return arrivals, bounds


class RoutingPolicy:
    """Strategy deciding the device lane of each submitted request.

    Subclasses implement :meth:`assign_batch`; :meth:`bind` is called once by
    the scheduler with the lane count and the routing seed before any
    assignment happens.
    """

    #: Registry key and CLI name of the policy.
    name: str = "abstract"

    def bind(self, n_lanes: int, rng) -> None:
        self._n_lanes = int(n_lanes)

    def assign_batch(
        self,
        requests: Sequence,
        user_ids: np.ndarray,
        scheduler,
        lanes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Lane index for every request (``lanes`` restricts the candidates).

        ``lanes``, when given, is the subset of lane positions this batch may
        use — the hook rollout cohorts use to confine users to their arm.
        """
        raise NotImplementedError  # repro: noqa[repro-errors] abstract protocol method

    def describe(self) -> str:
        return self.name


class HashRouting(RoutingPolicy):
    """Seeded user-id hash sharding — sticky, stateless, fully vectorised.

    When routing is restricted to a lane subset (mid-rollout, or within an
    A/B cohort), each user's *full-fleet* placement is still preferred:
    only users whose preferred lane is outside the subset are remapped
    (deterministically) within it.  Placement is therefore stable across a
    staged rollout's growth and identical to plain hash sharding once every
    lane is available again.
    """

    name = "hash"

    def __init__(self, *, salt: Optional[np.uint64] = None) -> None:
        self._fixed_salt = salt

    def bind(self, n_lanes: int, rng) -> None:
        super().bind(n_lanes, rng)
        self._salt = self._fixed_salt if self._fixed_salt is not None else _draw_salt(rng)

    def assign_batch(self, requests, user_ids, scheduler, lanes=None):
        hashed = splitmix64(user_ids, self._salt)
        preferred = (hashed % np.uint64(self._n_lanes)).astype(np.int64)
        if lanes is None:
            return preferred
        lanes = np.asarray(lanes, dtype=np.int64)
        fallback = lanes[(hashed % np.uint64(lanes.size)).astype(np.int64)]
        return np.where(np.isin(preferred, lanes), preferred, fallback)


class RegionalRouting(RoutingPolicy):  # repro: noqa[repro-registry] needs a fleet, constructed explicitly
    """Hash routing through a hierarchical fleet's ``device → lane`` map.

    Users are hashed to a *device* exactly as :class:`HashRouting` hashes
    them to a lane on a flat fleet (same salt draw, same modulus over the
    device count), then the fleet's lane map folds pooled devices onto their
    region's template lane while drifted devices keep their own lane.  A
    user therefore lands on the same logical device whether the fleet is
    flat or hierarchical — only the amount of physical state behind that
    device differs.

    Not in :data:`ROUTING_POLICIES`: it needs a fleet, so
    :func:`repro.serving.client.serve` constructs it when handed a
    :class:`~repro.fleet.coordinator.HierarchicalFleetCoordinator`.
    """

    name = "regional"

    def __init__(self, fleet) -> None:
        # Duck-typed: anything with lane_map() → int64 array of lane positions
        # indexed by device id (avoids importing repro.fleet here).
        self._fleet = fleet

    def bind(self, n_lanes: int, rng) -> None:
        super().bind(n_lanes, rng)
        self._salt = _draw_salt(rng)  # same first draw as HashRouting.bind
        self._lane_map = np.asarray(self._fleet.lane_map(), dtype=np.int64)

    def assign_batch(self, requests, user_ids, scheduler, lanes=None):
        hashed = splitmix64(user_ids, self._salt)
        device = (hashed % np.uint64(self._lane_map.size)).astype(np.int64)
        preferred = self._lane_map[device]
        if lanes is None:
            return preferred
        lanes = np.asarray(lanes, dtype=np.int64)
        fallback = lanes[(hashed % np.uint64(lanes.size)).astype(np.int64)]
        return np.where(np.isin(preferred, lanes), preferred, fallback)


class LeastLoadedRouting(RoutingPolicy):
    """Route every request to the lane with the smallest load estimate.

    The estimate is refreshed per request as the batch is assigned (each
    assignment adds one request to the chosen lane — loads are counted in
    requests, matching ``EventLoopScheduler.lane_loads``), so a burst
    spreads evenly instead of dog-piling the lane that was idle at batch
    start, and re-queried from the scheduler at every arrival-time segment
    so multi-tick submissions see the backlog decay between ticks.  Not
    sticky per user — a deliberate trade of the MAGNETO per-user placement
    for tail latency.
    """

    name = "least-loaded"

    def assign_batch(self, requests, user_ids, scheduler, lanes=None):
        out = np.empty(len(requests), dtype=np.int64)
        if not len(requests):
            return out
        arrivals, bounds = _arrival_segments(requests)
        if lanes is not None:
            lanes = np.asarray(lanes, dtype=np.int64)
        # Assignments already made in this call, layered over each segment's
        # fresh scheduler estimate (the scheduler only learns of them after
        # assign_batch returns).
        assigned = np.zeros(self._n_lanes)
        for start, end in zip(bounds, bounds[1:]):
            loads = scheduler.lane_loads(float(arrivals[start])) + assigned
            if lanes is None:
                for index in range(start, end):
                    lane = int(np.argmin(loads))
                    out[index] = lane
                    loads[lane] += 1.0
                    assigned[lane] += 1.0
            else:
                for index in range(start, end):
                    lane = int(lanes[int(np.argmin(loads[lanes]))])
                    out[index] = lane
                    loads[lane] += 1.0
                    assigned[lane] += 1.0
        return out


class PowerOfTwoRouting(RoutingPolicy):
    """Power-of-two-choices: two hash candidates per user, less loaded wins."""

    name = "p2c"

    def bind(self, n_lanes: int, rng) -> None:
        super().bind(n_lanes, rng)
        self._salt_a = _draw_salt(rng)
        self._salt_b = _draw_salt(rng)

    def candidates(self, user_ids) -> tuple:
        """Each user's two hash-candidate lanes ``(first, second)``.

        The same salted pair :meth:`assign_batch` chooses between — the
        hedging controller uses it to find a request's p2c *sibling* (the
        candidate the original assignment passed over) without re-deriving
        the policy's salts.
        """
        ids = np.asarray(user_ids, dtype=np.int64)
        n = np.uint64(self._n_lanes)
        first = (splitmix64(ids, self._salt_a) % n).astype(np.int64)
        second = (splitmix64(ids, self._salt_b) % n).astype(np.int64)
        return first, second

    def assign_batch(self, requests, user_ids, scheduler, lanes=None):
        out = np.empty(len(requests), dtype=np.int64)
        if not len(requests):
            return out
        pool = np.arange(self._n_lanes) if lanes is None else np.asarray(lanes, np.int64)
        first = pool[(splitmix64(user_ids, self._salt_a) % np.uint64(pool.size)).astype(np.int64)]
        second = pool[(splitmix64(user_ids, self._salt_b) % np.uint64(pool.size)).astype(np.int64)]
        arrivals, bounds = _arrival_segments(requests)
        assigned = np.zeros(self._n_lanes)
        for start, end in zip(bounds, bounds[1:]):
            # Fresh estimate per arrival segment, plus this call's own picks.
            loads = scheduler.lane_loads(float(arrivals[start])) + assigned
            for index in range(start, end):
                a, b = int(first[index]), int(second[index])
                lane = a if loads[a] <= loads[b] else b
                out[index] = lane
                loads[lane] += 1.0
                assigned[lane] += 1.0
        return out


#: CLI/config name → policy class.
ROUTING_POLICIES: Dict[str, Type[RoutingPolicy]] = {
    HashRouting.name: HashRouting,
    LeastLoadedRouting.name: LeastLoadedRouting,
    PowerOfTwoRouting.name: PowerOfTwoRouting,
}


def make_routing_policy(
    policy: Union[str, RoutingPolicy, None],
) -> RoutingPolicy:
    """Resolve a policy instance from a name, an instance or ``None``.

    ``None`` means the default (:class:`HashRouting` — the fleet's historical
    behaviour).  Unknown names raise a typed
    :class:`~repro.exceptions.RoutingError`.
    """
    if policy is None:
        return HashRouting()
    if isinstance(policy, RoutingPolicy):
        return policy
    try:
        return ROUTING_POLICIES[policy]()
    except KeyError:
        raise RoutingError(
            f"unknown routing policy {policy!r}; "
            f"expected one of {sorted(ROUTING_POLICIES)}"
        ) from None
