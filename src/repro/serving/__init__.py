"""Unified serving API: one request/response protocol for every layer.

PILOTE is ultimately a *serving* story — incremental HAR models answering
user traffic on extreme-edge hardware — and this package is its single
front door:

* **protocol** (:mod:`repro.serving.protocol`) — typed
  :class:`PredictRequest` / :class:`PredictResponse` with per-request
  deadlines and metadata, :class:`PendingResult` futures completed on the
  simulated clock, and :class:`~repro.exceptions.ServingError` failures;
* **client** (:mod:`repro.serving.client`) — :func:`serve` builds a
  :class:`ServingClient` from a bare learner, a ``MagnetoPlatform``, an
  ``EdgeDevice`` or a whole ``FleetCoordinator``; every layer answers the
  same API;
* **scheduler** (:mod:`repro.serving.scheduler`) — an event-loop
  :class:`EventLoopScheduler` over the fleet's simulated ``DeviceStats``
  clock, superseding the legacy router's synchronous per-tick drain, with a
  pluggable queue order (:data:`SCHEDULING_ORDERS`): ``"fifo"`` arrival
  order or ``"edf"`` earliest-deadline-first, plus deadline admission
  control and per-device SLO accounting
  (``DeviceStats.deadline_misses``, ``RoutingReport.slo_attainment``);
* **executor** (:mod:`repro.serving.executor`) — pluggable batch execution
  behind the scheduler (:data:`EXECUTORS`): :class:`SerialExecutor`
  (inline on the simulated clock, the default and bit-exact historical
  behaviour), :class:`ThreadExecutor` (shared-memory pool for I/O-shaped
  lanes) and :class:`ProcessExecutor` (persistent worker OS processes, one
  per lane group, serving shipped
  :class:`~repro.edge.inference.EngineStateSnapshot` replicas keyed by
  ``PILOTE.state_version``; futures complete from an IPC result queue, and
  a dead worker fails its batches with a typed
  :class:`~repro.exceptions.WorkerDiedError` before being respawned).
  Concurrent executors report *measured* wall-clock latency
  (``DeviceStats.clock == "wall"``) instead of the modeled simulated
  clock;
* **routing** (:mod:`repro.serving.routing`) — pluggable
  :class:`RoutingPolicy` implementations (seeded ``"hash"``,
  ``"least-loaded"``, power-of-two-choices ``"p2c"``), selectable per
  client and from the CLI;
* **rollout** (:mod:`repro.serving.rollout`) — :class:`RolloutPolicy`
  staging on ``FleetCoordinator.deploy`` (all-at-once, staged canary
  fractions, A/B cohorts by user hash) with per-cohort accuracy/latency
  reports.

``benchmarks/bench_serving.py`` gates the scheduler's per-request overhead
against the legacy router and the p99 latency win of ``least-loaded`` over
``hash`` under Zipf-skewed traffic; ``benchmarks/bench_deadlines.py`` gates
that EDF answers strictly more requests within deadline than FIFO on an
overloaded Zipf workload at no extra per-request overhead;
``benchmarks/bench_workers.py`` gates the serial executor's bit-exactness
with the legacy path and the process executor's real wall-clock speedup on
multi-core hardware.
"""

from repro.exceptions import (
    ClientClosedError,
    DeadlineExceededError,
    ExecutorError,
    InvalidRequestError,
    RequestCancelledError,
    RequestSheddedError,
    RoutingError,
    ServingError,
    WireProtocolError,
    WorkerDiedError,
)
from repro.serving.executor import (
    EXECUTORS,
    Executor,
    LaneResult,
    LaneTask,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.serving.client import (
    IN_PROCESS_PROFILE,
    LocalServingDevice,
    ServingClient,
    serve,
)
from repro.serving.protocol import (
    PendingResult,
    Prediction,
    PredictRequest,
    PredictResponse,
)
from repro.serving.rollout import (
    ABRollout,
    ActiveRollout,
    AllAtOnceRollout,
    CohortReport,
    ROLLOUT_POLICIES,
    RolloutPlan,
    RolloutPolicy,
    RolloutReport,
    StagedRollout,
    make_rollout_policy,
)
from repro.serving.routing import (
    HashRouting,
    LeastLoadedRouting,
    PowerOfTwoRouting,
    ROUTING_POLICIES,
    RegionalRouting,
    RoutingPolicy,
    make_routing_policy,
)
from repro.serving.scheduler import SCHEDULING_ORDERS, EventLoopScheduler

__all__ = [
    "serve",
    "ServingClient",
    "SCHEDULING_ORDERS",
    "EXECUTORS",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "LaneTask",
    "LaneResult",
    "make_executor",
    "PredictRequest",
    "PredictResponse",
    "Prediction",
    "PendingResult",
    "EventLoopScheduler",
    "RoutingPolicy",
    "HashRouting",
    "RegionalRouting",
    "LeastLoadedRouting",
    "PowerOfTwoRouting",
    "ROUTING_POLICIES",
    "make_routing_policy",
    "RolloutPolicy",
    "AllAtOnceRollout",
    "StagedRollout",
    "ABRollout",
    "RolloutPlan",
    "ActiveRollout",
    "CohortReport",
    "RolloutReport",
    "ROLLOUT_POLICIES",
    "make_rollout_policy",
    "LocalServingDevice",
    "IN_PROCESS_PROFILE",
    "ServingError",
    "InvalidRequestError",
    "DeadlineExceededError",
    "RoutingError",
    "ExecutorError",
    "WorkerDiedError",
    "ClientClosedError",
    "WireProtocolError",
    "RequestSheddedError",
    "RequestCancelledError",
]
