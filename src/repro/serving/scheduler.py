"""Event-loop request scheduler over the simulated ``DeviceStats`` clock.

This replaces the legacy :class:`~repro.fleet.router.Router`'s synchronous
per-tick drain: instead of routing and executing one tick at a time, requests
are *submitted* (each immediately receives a
:class:`~repro.serving.protocol.PendingResult` future) and a heap-ordered
event loop later drains the per-device queues in simulated-clock order.

Timing follows the fleet's established model: each per-device batch is timed
with the wall clock, converted to device-seconds through the profile's
``relative_compute``, and devices drain *in parallel* in simulated time.  The
scheduler reuses the fleet's :class:`~repro.fleet.router.DeviceStats` /
:class:`~repro.fleet.router.RoutingReport` types, and additionally records
per-request latencies so reports can answer percentile (p99) questions.

Design notes for the hot path (the per-request overhead is gated against the
legacy router in ``benchmarks/bench_serving.py``):

* assignment is vectorised per submitted batch (one hash over all user ids
  for the default policy), and requests are grouped into per-lane batches
  with numpy, not per-request branching;
* requests sharing a device and an arrival time coalesce into one queue
  entry served by a single engine call — the same batching the legacy
  router performed per tick;
* completion state lives on the *batch*: futures are three-slot views
  ``(request, batch, index)``, so finishing a batch is O(1) in the number
  of requests, and per-request class-id slices materialise lazily on
  ``result()``.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import DeadlineExceededError, RoutingError, ServingError
from repro.fleet.router import DeviceStats, RoutingReport
from repro.serving.protocol import PendingResult, PredictResponse
from repro.serving.routing import RoutingPolicy, make_routing_policy
from repro.utils.rng import RandomState, resolve_rng

__all__ = ["EventLoopScheduler"]

#: Most-recent per-request latencies kept per device for percentile views.
#: Bounds long-lived clients (the legacy path kept no per-request history);
#: a few MB per device at the cap.  Trimming waits until 2x the cap so the
#: compaction cost amortises to O(1) per request.
LATENCY_HISTORY_CAP = 100_000


class _Batch:
    """One queue entry: co-arriving requests bound for the same lane.

    Owns the shared completion state — the engine output matrix, the device
    that answered and the simulated completion time — which the per-request
    futures view through their index.
    """

    __slots__ = (
        "requests", "futures", "arrival", "scheduler",
        "outputs", "device_id", "completion", "finished",
        "error", "errors", "watchers", "_offsets",
    )

    def __init__(self, arrival: float, scheduler: "EventLoopScheduler") -> None:
        self.requests: List = []
        self.futures: List["_BatchFuture"] = []
        self.arrival = arrival
        self.scheduler = scheduler
        self.outputs: Optional[np.ndarray] = None
        self.device_id = -1
        self.completion = 0.0
        self.finished = False
        self.error: Optional[BaseException] = None   # batch-wide failure
        self.errors: Optional[Dict[int, BaseException]] = None  # per request
        self.watchers: Optional[list] = None  # (future, callback) pairs
        self._offsets: Optional[np.ndarray] = None

    def offsets(self) -> np.ndarray:
        """Lazy cumulative window offsets for per-request output slices."""
        if self._offsets is None:
            counts = [r.features.shape[0] for r in self.requests]
            self._offsets = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))
        return self._offsets

    def finish(
        self, outputs: Optional[np.ndarray], device_id: int, completion: float,
        error: Optional[BaseException] = None,
    ) -> None:
        if self.finished:
            raise ServingError("request batch completed twice (double-answered)")
        self.outputs = outputs
        self.device_id = device_id
        self.completion = completion
        self.error = error
        self.finished = True
        if self.watchers:
            for future, callback in self.watchers:
                callback(future)
            self.watchers = None

    def fail_future(self, future: "_BatchFuture", error: BaseException) -> None:
        """Record a per-request failure (deadline expiry) before execution.

        The future is parked on a unique *negative* index so surviving
        futures can be re-indexed onto the compacted batch without their new
        indices colliding with recorded error slots.
        """
        if self.errors is None:
            self.errors = {}
        future._index = -1 - len(self.errors)
        self.errors[future._index] = error
        if self.watchers:
            still_waiting = []
            for watcher, callback in self.watchers:
                if watcher is future:
                    callback(watcher)
                else:
                    still_waiting.append((watcher, callback))
            self.watchers = still_waiting or None


def _queue_batch(queue: Deque[_Batch], arrival: float, scheduler) -> _Batch:
    """The batch to enqueue into, keeping the lane ordered by arrival.

    Common case (non-decreasing arrivals, as every open-loop generator
    emits): coalesce with or append after the tail — one comparison.  An
    out-of-order submission walks back from the tail so earlier arrivals
    are still served first and never head-of-line blocked (or spuriously
    deadline-expired) behind later ones.
    """
    if not queue or queue[-1].arrival <= arrival:
        if queue and queue[-1].arrival == arrival:
            return queue[-1]
        batch = _Batch(arrival, scheduler)
        queue.append(batch)
        return batch
    index = len(queue) - 1
    while index > 0 and queue[index - 1].arrival > arrival:
        index -= 1
    if index > 0 and queue[index - 1].arrival == arrival:
        return queue[index - 1]
    batch = _Batch(arrival, scheduler)
    queue.insert(index, batch)
    return batch


class _BatchFuture(PendingResult):
    """Three-slot future viewing its batch's shared completion state."""

    __slots__ = ("_batch", "_index")

    def __init__(self, request, batch: _Batch, index: int) -> None:
        self.request = request
        self._batch = batch
        self._index = index

    # -- PendingResult interface ---------------------------------------- #
    def done(self) -> bool:
        batch = self._batch
        return batch.finished or (
            batch.errors is not None and self._index in batch.errors
        )

    def add_done_callback(self, callback) -> None:
        if self.done():
            callback(self)
            return
        batch = self._batch
        if batch.watchers is None:
            batch.watchers = []
        batch.watchers.append((self, callback))

    def exception(self) -> Optional[BaseException]:
        self._ensure_done()
        return self._my_error()

    def result(self) -> PredictResponse:
        self._ensure_done()
        error = self._my_error()
        if error is not None:
            raise error
        batch = self._batch
        offsets = batch.offsets()
        class_ids = batch.outputs[offsets[self._index]:offsets[self._index + 1]]
        return PredictResponse(
            self.request, class_ids, batch.device_id, batch.completion
        )

    # ------------------------------------------------------------------ #
    def _my_error(self) -> Optional[BaseException]:
        batch = self._batch
        if batch.errors is not None:
            error = batch.errors.get(self._index)
            if error is not None:
                return error
        return batch.error

    def _ensure_done(self) -> None:
        if not self.done():
            self._batch.scheduler.drain()
        if not self.done():
            raise ServingError(
                "request is still pending; drain() the serving client "
                "(or submit through a client, which drains on result())"
            )


class EventLoopScheduler:
    """Future-completing scheduler over a live list of fleet devices.

    Parameters
    ----------
    devices:
        Device-like targets exposing ``infer(windows)``, ``device_id`` and
        ``profile`` (``FleetDevice`` or the client's local adapters).  When
        given a list — e.g. ``FleetCoordinator.devices`` — the scheduler
        keeps a *live view*, so ``replace_device`` takes effect for requests
        already queued; the device *count* must stay fixed.
    policy:
        A :class:`~repro.serving.routing.RoutingPolicy`, a policy name, or
        ``None`` for the default seeded hash.
    seed:
        Seeds the routing policy (hash salts); same seed, same assignment.
    """

    def __init__(
        self,
        devices: Sequence,
        policy: Optional[RoutingPolicy] = None,
        *,
        seed: RandomState = None,
    ) -> None:
        if not devices:
            raise RoutingError("the scheduler needs at least one device")
        self._devices = devices if isinstance(devices, list) else list(devices)
        self._n_lanes = len(self._devices)
        self.policy = make_routing_policy(policy)
        self.policy.bind(self._n_lanes, resolve_rng(seed))
        self._queues: List[Deque[_Batch]] = [deque() for _ in range(self._n_lanes)]
        self._pending_counts = np.zeros(self._n_lanes, dtype=np.float64)
        self._available_at = np.zeros(self._n_lanes, dtype=np.float64)
        # Per-lane service history (survives device replacement, unlike the
        # per-device stats rows) — feeds the balancing policies' rate term.
        self._lane_served = np.zeros(self._n_lanes, dtype=np.float64)
        self._lane_busy = np.zeros(self._n_lanes, dtype=np.float64)
        self._stats: Dict[int, DeviceStats] = {
            d.device_id: DeviceStats(device_id=d.device_id, profile=d.profile.name)
            for d in self._devices
        }
        self._total_requests = 0
        self._total_windows = 0
        self._total_expired = 0
        self._event_counter = 0

    # ------------------------------------------------------------------ #
    @property
    def devices(self) -> Sequence:
        """The live device list behind the lanes."""
        return self._devices

    @property
    def n_devices(self) -> int:
        return len(self._devices)

    @property
    def pending_requests(self) -> int:
        """Requests submitted but not yet answered."""
        return sum(len(b.requests) for q in self._queues for b in q)

    def lane_loads(self, now: float) -> np.ndarray:
        """Per-lane load estimate (in requests) for the balancing policies.

        Queued-but-unserved requests, plus each lane's simulated backlog
        beyond ``now`` converted to requests through the lane's observed
        service rate (requests per simulated busy second; kept per *lane*,
        so a device replacement does not reset it).  Before any service
        history exists the backlog term is zero and queued requests alone
        drive the decision.
        """
        backlog = np.maximum(self._available_at - now, 0.0)
        if backlog.any():
            rates = np.divide(
                self._lane_served,
                self._lane_busy,
                out=np.zeros(self._n_lanes),
                where=self._lane_busy > 0,
            )
            return self._pending_counts + backlog * rates
        return self._pending_counts.copy()

    # ------------------------------------------------------------------ #
    def replace_device(self, device_id: int, replacement) -> None:
        """Swap a (crashed) device; its queued requests go to the replacement.

        In-flight entries live on the lane, not the device object, so nothing
        is dropped or double-answered: the replacement simply serves the
        lane's queue from its next event on.
        """
        for position, device in enumerate(self._devices):
            if device.device_id == device_id:
                self._devices[position] = replacement
                return
        raise RoutingError(f"no device with id {device_id} behind this scheduler")

    # ------------------------------------------------------------------ #
    def submit(self, request) -> PendingResult:
        """Queue one request; returns its future."""
        return self.submit_many([request])[0]

    def submit_many(self, requests: Sequence) -> List[PendingResult]:
        """Queue a batch of requests (vectorised routing), one future each.

        Requests assigned to the same device with the same arrival time are
        coalesced into one engine call at drain time, which is what keeps the
        per-request overhead at the legacy router's level.
        """
        if not requests:
            return []
        if len(self._devices) != self._n_lanes:
            raise RoutingError(
                f"the fleet changed size ({self._n_lanes} -> {len(self._devices)}); "
                "build a new scheduler — the device count is fixed at construction"
            )
        if self._n_lanes == 1:
            # Routing is a no-op with a single lane; skip the policy and the
            # per-request id extraction entirely (the serve(learner) /
            # serve(platform) hot path).
            return self._enqueue_single_lane(requests)
        user_ids = np.fromiter(
            (r.user_id for r in requests), dtype=np.int64, count=len(requests)
        )
        assignment = self.policy.assign_batch(requests, user_ids, self)
        return self._enqueue(requests, assignment)

    def _enqueue_single_lane(self, requests: Sequence) -> List[PendingResult]:
        if not isinstance(requests, list):
            requests = list(requests)
        arrivals = np.fromiter(
            (r.arrival_seconds for r in requests),
            dtype=np.float64,
            count=len(requests),
        )
        boundaries = np.flatnonzero(np.diff(arrivals)) + 1
        queue = self._queues[0]
        futures: List[PendingResult] = []
        start = 0
        for end in [*boundaries.tolist(), len(requests)]:
            segment = requests[start:end]
            arrival = float(arrivals[start])
            batch = _queue_batch(queue, arrival, self)
            base = len(batch.requests)
            segment_futures = [
                _BatchFuture(request, batch, base + offset)
                for offset, request in enumerate(segment)
            ]
            batch.requests.extend(segment)
            batch.futures.extend(segment_futures)
            futures.extend(segment_futures)
            start = end
        self._pending_counts[0] += len(requests)
        self._total_requests += len(requests)
        return futures

    def submit_assigned(self, requests: Sequence, assignment: np.ndarray) -> List[PendingResult]:
        """Queue requests with a precomputed lane assignment (cohort routing)."""
        if not requests:
            return []
        if len(self._devices) != self._n_lanes:
            raise RoutingError(
                f"the fleet changed size ({self._n_lanes} -> {len(self._devices)}); "
                "build a new scheduler — the device count is fixed at construction"
            )
        return self._enqueue(requests, np.asarray(assignment, dtype=np.int64))

    def _enqueue(self, requests: Sequence, assignment: np.ndarray) -> List[PendingResult]:
        futures: List[Optional[PendingResult]] = [None] * len(requests)
        arrivals = np.fromiter(
            (r.arrival_seconds for r in requests),
            dtype=np.float64,
            count=len(requests),
        )
        for lane in range(self._n_lanes):
            lane_indices = np.flatnonzero(assignment == lane)
            if lane_indices.size == 0:
                continue
            # Split the lane's share into runs of equal arrival time (one
            # run per tick in the common open-loop case).
            lane_arrivals = arrivals[lane_indices]
            boundaries = np.flatnonzero(np.diff(lane_arrivals)) + 1
            queue = self._queues[lane]
            for segment in np.split(lane_indices, boundaries):
                arrival = float(arrivals[segment[0]])
                batch = _queue_batch(queue, arrival, self)
                base = len(batch.requests)
                segment_requests = [requests[i] for i in segment]
                segment_futures = [
                    _BatchFuture(request, batch, base + offset)
                    for offset, request in enumerate(segment_requests)
                ]
                batch.requests.extend(segment_requests)
                batch.futures.extend(segment_futures)
                for index, future in zip(segment.tolist(), segment_futures):
                    futures[index] = future
            self._pending_counts[lane] += lane_indices.size
        self._total_requests += len(requests)
        return futures  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    def drain(self) -> int:
        """Run the event loop until every queued request is resolved.

        Lanes are processed in simulated-clock order: the heap always pops
        the lane whose next batch starts earliest (``max(available_at, batch
        arrival)``), mirroring devices draining their queues in parallel.
        Returns the number of requests resolved — answered *or* expired
        past their deadline (``report().total_expired`` separates the two).
        """
        heap = []
        for position, queue in enumerate(self._queues):
            if queue:
                self._event_counter += 1
                begin = max(self._available_at[position], queue[0].arrival)
                heap.append((begin, self._event_counter, position))
        heapq.heapify(heap)
        answered = 0
        while heap:
            _, _, position = heapq.heappop(heap)
            answered += self._execute_next(position)
            queue = self._queues[position]
            if queue:
                self._event_counter += 1
                begin = max(self._available_at[position], queue[0].arrival)
                heapq.heappush(heap, (begin, self._event_counter, position))
        return answered

    def _execute_next(self, position: int) -> int:
        """Serve one queued batch on the device currently holding the lane."""
        batch = self._queues[position].popleft()
        n_answered = len(batch.requests)
        self._pending_counts[position] -= n_answered
        device = self._devices[position]
        # setdefault: a replacement device (crash/restore) may carry a new
        # id; it inherits the lane but gets its own stats row.
        stats = self._stats.setdefault(
            device.device_id,
            DeviceStats(device_id=device.device_id, profile=device.profile.name),
        )
        arrival = batch.arrival
        begin = max(self._available_at[position], arrival)
        requests = batch.requests
        if any(
            getattr(request, "deadline_seconds", None) is not None
            for request in requests
        ):
            requests = self._expire(batch, begin)
            if not requests:
                return n_answered
        windows = (
            requests[0].features
            if len(requests) == 1
            else np.concatenate([r.features for r in requests], axis=0)
        )

        start = time.perf_counter()
        try:
            outputs = device.infer(windows)
        except Exception as error:  # typed errors travel through the futures
            batch.finish(None, device.device_id, begin, error=error)
            return n_answered
        wall = time.perf_counter() - start
        service = wall / device.profile.relative_compute
        completion = begin + service
        self._available_at[position] = completion
        stats.available_at = completion  # feeds RoutingReport.makespan_seconds

        n_windows = int(windows.shape[0])
        stats.requests += len(requests)
        stats.windows += n_windows
        stats.batches += 1
        stats.busy_seconds += service
        stats.wall_seconds += wall
        stats.max_queue_depth = max(
            stats.max_queue_depth,
            len(requests) + (1 if begin > arrival else 0),
        )
        self._lane_served[position] += len(requests)
        self._lane_busy[position] += service
        latency = completion - arrival
        stats.total_latency_seconds += latency * len(requests)
        latencies = stats.latencies
        latencies.extend([latency] * len(requests))
        if len(latencies) > 2 * LATENCY_HISTORY_CAP:
            del latencies[: len(latencies) - LATENCY_HISTORY_CAP]
        self._total_windows += n_windows
        batch.finish(outputs, device.device_id, completion)
        return n_answered

    def _expire(self, batch: _Batch, begin: float) -> List:
        """Fail queued requests whose deadline passed before service began.

        Kept requests are re-indexed so the batch's shared output offsets
        stay aligned with the surviving futures.
        """
        kept_requests, kept_futures = [], []
        for request, future in zip(batch.requests, batch.futures):
            deadline = getattr(request, "deadline_seconds", None)
            if deadline is not None and begin > deadline:
                batch.fail_future(
                    future,
                    DeadlineExceededError(
                        f"user {request.user_id}: service would start at "
                        f"{begin:.6f}s, past the deadline {deadline:.6f}s"
                    ),
                )
            else:
                kept_requests.append(request)
                kept_futures.append(future)
        for new_index, future in enumerate(kept_futures):
            future._index = new_index
        n_expired = len(batch.requests) - len(kept_requests)
        # Expired requests were never served: move them out of the served
        # totals so mean latency and per-device rows stay consistent.
        self._total_requests -= n_expired
        self._total_expired += n_expired
        batch.requests = kept_requests
        batch.futures = kept_futures
        return kept_requests

    # ------------------------------------------------------------------ #
    def report(self) -> RoutingReport:
        """Serving statistics so far (stats keep accumulating afterwards)."""
        return RoutingReport(
            per_device=dict(self._stats),
            total_requests=self._total_requests,
            total_windows=self._total_windows,
            total_expired=self._total_expired,
        )
