"""Event-loop request scheduler over the simulated ``DeviceStats`` clock.

This replaces the legacy :class:`~repro.fleet.router.Router`'s synchronous
per-tick drain: instead of routing and executing one tick at a time, requests
are *submitted* (each immediately receives a
:class:`~repro.serving.protocol.PendingResult` future) and a heap-ordered
event loop later drains the per-device queues in simulated-clock order.

Timing follows the fleet's established model: each per-device batch is timed
with the wall clock, converted to device-seconds through the profile's
``relative_compute``, and devices drain *in parallel* in simulated time.  The
scheduler reuses the fleet's :class:`~repro.fleet.router.DeviceStats` /
:class:`~repro.fleet.router.RoutingReport` types, and additionally records
per-request latencies so reports can answer percentile (p99) questions.

Queue order is a pluggable seam (``scheduling=``, one of
:data:`SCHEDULING_ORDERS`):

* ``"fifo"`` (default) — each lane serves its batches in arrival order, the
  behaviour of the legacy tick drain;
* ``"edf"`` — earliest-deadline-first: each lane serves the queued batch
  with the earliest deadline among those that have already arrived
  (deadline-less batches sort last and fall back to arrival order among
  themselves).  Under overload EDF answers strictly more requests within
  their deadlines than FIFO, which expires late-queued urgent requests
  behind relaxed ones (``benchmarks/bench_deadlines.py`` gates this).

Deadline semantics, end to end:

* a request whose deadline has already passed at *submit* time (the lane
  cannot possibly start serving it in time) is **rejected** by admission
  control: its future completes immediately with
  :class:`~repro.exceptions.DeadlineExceededError` and it never occupies
  queue space (counted in ``RoutingReport.total_rejected``, included in
  ``total_expired``);
* a queued request whose deadline passes before service *begins* is
  **expired** with the same error at drain time (``total_expired``);
* a request whose service began in time but *completed* late is still
  answered, with ``PredictResponse.deadline_missed`` set and the per-device
  ``DeviceStats.deadline_misses`` counter incremented;
* everything else is **served** within its deadline.
  ``RoutingReport.deadline_attainment`` / ``slo_attainment`` aggregate the
  breakdown.

Design notes for the hot path (the per-request overhead is gated against the
legacy router in ``benchmarks/bench_serving.py`` and
``benchmarks/bench_deadlines.py``):

* assignment is vectorised per submitted batch (one hash over all user ids
  for the default policy), and requests are grouped into per-lane batches
  with numpy, not per-request branching;
* requests sharing a device and an arrival time coalesce into one queue
  entry served by a single engine call — the same batching the legacy
  router performed per tick (under EDF, co-arriving requests additionally
  split by deadline so the queue order can discriminate; discrete deadline
  classes — see ``WorkloadSpec.deadline_multipliers`` — keep that split
  coarse and the engine batches large);
* completion state lives on the *batch*: futures are three-slot views
  ``(request, batch, index)``, so finishing a batch is O(1) in the number
  of requests, and per-request class-id slices materialise lazily on
  ``result()``.

Batch *execution* is a pluggable seam (``executor=``, see
:mod:`repro.serving.executor`): the scheduler prepares each lane's next
batch (queue pop, deadline expiry, window coalescing) and completes its
futures/stats, while the executor decides where the engine call runs —
inline on the simulated clock (:class:`~repro.serving.executor
.SerialExecutor`, the default and bit-exact historical behaviour), on a
thread pool, or on persistent worker processes whose results come back
over an IPC queue (:class:`~repro.serving.executor.ProcessExecutor`).
Concurrent executors drain in *rounds* — one batch per non-empty lane per
round, lanes in parallel — which preserves every per-lane ordering
guarantee (FIFO/EDF, expiry, admission) because lanes never share state;
their ``DeviceStats`` rows are labelled ``clock="wall"`` since the
measured elapsed time replaces the modeled device-seconds.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import (
    ConfigurationError,
    DeadlineExceededError,
    RequestCancelledError,
    RoutingError,
    ServingError,
)
from repro.fleet.router import DeviceStats, RoutingReport
from repro.serving.executor import Executor, LaneResult, LaneTask, make_executor
from repro.serving.protocol import PendingResult, PredictResponse
from repro.serving.routing import RoutingPolicy, make_routing_policy
from repro.utils.clock import perf_seconds
from repro.utils.rng import RandomState, resolve_rng

__all__ = ["EventLoopScheduler", "SCHEDULING_ORDERS"]

#: Queue orders understood by :class:`EventLoopScheduler` (and the
#: ``pilote fleet-sim --scheduling`` flag).
SCHEDULING_ORDERS = ("fifo", "edf")

#: Most-recent per-request latencies kept per device for percentile views.
#: Bounds long-lived clients (the legacy path kept no per-request history);
#: a few MB per device at the cap.  Trimming waits until 2x the cap so the
#: compaction cost amortises to O(1) per request.
LATENCY_HISTORY_CAP = 100_000


class _Batch:
    """One queue entry: co-arriving requests bound for the same lane.

    Owns the shared completion state — the engine output matrix, the device
    that answered and the simulated completion time — which the per-request
    futures view through their index.  ``deadline`` is the EDF sort key
    shared by every request in the batch (``None`` on FIFO lanes, where
    mixed-deadline requests coalesce by arrival alone).
    """

    __slots__ = (
        "requests", "futures", "arrival", "scheduler",
        "outputs", "device_id", "completion", "finished",
        "error", "errors", "watchers", "_offsets",
        "deadline", "has_deadlines", "lane", "n_cancelled",
    )

    def __init__(self, arrival: float, scheduler: "EventLoopScheduler") -> None:
        self.requests: List = []
        self.futures: List["_BatchFuture"] = []
        self.arrival = arrival
        self.scheduler = scheduler
        self.outputs: Optional[np.ndarray] = None
        self.device_id = -1
        self.completion = 0.0
        self.finished = False
        self.error: Optional[BaseException] = None   # batch-wide failure
        self.errors: Optional[Dict[int, BaseException]] = None  # per request
        self.watchers: Optional[list] = None  # (future, callback) pairs
        self._offsets: Optional[np.ndarray] = None
        self.deadline: Optional[float] = None  # shared EDF key, if any
        self.has_deadlines = False  # any request carries a deadline
        self.lane = -1  # queue position, set at enqueue (feeds lane_of)
        self.n_cancelled = 0  # futures flagged by cancel(), pending pop

    def offsets(self) -> np.ndarray:
        """Lazy cumulative window offsets for per-request output slices."""
        if self._offsets is None:
            counts = [r.features.shape[0] for r in self.requests]
            self._offsets = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))
        return self._offsets

    def finish(
        self, outputs: Optional[np.ndarray], device_id: int, completion: float,
        error: Optional[BaseException] = None,
    ) -> None:
        if self.finished:
            raise ServingError("request batch completed twice (double-answered)")
        self.outputs = outputs
        self.device_id = device_id
        self.completion = completion
        self.error = error
        self.finished = True
        if self.watchers:
            for future, callback in self.watchers:
                callback(future)
            self.watchers = None

    def fail_future(self, future: "_BatchFuture", error: BaseException) -> None:
        """Record a per-request failure (deadline expiry) before execution.

        The future is parked on a unique *negative* index so surviving
        futures can be re-indexed onto the compacted batch without their new
        indices colliding with recorded error slots.
        """
        if self.errors is None:
            self.errors = {}
        future._index = -1 - len(self.errors)
        self.errors[future._index] = error
        if self.watchers:
            still_waiting = []
            for watcher, callback in self.watchers:
                if watcher is future:
                    callback(watcher)
                else:
                    still_waiting.append((watcher, callback))
            self.watchers = still_waiting or None


def _queue_batch(queue: Deque[_Batch], arrival: float, scheduler) -> _Batch:
    """The batch to enqueue into, keeping the lane ordered by arrival.

    Common case (non-decreasing arrivals, as every open-loop generator
    emits): coalesce with or append after the tail — one comparison.  An
    out-of-order submission walks back from the tail so earlier arrivals
    are still served first and never head-of-line blocked (or spuriously
    deadline-expired) behind later ones.
    """
    if not queue or queue[-1].arrival <= arrival:
        if queue and queue[-1].arrival == arrival:
            return queue[-1]
        batch = _Batch(arrival, scheduler)
        queue.append(batch)
        return batch
    index = len(queue) - 1
    while index > 0 and queue[index - 1].arrival > arrival:
        index -= 1
    if index > 0 and queue[index - 1].arrival == arrival:
        return queue[index - 1]
    batch = _Batch(arrival, scheduler)
    queue.insert(index, batch)
    return batch


class _FifoLane:
    """Arrival-ordered lane queue — the legacy drain order (the default)."""

    __slots__ = ("batches",)

    def __init__(self) -> None:
        self.batches: Deque[_Batch] = deque()

    def __bool__(self) -> bool:
        return bool(self.batches)

    def pending_requests(self) -> int:
        return sum(len(batch.requests) for batch in self.batches)

    def work_ahead(self, deadline: Optional[float]) -> int:
        # FIFO serves strictly in arrival order: everything queued is ahead.
        return self.pending_requests()

    def batch_for(self, arrival: float, deadline: Optional[float], scheduler) -> _Batch:
        # FIFO coalesces purely by arrival: mixed deadlines share one batch.
        return _queue_batch(self.batches, arrival, scheduler)

    def next_begin(self, available: float) -> float:
        return max(available, self.batches[0].arrival)

    def pop(self, available: float) -> Optional[_Batch]:
        return self.batches.popleft() if self.batches else None


class _EdfLane:
    """Earliest-deadline-first lane queue.

    Batches coalesce per ``(arrival, deadline)`` pair, so every batch has a
    single, immutable sort key.  A batch is *released* once the lane's clock
    reaches its arrival; among released batches the earliest deadline is
    served first (deadline-less batches sort last, in arrival order — the
    FIFO fallback).  Work is conserved: a lane never idles past released
    work waiting for a not-yet-arrived urgent batch.
    """

    __slots__ = ("_by_key", "_pending", "_ready", "_seq")

    def __init__(self) -> None:
        # (arrival, deadline) -> queued batch, for coalescing resubmissions.
        self._by_key: Dict[Tuple[float, Optional[float]], _Batch] = {}
        self._pending: List[tuple] = []  # (arrival, seq, batch), unreleased
        self._ready: List[tuple] = []    # (deadline_key, arrival, seq, batch)
        self._seq = 0

    def __bool__(self) -> bool:
        return bool(self._by_key)

    def pending_requests(self) -> int:
        return sum(len(batch.requests) for batch in self._by_key.values())

    def work_ahead(self, deadline: Optional[float]) -> int:
        """Queued requests EDF would serve before a new one at ``deadline``.

        Only batches with an earlier-or-equal deadline delay it; deadline-
        less batches sort last and never block deadline work (``None`` here
        means the *new* request is deadline-less, behind everything).
        """
        if deadline is None:
            return self.pending_requests()
        return sum(
            len(batch.requests)
            for (_, key), batch in self._by_key.items()
            if key is not None and key <= deadline
        )

    def batch_for(self, arrival: float, deadline: Optional[float], scheduler) -> _Batch:
        key = (arrival, deadline)
        batch = self._by_key.get(key)
        if batch is None:
            batch = _Batch(arrival, scheduler)
            batch.deadline = deadline
            self._by_key[key] = batch
            self._seq += 1
            heapq.heappush(self._pending, (arrival, self._seq, batch))
        return batch

    def next_begin(self, available: float) -> float:
        # Both heap tuples carry the batch arrival at slot [-3]:
        # pending is (arrival, seq, batch), ready (key, arrival, seq, batch).
        earliest = min(heap[0][-3] for heap in (self._pending, self._ready) if heap)
        return max(available, earliest)

    def _release_through(self, horizon: float) -> None:
        while self._pending and self._pending[0][0] <= horizon:
            arrival, seq, batch = heapq.heappop(self._pending)
            key = np.inf if batch.deadline is None else batch.deadline
            heapq.heappush(self._ready, (key, arrival, seq, batch))

    def pop(self, available: float) -> Optional[_Batch]:
        self._release_through(available)
        if not self._ready:
            if not self._pending:
                return None
            # Nothing has arrived yet: jump to the earliest arrival and
            # release everything landing at that instant.
            self._release_through(self._pending[0][0])
        _, _, _, batch = heapq.heappop(self._ready)
        del self._by_key[(batch.arrival, batch.deadline)]
        return batch


_LANE_CLASSES = {"fifo": _FifoLane, "edf": _EdfLane}


class _RejectedResult(PendingResult):
    """Already-failed future for a request rejected at admission time."""

    __slots__ = ("_error",)

    def __init__(self, request, error: BaseException) -> None:
        self.request = request
        self._error = error

    def done(self) -> bool:
        return True

    def add_done_callback(self, callback) -> None:
        callback(self)

    def exception(self) -> Optional[BaseException]:
        return self._error

    def result(self) -> PredictResponse:
        raise self._error


class _BatchFuture(PendingResult):
    """Three-slot future viewing its batch's shared completion state."""

    __slots__ = ("_batch", "_index", "_cancel_flag")

    def __init__(self, request, batch: _Batch, index: int) -> None:
        self.request = request
        self._batch = batch
        self._index = index
        self._cancel_flag = False

    # -- PendingResult interface ---------------------------------------- #
    def done(self) -> bool:
        batch = self._batch
        return batch.finished or (
            batch.errors is not None and self._index in batch.errors
        )

    def add_done_callback(self, callback) -> None:
        if self.done():
            callback(self)
            return
        batch = self._batch
        if batch.watchers is None:
            batch.watchers = []
        batch.watchers.append((self, callback))

    def cancel(self) -> bool:
        """Flag this queued request for cancellation (advisory).

        A cancelled request is failed with
        :class:`~repro.exceptions.RequestCancelledError` when its lane next
        pops the batch — *before* any engine call, so the cancelled work is
        never executed.  If the batch reaches service first (or has already
        finished), the request is served normally and ``cancel`` returns
        ``False`` retroactively only in the already-done case; a flagged
        future that still gets served simply resolves with its answer (the
        hedging layer counts those as wasted, not cancelled).
        """
        if self.done():
            return False
        if not self._cancel_flag:
            self._cancel_flag = True
            self._batch.n_cancelled += 1
        return True

    def cancelled(self) -> bool:
        return self._cancel_flag

    def exception(self) -> Optional[BaseException]:
        self._ensure_done()
        return self._my_error()

    def result(self) -> PredictResponse:
        self._ensure_done()
        error = self._my_error()
        if error is not None:
            raise error
        batch = self._batch
        offsets = batch.offsets()
        class_ids = batch.outputs[offsets[self._index]:offsets[self._index + 1]]
        return PredictResponse(
            self.request, class_ids, batch.device_id, batch.completion
        )

    # ------------------------------------------------------------------ #
    def _my_error(self) -> Optional[BaseException]:
        batch = self._batch
        if batch.errors is not None:
            error = batch.errors.get(self._index)
            if error is not None:
                return error
        return batch.error

    def _ensure_done(self) -> None:
        if not self.done():
            self._batch.scheduler.drain()
        if not self.done():
            raise ServingError(
                "request is still pending; drain() the serving client "
                "(or submit through a client, which drains on result())"
            )


class _PreparedBatch:
    """One lane's next batch, popped/expired/coalesced and ready to execute.

    The scheduler-side half of the executor seam: everything decided
    *before* the engine call (which device, which requests survived expiry,
    the coalesced window matrix, the simulated begin time) travels in this
    struct so ``_complete`` can apply the outcome without re-deriving lane
    state.  ``windows`` is ``None`` when every request expired before
    service — there is nothing to execute, but ``n_resolved`` futures were
    already resolved by the expiry.
    """

    __slots__ = ("position", "batch", "device", "stats", "begin", "n_resolved", "windows")

    def __init__(
        self, position, batch, device, stats, begin, n_resolved, windows=None
    ) -> None:
        self.position = position
        self.batch = batch
        self.device = device
        self.stats = stats
        self.begin = begin
        self.n_resolved = n_resolved
        self.windows = windows


class EventLoopScheduler:
    """Future-completing scheduler over a live list of fleet devices.

    Parameters
    ----------
    devices:
        Device-like targets exposing ``infer(windows)``, ``device_id`` and
        ``profile`` (``FleetDevice`` or the client's local adapters).  When
        given a list — e.g. ``FleetCoordinator.devices`` — the scheduler
        keeps a *live view*, so ``replace_device`` takes effect for requests
        already queued; the device *count* must stay fixed.
    policy:
        A :class:`~repro.serving.routing.RoutingPolicy`, a policy name, or
        ``None`` for the default seeded hash.
    seed:
        Seeds the routing policy (hash salts); same seed, same assignment.
    scheduling:
        Per-lane queue order, one of :data:`SCHEDULING_ORDERS`:
        ``"fifo"`` (arrival order, the default) or ``"edf"``
        (earliest-deadline-first; see the module docstring for the full
        deadline semantics).
    executor:
        Where batches execute — an :class:`~repro.serving.executor.Executor`
        instance or registry name (``"serial"``/``"thread"``/``"process"``);
        ``None`` means the inline serial executor, bit-exact with the
        historical scheduler.  Queue order, routing, rollouts and deadline
        accounting compose unchanged with every executor.
    workers:
        Pool size for the concurrent executors (default: one per CPU core,
        capped at the lane count); only valid with an executor *name*.
    """

    def __init__(
        self,
        devices: Sequence,
        policy: Optional[RoutingPolicy] = None,
        *,
        seed: RandomState = None,
        scheduling: str = "fifo",
        executor: Union[str, Executor, None] = None,
        workers: Optional[int] = None,
    ) -> None:
        if not devices:
            raise RoutingError("the scheduler needs at least one device")
        if scheduling not in _LANE_CLASSES:
            raise ConfigurationError(
                f"unknown scheduling order {scheduling!r}; "
                f"expected one of {SCHEDULING_ORDERS}"
            )
        self._devices = devices if isinstance(devices, list) else list(devices)
        self._n_lanes = len(self._devices)
        self.policy = make_routing_policy(policy)
        self.policy.bind(self._n_lanes, resolve_rng(seed))
        self.scheduling = scheduling
        self._executor = make_executor(executor, workers=workers)
        self._executor.bind(self._devices)
        self._wall_clock = self._executor.clock == "wall"
        lane_class = _LANE_CLASSES[scheduling]
        self._lanes = [lane_class() for _ in range(self._n_lanes)]
        self._edf = scheduling == "edf"
        self._pending_counts = np.zeros(self._n_lanes, dtype=np.float64)
        self._available_at = np.zeros(self._n_lanes, dtype=np.float64)
        # Per-lane service history (survives device replacement, unlike the
        # per-device stats rows) — feeds the balancing policies' rate term.
        self._lane_served = np.zeros(self._n_lanes, dtype=np.float64)
        self._lane_busy = np.zeros(self._n_lanes, dtype=np.float64)
        # Rows are labelled with the executor's clock up front so reports
        # stay consistently "wall"/"simulated" even for devices that only
        # ever expired or failed their traffic.
        self._clock = self._executor.clock
        self._stats: Dict[int, DeviceStats] = {
            d.device_id: self._stats_row(d) for d in self._devices
        }
        self._total_requests = 0   # served (matches the per-device rows)
        self._total_windows = 0
        self._total_expired = 0    # deadline passed while queued
        self._total_rejected = 0   # deadline already unmeetable at submit
        self._total_failed = 0     # device.infer raised mid-batch
        self._total_shed = 0       # rejected by the admission hook (⊆ rejected)
        self._total_cancelled = 0  # cancelled before service (hedge losers)
        # Cumulative per-lane failed-request counts (survive device
        # replacement, like the served/busy lane history); the control
        # plane's window diffing turns these into a recent-failures signal.
        self._lane_failures = np.zeros(self._n_lanes, dtype=np.int64)
        #: Optional admission hook consulted for every deadline-carrying
        #: request that clears the hard floor: an object with
        #: ``shed(request, position, floor, scheduler) -> Optional[error]``.
        #: Returning an error rejects the request before it queues (counted
        #: in both ``total_rejected`` and ``total_shed``).  Installed by the
        #: control plane's load shedder; ``None`` means admit everything
        #: the floor admits.
        self.admission = None
        self._event_counter = 0

    # ------------------------------------------------------------------ #
    @property
    def devices(self) -> Sequence:
        """The live device list behind the lanes."""
        return self._devices

    @property
    def n_devices(self) -> int:
        return len(self._devices)

    @property
    def executor(self) -> Executor:
        """The executor batches run on (serial/thread/process)."""
        return self._executor

    def close(self) -> None:
        """Release the executor's worker pools (idempotent)."""
        self._executor.close()

    def __enter__(self) -> "EventLoopScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def pending_requests(self) -> int:
        """Requests submitted but not yet answered."""
        return sum(lane.pending_requests() for lane in self._lanes)

    def clock_now(self) -> float:
        """The scheduler clock's current reading, for stamping live arrivals.

        The latest lane completion so far — exactly where the concurrent
        drain anchors its measured clock (``base = max(available_at)``) and
        the earliest instant a new submission could be served everywhere.
        Network front doors stamp ``arrival_seconds`` from this, so latency
        accounting stays monotone across drains instead of every wire
        request claiming it arrived at time zero (which would eventually
        mass-reject live traffic through admission control as the lane
        clocks run ahead of it).
        """
        return float(self._available_at.max()) if self._n_lanes else 0.0

    def fail_pending(self, error: BaseException) -> int:
        """Resolve every still-queued request with ``error``, exactly once.

        The close path's guarantee that no future is silently dropped:
        every batch still sitting in a lane is finished with the typed
        error (counted in ``total_failed``), firing any registered
        done-callbacks.  Returns the number of requests failed.
        """
        failed = 0
        for position, lane in enumerate(self._lanes):
            lane_failed = 0
            while lane:
                batch = lane.pop(float("inf"))
                if batch is None:
                    break
                n_requests = len(batch.requests)
                self._pending_counts[position] -= n_requests
                batch.finish(
                    None, -1, float(self._available_at[position]), error=error
                )
                lane_failed += n_requests
            if lane_failed:
                self._lane_failures[position] += lane_failed
                device = self._devices[position]
                stats = self._stats.setdefault(
                    device.device_id, self._stats_row(device)
                )
                stats.failures += lane_failed
                stats.queue_depth = int(self._pending_counts[position])
                failed += lane_failed
        self._total_failed += failed
        return failed

    def lane_loads(self, now: float) -> np.ndarray:
        """Per-lane load estimate (in requests) for the balancing policies.

        Queued-but-unserved requests, plus each lane's simulated backlog
        beyond ``now`` converted to requests through the lane's observed
        service rate (requests per simulated busy second; kept per *lane*,
        so a device replacement does not reset it).  Before any service
        history exists the backlog term is zero and queued requests alone
        drive the decision.
        """
        backlog = np.maximum(self._available_at - now, 0.0)
        if backlog.any():
            rates = np.divide(
                self._lane_served,
                self._lane_busy,
                out=np.zeros(self._n_lanes),
                where=self._lane_busy > 0,
            )
            return self._pending_counts + backlog * rates
        return self._pending_counts.copy()

    # -- control-plane signal surface ---------------------------------- #
    @property
    def queue_depths(self) -> np.ndarray:
        """Per-lane queued request counts (a copy; live gauge)."""
        return self._pending_counts.astype(np.int64)

    @property
    def lane_failures(self) -> np.ndarray:
        """Cumulative per-lane failed-request counts (a copy).

        Kept per lane (not per device) so a crash-replace does not reset
        it; the control plane diffs snapshots of this for its rolling
        recent-failures signal.
        """
        return self._lane_failures.copy()

    def lane_of(self, future) -> Optional[int]:
        """The lane a still-queued future was enqueued on, else ``None``.

        ``None`` for foreign futures (other schedulers, rejected results,
        hedged wrappers) — callers use it to tell "queued here" apart from
        "already resolved at admission".
        """
        batch = getattr(future, "_batch", None)
        if batch is None or batch.scheduler is not self:
            return None
        return batch.lane if batch.lane >= 0 else None

    def projected_begin_for(
        self, position: int, arrival: float, deadline: Optional[float] = None
    ) -> float:
        """Estimate when a request arriving now would begin service.

        The lane's hard floor (``max(available_at, arrival)``) plus the
        queued work that would be served first — *all* of it on a FIFO
        lane, only earlier-or-equal deadlines on an EDF lane — converted
        to seconds through the lane's observed service rate.  Before any
        service history exists the queue term is zero and the floor alone
        answers (matching admission control, which then stays the only
        gate).  This is the quantity hedging and load shedding compare
        against a request's deadline.
        """
        base = max(float(self._available_at[position]), arrival)
        ahead = self._lanes[position].work_ahead(deadline)
        if not ahead:
            return base
        served = float(self._lane_served[position])
        busy = float(self._lane_busy[position])
        if served <= 0.0 or busy <= 0.0:
            return base
        return base + ahead * (busy / served)

    def _note_queue_depth(self, position: int) -> None:
        """Mirror a lane's live queued-count gauge onto its stats row."""
        device = self._devices[position]
        stats = self._stats.get(device.device_id)
        if stats is None:
            stats = self._stats.setdefault(device.device_id, self._stats_row(device))
        stats.queue_depth = int(self._pending_counts[position])

    def _stats_row(self, device) -> DeviceStats:
        """A fresh stats row for a device, on this scheduler's clock."""
        return DeviceStats(
            device_id=device.device_id,
            profile=device.profile.name,
            clock=self._clock,
        )

    # ------------------------------------------------------------------ #
    def replace_device(self, device_id: int, replacement) -> None:
        """Swap a (crashed) device; its queued requests go to the replacement.

        In-flight entries live on the lane, not the device object, so nothing
        is dropped or double-answered: the replacement simply serves the
        lane's queue from its next event on.
        """
        for position, device in enumerate(self._devices):
            if device.device_id == device_id:
                self._devices[position] = replacement
                return
        raise RoutingError(f"no device with id {device_id} behind this scheduler")

    # ------------------------------------------------------------------ #
    def submit(self, request) -> PendingResult:
        """Queue one request; returns its future."""
        return self.submit_many([request])[0]

    def submit_many(self, requests: Sequence) -> List[PendingResult]:
        """Queue a batch of requests (vectorised routing), one future each.

        Requests assigned to the same device with the same arrival time are
        coalesced into one engine call at drain time, which is what keeps the
        per-request overhead at the legacy router's level.  Requests whose
        deadline is already unmeetable on their lane are rejected here (their
        futures complete immediately with
        :class:`~repro.exceptions.DeadlineExceededError`).
        """
        if not requests:
            return []
        if len(self._devices) != self._n_lanes:
            raise RoutingError(
                f"the fleet changed size ({self._n_lanes} -> {len(self._devices)}); "
                "build a new scheduler — the device count is fixed at construction"
            )
        if self._n_lanes == 1:
            # Routing is a no-op with a single lane; skip the policy and the
            # per-request id extraction entirely (the serve(learner) /
            # serve(platform) hot path).
            return self._enqueue_single_lane(requests)
        user_ids = np.fromiter(
            (r.user_id for r in requests), dtype=np.int64, count=len(requests)
        )
        assignment = self.policy.assign_batch(requests, user_ids, self)
        return self._enqueue(requests, assignment)

    def _enqueue_single_lane(self, requests: Sequence) -> List[PendingResult]:
        if not isinstance(requests, list):
            requests = list(requests)
        arrivals = np.fromiter(
            (r.arrival_seconds for r in requests),
            dtype=np.float64,
            count=len(requests),
        )
        boundaries = np.flatnonzero(np.diff(arrivals)) + 1
        futures: List[PendingResult] = []
        start = 0
        for end in [*boundaries.tolist(), len(requests)]:
            futures.extend(
                self._enqueue_segment(0, float(arrivals[start]), requests[start:end])
            )
            start = end
        return futures

    def submit_assigned(self, requests: Sequence, assignment: np.ndarray) -> List[PendingResult]:
        """Queue requests with a precomputed lane assignment (cohort routing)."""
        if not requests:
            return []
        if len(self._devices) != self._n_lanes:
            raise RoutingError(
                f"the fleet changed size ({self._n_lanes} -> {len(self._devices)}); "
                "build a new scheduler — the device count is fixed at construction"
            )
        return self._enqueue(requests, np.asarray(assignment, dtype=np.int64))

    def _enqueue(self, requests: Sequence, assignment: np.ndarray) -> List[PendingResult]:
        futures: List[Optional[PendingResult]] = [None] * len(requests)
        arrivals = np.fromiter(
            (r.arrival_seconds for r in requests),
            dtype=np.float64,
            count=len(requests),
        )
        for lane in range(self._n_lanes):
            lane_indices = np.flatnonzero(assignment == lane)
            if lane_indices.size == 0:
                continue
            # Split the lane's share into runs of equal arrival time (one
            # run per tick in the common open-loop case).
            lane_arrivals = arrivals[lane_indices]
            boundaries = np.flatnonzero(np.diff(lane_arrivals)) + 1
            for segment in np.split(lane_indices, boundaries):
                segment_futures = self._enqueue_segment(
                    lane,
                    float(arrivals[segment[0]]),
                    [requests[i] for i in segment],
                )
                for index, future in zip(segment.tolist(), segment_futures):
                    futures[index] = future
        return futures  # type: ignore[return-value]

    def _enqueue_segment(
        self, position: int, arrival: float, segment: Sequence
    ) -> List[PendingResult]:
        """Queue one run of co-arriving requests onto one lane.

        The no-deadline fast path appends the whole segment to a single
        arrival-keyed batch; segments carrying deadlines go through admission
        control and (under EDF) per-deadline grouping.
        """
        if any(
            getattr(request, "deadline_seconds", None) is not None
            for request in segment
        ):
            return self._enqueue_deadline_segment(position, arrival, segment)
        batch = self._lanes[position].batch_for(arrival, None, self)
        batch.lane = position
        base = len(batch.requests)
        futures: List[PendingResult] = [
            _BatchFuture(request, batch, base + offset)
            for offset, request in enumerate(segment)
        ]
        batch.requests.extend(segment)
        batch.futures.extend(futures)
        self._pending_counts[position] += len(segment)
        self._note_queue_depth(position)
        return futures

    def _enqueue_deadline_segment(
        self, position: int, arrival: float, segment: Sequence
    ) -> List[PendingResult]:
        lane = self._lanes[position]
        # Admission floor: the lane cannot start any new work earlier than
        # max(its simulated backlog, the arrival itself) — a deadline below
        # it can never be met, so fail the future now instead of queueing.
        floor = max(float(self._available_at[position]), arrival)
        futures: List[Optional[PendingResult]] = [None] * len(segment)
        groups: Dict[Optional[float], List[int]] = {}
        admission = self.admission
        rejected = 0
        admitted = 0
        for index, request in enumerate(segment):
            deadline = getattr(request, "deadline_seconds", None)
            if deadline is not None:
                if floor > deadline:
                    futures[index] = _RejectedResult(
                        request,
                        DeadlineExceededError(
                            f"user {request.user_id}: rejected at admission — "
                            f"service cannot start before {floor:.6f}s, past "
                            f"the deadline {deadline:.6f}s"
                        ),
                    )
                    self._total_rejected += 1
                    rejected += 1
                    continue
                if admission is not None:
                    error = admission.shed(request, position, floor, self)
                    if error is not None:
                        futures[index] = _RejectedResult(request, error)
                        self._total_rejected += 1
                        self._total_shed += 1
                        rejected += 1
                        continue
            # FIFO keeps the legacy arrival-only coalescing; EDF separates
            # co-arriving deadlines so the queue order can discriminate.
            groups.setdefault(deadline if self._edf else None, []).append(index)
            admitted += 1
        for deadline, indices in groups.items():
            batch = lane.batch_for(arrival, deadline, self)
            batch.lane = position
            if deadline is not None or not self._edf:
                batch.has_deadlines = True
            base = len(batch.requests)
            for offset, index in enumerate(indices):
                request = segment[index]
                future = _BatchFuture(request, batch, base + offset)
                batch.requests.append(request)
                batch.futures.append(future)
                futures[index] = future
        self._pending_counts[position] += admitted
        self._note_queue_depth(position)
        if rejected:
            # Rejections are deadline outcomes too: they count against the
            # rolling attainment window exactly as queue expiries do.
            device = self._devices[position]
            stats = self._stats.setdefault(device.device_id, self._stats_row(device))
            for _ in range(rejected):
                stats.note_deadline(False)
        return futures  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    def drain(self) -> int:
        """Run the event loop until every queued request is resolved.

        With the (default) serial executor, lanes are processed in
        simulated-clock order: the heap always pops the lane whose next
        batch starts earliest (``max(available_at, batch arrival)``),
        mirroring devices draining their queues in parallel.  With a
        concurrent executor the loop instead runs *rounds* — one batch per
        non-empty lane, executed in parallel, futures completed from the
        executor's results — which preserves every per-lane ordering
        guarantee because lanes share no queue state.  Done-callbacks may
        submit follow-up requests mid-drain (including onto lanes already
        drained) and may even re-enter ``drain()``; both loops re-scan the
        lanes until no queued request remains (the concurrent loop applies
        a whole round's clock/stats bookkeeping *before* firing any of the
        round's completion callbacks, so a re-entrant drain never sees a
        lane clock that an in-flight result is about to move).  Returns
        the number of requests this call resolved — answered, expired past
        their deadline, or failed (``report()`` separates the three).
        """
        if self._executor.concurrent:
            return self._drain_concurrent()
        resolved = 0
        while True:
            heap = []
            for position, lane in enumerate(self._lanes):
                if lane:
                    self._event_counter += 1
                    begin = lane.next_begin(self._available_at[position])
                    heap.append((begin, self._event_counter, position))
            if not heap:
                return resolved
            heapq.heapify(heap)
            while heap:
                _, _, position = heapq.heappop(heap)
                resolved += self._execute_next(position)
                lane = self._lanes[position]
                if lane:
                    self._event_counter += 1
                    begin = lane.next_begin(self._available_at[position])
                    heapq.heappush(heap, (begin, self._event_counter, position))
            # A done-callback may have enqueued onto a lane that already left
            # the heap — the outer loop re-scans until everything is served.

    def _drain_concurrent(self) -> int:
        """Round-based drain: one batch per non-empty lane, lanes parallel.

        In wall-clock mode, completions are stamped from one shared
        measured clock (anchored at this drain's start, continuing from the
        latest lane completion so the timeline is monotone across drains)
        rather than per-lane sums of in-worker service times: a lane that
        waited for a busy worker *completes later*, so the makespan — and
        the aggregate throughput derived from it — reflects what the pool
        actually achieved, not a hypothetical fully-parallel fleet.  Idle
        time between drains is excluded (the anchor resets per drain), so
        the clock only advances while serving.  ``arrival_seconds`` keeps
        its usual role as a release floor (``begin = max(available,
        arrival)``) — on *this* clock, exactly as on the simulated one —
        so streams carrying large simulated arrival offsets should be
        replayed with zeroed arrivals when measuring raw pool throughput
        (every shipped workload path does).
        """
        resolved = 0
        origin = perf_seconds()
        base = float(self._available_at.max()) if self._n_lanes else 0.0
        while True:
            prepared_round: List[_PreparedBatch] = []
            any_work = False
            for position, lane in enumerate(self._lanes):
                if not lane:
                    continue
                prepared = self._prepare_next(position)
                if prepared is None:
                    continue
                any_work = True
                resolved += prepared.n_resolved
                if prepared.windows is not None:
                    prepared_round.append(prepared)
            if not prepared_round:
                if any_work:
                    continue  # the whole round expired; lanes may hold more
                return resolved
            results = self._executor.run(
                [LaneTask(p.position, p.windows) for p in prepared_round]
            )
            by_position = {p.position: p for p in prepared_round}
            measured_now = base + (perf_seconds() - origin)
            # Two passes: book every result's clock/stats first, then fire
            # the completions.  A done-callback may re-enter drain(); by the
            # time it can run, every lane clock already reflects this whole
            # round, so the inner drain neither executes against a stale
            # _available_at nor gets rewound by the remaining completions.
            finishes = [
                self._complete(
                    by_position[result.position], result, measured_now, fire=False
                )
                for result in results
            ]
            for batch, outputs, device_id, completion, error in finishes:
                batch.finish(outputs, device_id, completion, error=error)

    def _execute_next(self, position: int) -> int:
        """Serve one queued batch on the device currently holding the lane."""
        prepared = self._prepare_next(position)
        if prepared is None:
            # A re-entrant drain (from a done-callback resolving a future)
            # already served this lane; the outer heap entry is stale.
            return 0
        if prepared.windows is not None:
            result = self._executor.run(
                [LaneTask(prepared.position, prepared.windows)]
            )[0]
            self._complete(prepared, result)
        return prepared.n_resolved

    def _prepare_next(self, position: int) -> Optional["_PreparedBatch"]:
        """Pop, expire and coalesce a lane's next batch ahead of execution.

        Returns ``None`` when the lane is empty; a prepared batch whose
        ``windows`` is ``None`` when every request expired before service
        (nothing to execute, but ``n_resolved`` futures were resolved).
        """
        batch = self._lanes[position].pop(self._available_at[position])
        if batch is None:
            return None
        n_resolved = len(batch.requests)
        self._pending_counts[position] -= n_resolved
        device = self._devices[position]
        # setdefault: a replacement device (crash/restore) may carry a new
        # id; it inherits the lane but gets its own stats row.
        stats = self._stats.setdefault(device.device_id, self._stats_row(device))
        stats.queue_depth = int(self._pending_counts[position])
        begin = max(self._available_at[position], batch.arrival)
        requests = batch.requests
        if batch.has_deadlines or batch.n_cancelled:
            requests = self._filter_before_service(batch, begin, stats)
            if not requests:
                return _PreparedBatch(position, batch, device, stats, begin, n_resolved)
        windows = (
            requests[0].features
            if len(requests) == 1
            else np.concatenate([r.features for r in requests], axis=0)
        )
        return _PreparedBatch(
            position, batch, device, stats, begin, n_resolved, windows
        )

    def _complete(
        self,
        prepared: "_PreparedBatch",
        result: LaneResult,
        measured_now: Optional[float] = None,
        fire: bool = True,
    ):
        """Apply one executed batch's outcome: clock, stats, futures.

        With ``fire=False`` the bookkeeping is applied but the batch is
        *not* finished; the ``(batch, outputs, device_id, completion,
        error)`` finish arguments are returned so the concurrent drain can
        book a whole round before any done-callback runs.
        """
        batch = prepared.batch
        device = prepared.device
        stats = prepared.stats
        position = prepared.position
        begin = prepared.begin
        requests = batch.requests
        if result.error is not None:
            # Failed requests are neither served nor expired: they stay out
            # of total_requests (which must keep matching the per-device
            # rows) and are reported in total_failed.
            self._total_failed += len(requests)
            self._lane_failures[position] += len(requests)
            stats.failures += len(requests)
            if not fire:
                return (batch, None, device.device_id, begin, result.error)
            batch.finish(None, device.device_id, begin, error=result.error)
            return None
        wall = result.wall
        if self._wall_clock:
            # Measured mode: no modeled relative_compute scaling.  The
            # batch completes at the shared measured clock reading (which
            # includes time spent waiting for a busy worker — lanes
            # outnumbering workers must not look fully parallel); the
            # in-worker elapsed time is still what counts as busy compute.
            completion = (
                max(begin, measured_now) if measured_now is not None
                else begin + wall
            )
            service = wall
        else:
            service = wall / device.profile.relative_compute
            completion = begin + service
        self._available_at[position] = completion
        stats.available_at = completion  # feeds RoutingReport.makespan_seconds

        windows = prepared.windows
        n_windows = int(windows.shape[0])
        stats.requests += len(requests)
        stats.windows += n_windows
        stats.batches += 1
        stats.busy_seconds += service
        stats.wall_seconds += wall
        stats.max_queue_depth = max(
            stats.max_queue_depth,
            len(requests) + (1 if begin > batch.arrival else 0),
        )
        if batch.has_deadlines:
            n_deadline = 0
            n_missed = 0
            for request in requests:
                deadline = getattr(request, "deadline_seconds", None)
                if deadline is not None:
                    n_deadline += 1
                    if completion > deadline:
                        n_missed += 1
                        stats.note_deadline(False)
                    else:
                        stats.note_deadline(True)
            stats.deadline_requests += n_deadline
            stats.deadline_misses += n_missed
        self._lane_served[position] += len(requests)
        self._lane_busy[position] += service
        latency = completion - batch.arrival
        stats.total_latency_seconds += latency * len(requests)
        latencies = stats.latencies
        latencies.extend([latency] * len(requests))
        if len(latencies) > 2 * LATENCY_HISTORY_CAP:
            del latencies[: len(latencies) - LATENCY_HISTORY_CAP]
        self._total_requests += len(requests)
        self._total_windows += n_windows
        if not fire:
            return (batch, result.outputs, device.device_id, completion, None)
        batch.finish(result.outputs, device.device_id, completion)
        return None

    def _filter_before_service(self, batch: _Batch, begin: float, stats) -> List:
        """Resolve cancelled and deadline-expired requests ahead of service.

        Cancelled futures (hedge losers) fail with
        :class:`~repro.exceptions.RequestCancelledError` — counted in
        ``total_cancelled``, *not* against the deadline SLO (their logical
        request was answered by the winning twin).  Requests whose deadline
        passed while queued fail with
        :class:`~repro.exceptions.DeadlineExceededError` (``total_expired``,
        a rolling-window miss).  Kept requests are re-indexed so the batch's
        shared output offsets stay aligned with the surviving futures.
        """
        kept_requests, kept_futures = [], []
        expired = 0
        for request, future in zip(batch.requests, batch.futures):
            if future._cancel_flag:
                batch.fail_future(
                    future,
                    RequestCancelledError(
                        f"user {request.user_id}: cancelled before service "
                        f"(lane reached it at {begin:.6f}s)"
                    ),
                )
                self._total_cancelled += 1
                continue
            deadline = getattr(request, "deadline_seconds", None)
            if deadline is not None and begin > deadline:
                batch.fail_future(
                    future,
                    DeadlineExceededError(
                        f"user {request.user_id}: service would start at "
                        f"{begin:.6f}s, past the deadline {deadline:.6f}s"
                    ),
                )
                expired += 1
                stats.note_deadline(False)
            else:
                kept_requests.append(request)
                kept_futures.append(future)
        for new_index, future in enumerate(kept_futures):
            future._index = new_index
        self._total_expired += expired
        batch.n_cancelled = 0
        batch.requests = kept_requests
        batch.futures = kept_futures
        return kept_requests

    # ------------------------------------------------------------------ #
    def report(self) -> RoutingReport:
        """Serving statistics so far (stats keep accumulating afterwards).

        ``total_requests`` counts *served* requests only, so it always
        matches the sum of the per-device rows — expired, admission-rejected
        and failed requests are reported in ``total_expired`` /
        ``total_rejected`` / ``total_failed`` instead.
        ``resolved_requests`` is the all-time total across all four
        outcomes; ``slo_attainment`` weighs its windowed latency samples by
        it so long runs (past ``LATENCY_HISTORY_CAP``) stay consistent.
        """
        total_expired = self._total_expired + self._total_rejected
        return RoutingReport(
            per_device=dict(self._stats),
            total_requests=self._total_requests,
            total_windows=self._total_windows,
            total_expired=total_expired,
            total_rejected=self._total_rejected,
            total_failed=self._total_failed,
            total_shed=self._total_shed,
            total_cancelled=self._total_cancelled,
            resolved_requests=self._total_requests + total_expired + self._total_failed,
        )
