"""Checkpointed device state: snapshot, evict under budget, restore.

Fleet elasticity needs device state to outlive devices: a wearable dies, a
phone is replaced, a simulation wants to roll a device back.  The
:class:`CheckpointStore` persists each device's full PILOTE state as one
``.npz`` archive (via :func:`repro.core.persistence.save_pilote`, which builds
on :mod:`repro.utils.serialization`), keeps the archive set under a storage
budget with least-recently-used eviction, and can materialise a *fresh*
:class:`~repro.fleet.coordinator.FleetDevice` from any surviving checkpoint.

Restoration is exact: the restored device reproduces the original device's
predictions bit for bit (the npz round-trip is lossless and serving is
deterministic), which ``benchmarks/bench_fleet.py`` gates on.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from repro.core.persistence import load_pilote, save_pilote
from repro.edge.device import DeviceProfile, EdgeDevice
from repro.exceptions import EdgeResourceError, SerializationError
from repro.fleet.coordinator import FleetDevice
from repro.utils.logging import get_logger

PathLike = Union[str, Path]

logger = get_logger("fleet.checkpoint")


@dataclass(frozen=True)
class DeviceCheckpoint:
    """One snapshot of a device's learner state.

    Attributes
    ----------
    checkpoint_id:
        Store-unique id (monotonic sequence number).
    device_id:
        Fleet id of the device that was snapshotted.
    profile:
        The device's hardware profile, so a replacement can be provisioned
        with the same budgets and compute dtype.
    path:
        Location of the ``.npz`` archive on disk.
    nbytes:
        On-disk size of the archive (what the budget accounting uses).
    """

    checkpoint_id: int
    device_id: int
    profile: DeviceProfile
    path: Path
    nbytes: int


class CheckpointStore:
    """Budgeted store of device checkpoints with LRU eviction.

    Parameters
    ----------
    directory:
        Where archives are written (created on demand).
    budget_bytes:
        Total on-disk budget across all kept checkpoints; ``None`` disables
        eviction.  A single checkpoint larger than the budget raises
        :class:`~repro.exceptions.EdgeResourceError` — it could never be kept.
    """

    def __init__(self, directory: PathLike, *, budget_bytes: Optional[int] = None) -> None:
        if budget_bytes is not None and budget_bytes <= 0:
            raise EdgeResourceError(f"budget_bytes must be positive, got {budget_bytes}")
        self.directory = Path(directory)
        self.budget_bytes = budget_bytes
        self._sequence = 0
        # Insertion order doubles as recency order: index 0 = least recent.
        self._checkpoints: List[DeviceCheckpoint] = []

    @classmethod
    def for_profile(cls, directory: PathLike, profile: DeviceProfile) -> "CheckpointStore":
        """A store whose budget mirrors a device profile's storage budget."""
        return cls(directory, budget_bytes=profile.storage_bytes)

    # ------------------------------------------------------------------ #
    @property
    def total_bytes(self) -> int:
        return sum(c.nbytes for c in self._checkpoints)

    def checkpoints(self) -> List[DeviceCheckpoint]:
        """Kept checkpoints, least recently used first."""
        return list(self._checkpoints)

    def latest(self, device_id: int) -> Optional[DeviceCheckpoint]:
        """The newest surviving checkpoint of one device, if any."""
        matching = [c for c in self._checkpoints if c.device_id == device_id]
        return max(matching, key=lambda c: c.checkpoint_id) if matching else None

    # ------------------------------------------------------------------ #
    def save(self, device: FleetDevice) -> DeviceCheckpoint:
        """Snapshot a device's learner; may evict older checkpoints."""
        if device.learner is None:
            raise SerializationError(
                f"device {device.device_id} has no learner to checkpoint"
            )
        self.directory.mkdir(parents=True, exist_ok=True)
        checkpoint_id = self._sequence
        self._sequence += 1
        path = save_pilote(
            device.learner,
            self.directory / f"device{device.device_id}-ckpt{checkpoint_id}.npz",
        )
        nbytes = path.stat().st_size
        if self.budget_bytes is not None and nbytes > self.budget_bytes:
            path.unlink()
            raise EdgeResourceError(
                f"checkpoint of device {device.device_id} ({nbytes} B) exceeds the "
                f"store budget of {self.budget_bytes} B"
            )
        checkpoint = DeviceCheckpoint(
            checkpoint_id=checkpoint_id,
            device_id=device.device_id,
            profile=device.profile,
            path=path,
            nbytes=int(nbytes),
        )
        self._checkpoints.append(checkpoint)
        self._evict_to_budget()
        return checkpoint

    def _evict_to_budget(self) -> None:
        if self.budget_bytes is None:
            return
        while self.total_bytes > self.budget_bytes and len(self._checkpoints) > 1:
            evicted = self._checkpoints.pop(0)
            evicted.path.unlink(missing_ok=True)
            logger.info(
                "evicted checkpoint %d of device %d (%d B) to stay under budget",
                evicted.checkpoint_id,
                evicted.device_id,
                evicted.nbytes,
            )

    # ------------------------------------------------------------------ #
    def restore(
        self,
        checkpoint: Union[DeviceCheckpoint, int],
        *,
        device_id: Optional[int] = None,
        profile: Optional[DeviceProfile] = None,
    ) -> FleetDevice:
        """Materialise a fresh device from a checkpoint (crash/replace path).

        Parameters
        ----------
        checkpoint:
            A :class:`DeviceCheckpoint`, or a device id whose newest surviving
            checkpoint is used.
        device_id:
            Fleet id for the replacement (defaults to the original's id, so it
            can be swapped back in via ``FleetCoordinator.replace_device``).
        profile:
            Hardware profile of the replacement (defaults to the original's).
        """
        if not isinstance(checkpoint, DeviceCheckpoint):
            found = self.latest(int(checkpoint))
            if found is None:
                raise SerializationError(
                    f"no surviving checkpoint for device {checkpoint}"
                )
            checkpoint = found
        if not checkpoint.path.exists():
            raise SerializationError(
                f"checkpoint {checkpoint.checkpoint_id} of device "
                f"{checkpoint.device_id} is gone from disk (evicted?)"
            )
        # Touch for recency: restored checkpoints are the last to be evicted.
        if checkpoint in self._checkpoints:
            self._checkpoints.remove(checkpoint)
            self._checkpoints.append(checkpoint)
        replacement = FleetDevice(
            device_id=checkpoint.device_id if device_id is None else int(device_id),
            edge=EdgeDevice(profile or checkpoint.profile),
        )
        # Load under the replacement's dtype policy so the restored parameters
        # keep the exact on-device dtype (and serving stays bit-identical).
        with replacement.edge.precision():
            learner = load_pilote(checkpoint.path)
            replacement.adopt(learner)
            # Warm the serving caches now, not inside the first request: a
            # restored device usually replaces one that was mid-traffic, so
            # it should answer at full speed immediately (the rebuild is
            # counted in the engine's cache_refreshes as usual).
            engine = replacement.edge.engine
            assert engine is not None
            engine.warm()
        return replacement
