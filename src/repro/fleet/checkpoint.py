"""Checkpointed device state: snapshot, evict under budget, restore.

Fleet elasticity needs device state to outlive devices: a wearable dies, a
phone is replaced, a simulation wants to roll a device back.  The
:class:`CheckpointStore` persists each device's full PILOTE state as one
``.npz`` archive (via :func:`repro.core.persistence.save_pilote`, which builds
on :mod:`repro.utils.serialization`), keeps the archive set under a storage
budget with least-recently-used eviction, and can materialise a *fresh*
:class:`~repro.fleet.coordinator.FleetDevice` from any surviving checkpoint.

Restoration is exact: the restored device reproduces the original device's
predictions bit for bit (the npz round-trip is lossless and serving is
deterministic), which ``benchmarks/bench_fleet.py`` gates on.

``save(device, delta=True)`` writes a *delta* checkpoint against the
device's most recent surviving checkpoint: only the arrays that changed
since the base (plus a removed-key list) land on disk, which is how a
million-device simulation keeps periodic checkpoints affordable — an
incremental update that touched one class writes O(one class), not the full
learner.  Restoration resolves the delta chain transparently, and LRU
eviction *consolidates* any dependent delta into a full archive before its
base is unlinked, so every surviving checkpoint always restores.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.persistence import pilote_from_state, pilote_state
from repro.edge.device import DeviceProfile, EdgeDevice
from repro.exceptions import EdgeResourceError, SerializationError
from repro.fleet.coordinator import FleetDevice
from repro.utils.logging import get_logger
from repro.utils.serialization import load_npz_state, save_npz_state

PathLike = Union[str, Path]

logger = get_logger("fleet.checkpoint")


@dataclass(frozen=True)
class DeviceCheckpoint:
    """One snapshot of a device's learner state.

    Attributes
    ----------
    checkpoint_id:
        Store-unique id (monotonic sequence number).
    device_id:
        Fleet id of the device that was snapshotted.
    profile:
        The device's hardware profile, so a replacement can be provisioned
        with the same budgets and compute dtype.
    path:
        Location of the ``.npz`` archive on disk.
    nbytes:
        On-disk size of the archive (what the budget accounting uses).
    base_id:
        ``None`` for a full archive; for a delta checkpoint, the
        ``checkpoint_id`` of the base it must be merged onto.
    """

    checkpoint_id: int
    device_id: int
    profile: DeviceProfile
    path: Path
    nbytes: int
    base_id: Optional[int] = None


class CheckpointStore:
    """Budgeted store of device checkpoints with LRU eviction.

    Parameters
    ----------
    directory:
        Where archives are written (created on demand).
    budget_bytes:
        Total on-disk budget across all kept checkpoints; ``None`` disables
        eviction.  A single checkpoint larger than the budget raises
        :class:`~repro.exceptions.EdgeResourceError` — it could never be kept.
    """

    def __init__(self, directory: PathLike, *, budget_bytes: Optional[int] = None) -> None:
        if budget_bytes is not None and budget_bytes <= 0:
            raise EdgeResourceError(f"budget_bytes must be positive, got {budget_bytes}")
        self.directory = Path(directory)
        self.budget_bytes = budget_bytes
        self._sequence = 0
        # Insertion order doubles as recency order: index 0 = least recent.
        self._checkpoints: List[DeviceCheckpoint] = []
        #: Cumulative bytes written to disk (full + delta + consolidation) —
        #: the quantity delta checkpoints exist to shrink.
        self.bytes_written = 0

    @classmethod
    def for_profile(cls, directory: PathLike, profile: DeviceProfile) -> "CheckpointStore":
        """A store whose budget mirrors a device profile's storage budget."""
        return cls(directory, budget_bytes=profile.storage_bytes)

    # ------------------------------------------------------------------ #
    @property
    def total_bytes(self) -> int:
        return sum(c.nbytes for c in self._checkpoints)

    def checkpoints(self) -> List[DeviceCheckpoint]:
        """Kept checkpoints, least recently used first."""
        return list(self._checkpoints)

    def latest(self, device_id: int) -> Optional[DeviceCheckpoint]:
        """The newest surviving checkpoint of one device, if any."""
        matching = [c for c in self._checkpoints if c.device_id == device_id]
        return max(matching, key=lambda c: c.checkpoint_id) if matching else None

    def _by_id(self, checkpoint_id: int) -> Optional[DeviceCheckpoint]:
        for candidate in self._checkpoints:
            if candidate.checkpoint_id == checkpoint_id:
                return candidate
        return None

    # ------------------------------------------------------------------ #
    def save(self, device: FleetDevice, *, delta: bool = False) -> DeviceCheckpoint:
        """Snapshot a device's learner; may evict older checkpoints.

        With ``delta=True`` and a surviving earlier checkpoint of the same
        device, only the arrays that changed since that base are written
        (``base_id`` records the dependency); without a usable base the call
        silently degrades to a full archive.
        """
        if device.learner is None:
            raise SerializationError(
                f"device {device.device_id} has no learner to checkpoint"
            )
        self.directory.mkdir(parents=True, exist_ok=True)
        checkpoint_id = self._sequence
        self._sequence += 1
        state, metadata = pilote_state(device.learner)
        base = self.latest(device.device_id) if delta else None
        base_id: Optional[int] = None
        if base is not None and base.path.exists():
            base_state, _ = self._load_state(base)
            payload = {
                key: value
                for key, value in state.items()
                if key not in base_state or not np.array_equal(value, base_state[key])
            }
            metadata = dict(metadata)
            metadata["delta_base"] = base.checkpoint_id
            metadata["delta_removed"] = [k for k in base_state if k not in state]
            state = payload
            base_id = base.checkpoint_id
        path = save_npz_state(
            self.directory / f"device{device.device_id}-ckpt{checkpoint_id}.npz",
            state,
            metadata=metadata,
        )
        nbytes = path.stat().st_size
        self.bytes_written += int(nbytes)
        if self.budget_bytes is not None and nbytes > self.budget_bytes:
            path.unlink()
            raise EdgeResourceError(
                f"checkpoint of device {device.device_id} ({nbytes} B) exceeds the "
                f"store budget of {self.budget_bytes} B"
            )
        checkpoint = DeviceCheckpoint(
            checkpoint_id=checkpoint_id,
            device_id=device.device_id,
            profile=device.profile,
            path=path,
            nbytes=int(nbytes),
            base_id=base_id,
        )
        self._checkpoints.append(checkpoint)
        self._evict_to_budget()
        return checkpoint

    # ------------------------------------------------------------------ #
    def _load_state(self, checkpoint: DeviceCheckpoint) -> Tuple[Dict, Dict]:
        """Fully-resolved ``(state, metadata)`` of a checkpoint.

        Delta checkpoints are merged onto their base chain (drop removed
        keys, overlay changed arrays); the returned metadata is the
        checkpoint's own, delta bookkeeping included.
        """
        if not checkpoint.path.exists():
            raise SerializationError(
                f"checkpoint {checkpoint.checkpoint_id} of device "
                f"{checkpoint.device_id} is gone from disk (evicted?)"
            )
        payload = load_npz_state(checkpoint.path)
        metadata = payload.get("__metadata__")
        if not isinstance(metadata, dict) or "config" not in metadata:
            raise SerializationError(f"{checkpoint.path} is not a PILOTE checkpoint")
        state = {key: value for key, value in payload.items() if key != "__metadata__"}
        base_id = metadata.get("delta_base")
        if base_id is not None:
            base = self._by_id(int(base_id))
            if base is None:
                raise SerializationError(
                    f"checkpoint {checkpoint.checkpoint_id} depends on evicted "
                    f"base {base_id}"
                )
            base_state, _ = self._load_state(base)
            merged = {
                key: value
                for key, value in base_state.items()
                if key not in set(metadata.get("delta_removed", []))
            }
            merged.update(state)
            state = merged
        return state, metadata

    def _consolidate(self, dependent: DeviceCheckpoint) -> DeviceCheckpoint:
        """Rewrite a delta checkpoint as a self-contained full archive."""
        state, metadata = self._load_state(dependent)
        metadata = {
            key: value
            for key, value in metadata.items()
            if key not in ("delta_base", "delta_removed")
        }
        path = save_npz_state(dependent.path, state, metadata=metadata)
        nbytes = int(path.stat().st_size)
        self.bytes_written += nbytes
        logger.info(
            "consolidated delta checkpoint %d of device %d into a full archive "
            "(%d B) before its base is evicted",
            dependent.checkpoint_id,
            dependent.device_id,
            nbytes,
        )
        return dataclasses.replace(dependent, base_id=None, nbytes=nbytes)

    def _evict_to_budget(self) -> None:
        if self.budget_bytes is None:
            return
        while self.total_bytes > self.budget_bytes and len(self._checkpoints) > 1:
            evicted = self._checkpoints[0]
            # Keep every survivor restorable: deltas built on the evicted
            # archive become full archives first, while the base is still
            # resolvable (the loop re-checks the budget, so growth here just
            # evicts further).
            for position, dependent in enumerate(self._checkpoints):
                if dependent.base_id == evicted.checkpoint_id:
                    self._checkpoints[position] = self._consolidate(dependent)
            self._checkpoints.pop(0)
            evicted.path.unlink(missing_ok=True)
            logger.info(
                "evicted checkpoint %d of device %d (%d B) to stay under budget",
                evicted.checkpoint_id,
                evicted.device_id,
                evicted.nbytes,
            )

    # ------------------------------------------------------------------ #
    def restore(
        self,
        checkpoint: Union[DeviceCheckpoint, int],
        *,
        device_id: Optional[int] = None,
        profile: Optional[DeviceProfile] = None,
    ) -> FleetDevice:
        """Materialise a fresh device from a checkpoint (crash/replace path).

        Parameters
        ----------
        checkpoint:
            A :class:`DeviceCheckpoint`, or a device id whose newest surviving
            checkpoint is used.
        device_id:
            Fleet id for the replacement (defaults to the original's id, so it
            can be swapped back in via ``FleetCoordinator.replace_device``).
        profile:
            Hardware profile of the replacement (defaults to the original's).
        """
        if not isinstance(checkpoint, DeviceCheckpoint):
            found = self.latest(int(checkpoint))
            if found is None:
                raise SerializationError(
                    f"no surviving checkpoint for device {checkpoint}"
                )
            checkpoint = found
        state, metadata = self._load_state(checkpoint)  # raises if gone/broken
        # Touch for recency: restored checkpoints are the last to be evicted.
        if checkpoint in self._checkpoints:
            self._checkpoints.remove(checkpoint)
            self._checkpoints.append(checkpoint)
        replacement = FleetDevice(
            device_id=checkpoint.device_id if device_id is None else int(device_id),
            edge=EdgeDevice(profile or checkpoint.profile),
        )
        # Load under the replacement's dtype policy so the restored parameters
        # keep the exact on-device dtype (and serving stays bit-identical).
        with replacement.edge.precision():
            learner = pilote_from_state(state, metadata)
            replacement.adopt(learner)
            # Warm the serving caches now, not inside the first request: a
            # restored device usually replaces one that was mid-traffic, so
            # it should answer at full speed immediately (the rebuild is
            # counted in the engine's cache_refreshes as usual).
            engine = replacement.edge.engine
            assert engine is not None
            engine.warm()
        return replacement
