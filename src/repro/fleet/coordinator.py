"""Fleet provisioning and orchestration.

One :class:`~repro.edge.cloud.CloudServer` broadcast, many edge devices: the
coordinator provisions N :class:`~repro.edge.device.EdgeDevice`s from
(possibly heterogeneous) :class:`~repro.edge.device.DeviceProfile`s, deploys
the same :class:`~repro.edge.transfer.TransferPackage` to each of them, and
schedules per-device incremental updates.  Every device owns an *independent*
learner materialised from the package
(:meth:`~repro.edge.transfer.TransferPackage.instantiate_learner`), so devices
drift apart exactly as a real fleet does when new activities reach users at
different times.

Serving runs through each device's batched
:class:`~repro.edge.inference.InferenceEngine`; request distribution is the
router's job (:mod:`repro.fleet.router`).

At fleet sizes past a few thousand devices the flat coordinator's
one-learner-per-device model stops scaling, so
:class:`HierarchicalFleetCoordinator` restructures the fleet into a tree of
:class:`RegionCoordinator` shards: each region serves its devices from one
*pooled* copy-on-write template learner
(:meth:`~repro.edge.transfer.TransferPackage.instantiate_learner` with
``copy_arrays=False``) behind a single serving lane, and only devices that
actually drift (a scheduled increment, a checkpoint probe) are materialised
into real :class:`FleetDevice`\\ s — fleet memory scales with *distinct
states*, not device count, and a broadcast ships one package per region
instead of one per device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import PiloteConfig
from repro.core.pilote import PILOTE
from repro.data.dataset import HARDataset
from repro.edge.device import DEVICE_PROFILES, DeviceProfile, EdgeDevice
from repro.edge.transfer import TransferPackage
from repro.exceptions import ConfigurationError, NotFittedError
from repro.nn.trainer import TrainingHistory
from repro.utils.logging import get_logger
from repro.utils.rng import RandomState, resolve_rng, spawn_rngs

logger = get_logger("fleet.coordinator")


class FleetDevice:
    """One provisioned edge device: hardware budget + local learner + engine.

    The wrapper binds the three per-device pieces together — the
    :class:`EdgeDevice` storage/compute model, the device's own PILOTE learner
    and its serving engine — and runs learning and serving under the device
    profile's dtype policy.
    """

    def __init__(self, device_id: int, edge: EdgeDevice) -> None:
        self.device_id = int(device_id)
        self.edge = edge
        self.learner: Optional[PILOTE] = None
        self.increment_histories: List[TrainingHistory] = []

    # ------------------------------------------------------------------ #
    @property
    def profile(self) -> DeviceProfile:
        return self.edge.profile

    @property
    def engine(self):
        """The serving engine attached to the underlying edge device.

        Exposed so remote executors can snapshot it
        (:meth:`~repro.edge.inference.InferenceEngine.state_snapshot`);
        ``None`` until a package is deployed.
        """
        return self.edge.engine

    @property
    def serving_dtype(self) -> str:
        """Dtype :meth:`serve` runs under — the profile's compute dtype.

        Remote executors replicate it so off-process predictions stay
        bit-identical to the device's own.
        """
        return self.profile.compute_dtype

    @property
    def is_deployed(self) -> bool:
        return self.learner is not None and self.edge.engine is not None

    def deploy(
        self,
        package: TransferPackage,
        config: PiloteConfig,
        seed: RandomState = None,
        *,
        copy_arrays: bool = True,
        backend=None,
    ) -> None:
        """Receive the cloud broadcast: build the local learner and engine.

        ``copy_arrays=False`` shares the package's exemplar/prototype arrays
        copy-on-write instead of deep-copying them — the pooled-template path
        of :class:`HierarchicalFleetCoordinator` (safe: every learner
        mutation replaces whole per-class entries, never writes into rows).
        ``backend`` pins the learner's compute backend (forwarded to
        :meth:`TransferPackage.instantiate_learner`); coordinators pass a
        shared :class:`~repro.backend.sharded.ShardedBackend` here so every
        device's increment refresh runs over one shard pool.
        """
        with self.edge.precision():
            self.learner = package.instantiate_learner(
                config, seed=seed, copy_arrays=copy_arrays, backend=backend
            )
            self.edge.store("model", package.model_bytes)
            self.edge.store("support_set", package.support_set_bytes)
            self.edge.store("prototypes", package.prototype_bytes)
            self.edge.attach_inference(self.learner.inference_engine())

    def adopt(self, learner: PILOTE) -> None:
        """Install an already-built learner (checkpoint restore path)."""
        with self.edge.precision():
            self.learner = learner
            self.edge.store("model", learner.model_nbytes())
            self.edge.store("support_set", learner.support_set_nbytes())
            self.edge.store("prototypes", learner.prototypes.nbytes())
            self.edge.attach_inference(learner.inference_engine())

    # ------------------------------------------------------------------ #
    def serve(self, windows: np.ndarray) -> np.ndarray:
        """Serve a batch of windows at this device's compute dtype."""
        with self.edge.precision():
            return self.edge.serve(windows)

    #: The event-loop scheduler and legacy router both call ``infer`` on a
    #: device-like target; for a fleet device it is simply :meth:`serve`.
    infer = serve

    def learn_new_activity(
        self,
        new_train: HARDataset,
        new_validation: Optional[HARDataset] = None,
    ) -> TrainingHistory:
        """On-device incremental update; refreshes the storage ledger."""
        if self.learner is None:
            raise NotFittedError(
                f"device {self.device_id} has no learner; deploy a package first"
            )
        with self.edge.precision():
            history = self.learner.learn_new_classes(new_train, new_validation)
            self.edge.store("support_set", self.learner.support_set_nbytes())
            self.edge.store("prototypes", self.learner.prototypes.nbytes())
        self.increment_histories.append(history)
        return history

    def accuracy(self, dataset: HARDataset) -> float:
        """Plain accuracy of this device's learner on a labelled dataset."""
        if self.learner is None:
            raise NotFittedError(f"device {self.device_id} has no learner")
        with self.edge.precision():
            return self.learner.evaluate(dataset)

    def describe(self) -> Dict[str, object]:
        return {
            "device_id": self.device_id,
            "profile": self.profile.name,
            "storage_used": self.edge.storage_used,
            "storage_free": self.edge.storage_free,
            "classes": [] if self.learner is None else self.learner.classes_,
            "increments": len(self.increment_histories),
        }


@dataclass
class FleetAccuracyReport:
    """Per-device accuracy after (staggered) increments, plus divergence.

    ``weights`` (optional) gives each entry a device multiplicity — the
    hierarchical coordinator evaluates every *distinct state* once (one
    pooled template per region, each drifted device individually) and
    weights it by how many devices share it, so the mean/std describe the
    whole fleet, not the handful of evaluations.  Without weights every
    entry counts once, matching the historical flat behaviour exactly.
    """

    per_device: Dict[int, float]
    weights: Optional[Dict[int, float]] = None

    def _arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        keys = list(self.per_device)
        values = np.asarray([self.per_device[k] for k in keys], dtype=np.float64)
        if self.weights is None:
            return values, np.ones(len(keys))
        return values, np.asarray(
            [self.weights.get(k, 1.0) for k in keys], dtype=np.float64
        )

    @property
    def n_devices(self) -> float:
        """Total device multiplicity behind the report."""
        _, weights = self._arrays()
        return float(weights.sum())

    @property
    def mean(self) -> float:
        values, weights = self._arrays()
        return float(np.average(values, weights=weights))

    @property
    def std(self) -> float:
        values, weights = self._arrays()
        mean = np.average(values, weights=weights)
        return float(np.sqrt(np.average((values - mean) ** 2, weights=weights)))

    @property
    def spread(self) -> float:
        """Max − min accuracy across the fleet (the divergence headline)."""
        values = list(self.per_device.values())
        return float(max(values) - min(values))

    def summary(self) -> Dict[str, float]:
        return {"mean": self.mean, "std": self.std, "spread": self.spread}


@dataclass
class TransferLedger:
    """Bytes that crossed the (simulated) cloud → edge network.

    One broadcast on the flat coordinator ships the package once *per
    device*; the hierarchical coordinator ships once *per region* and
    materialises devices locally from the region template — this ledger is
    where that difference becomes measurable (``pilote fleet-sim`` prints it
    and ``benchmarks/bench_fleet_scale.py`` gates on it).
    """

    deploy_bytes: int = 0
    deploy_shipments: int = 0

    def record_deploy(self, nbytes: int, shipments: int = 1) -> None:
        self.deploy_bytes += int(nbytes) * int(shipments)
        self.deploy_shipments += int(shipments)


class FleetCoordinator:
    """Provisions, deploys and schedules a fleet of edge devices.

    Parameters
    ----------
    config:
        PILOTE configuration shared by every device learner.
    profiles:
        Device profiles to cycle through while provisioning; defaults to the
        stock smartphone profile for every device.
    seed:
        Root seed; per-device learner streams are spawned from it so the
        fleet is reproducible end to end.
    backend:
        Compute backend every deployed learner is pinned to.  Pass a single
        :class:`~repro.backend.sharded.ShardedBackend` *instance* to shard
        each device's increment refresh (herding, prototype recompute) over
        one shared worker pool — learners borrow it, so closing it stays the
        coordinator owner's job.  ``None`` keeps the ambient backend and is
        bit-exact with the sharded path.
    """

    def __init__(
        self,
        config: Optional[PiloteConfig] = None,
        *,
        profiles: Optional[Sequence[DeviceProfile]] = None,
        seed: RandomState = None,
        backend=None,
    ) -> None:
        self.config = config or PiloteConfig()
        self.backend = backend
        self.profiles = tuple(profiles) if profiles else (DEVICE_PROFILES["smartphone"],)
        self._root_rng = resolve_rng(seed)
        self.devices: List[FleetDevice] = []
        self.package: Optional[TransferPackage] = None
        self.transfers = TransferLedger()
        self._pending_increments: List[Tuple[int, int, HARDataset, Optional[HARDataset]]] = []
        self._rollout = None  # ActiveRollout when deploy(..., rollout=...) ran
        self._device_index: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.devices)

    def _reindex(self) -> None:
        self._device_index = {
            device.device_id: position for position, device in enumerate(self.devices)
        }

    def device(self, device_id: int) -> FleetDevice:
        """Look up one device by id (O(1) via the id → position index)."""
        device_id = int(device_id)
        position = self._device_index.get(device_id)
        if position is not None and position < len(self.devices):
            candidate = self.devices[position]
            if candidate.device_id == device_id:
                return candidate
        # Index went stale (external list surgery) — rebuild once and retry.
        self._reindex()
        position = self._device_index.get(device_id)
        if position is not None:
            return self.devices[position]
        raise ConfigurationError(f"no device with id {device_id} in the fleet")

    def provision(
        self, n_devices: int, profiles: Optional[Sequence[DeviceProfile]] = None
    ) -> List[FleetDevice]:
        """Add ``n_devices`` fresh devices, cycling through the profile list."""
        if n_devices <= 0:
            raise ConfigurationError(f"n_devices must be positive, got {n_devices}")
        pool = tuple(profiles) if profiles else self.profiles
        created = []
        next_id = max((d.device_id for d in self.devices), default=-1) + 1
        for index in range(n_devices):
            profile = pool[index % len(pool)]
            device = FleetDevice(next_id + index, EdgeDevice(profile))
            self._device_index[device.device_id] = len(self.devices)
            self.devices.append(device)
            created.append(device)
        logger.info("provisioned %d devices (%d total)", n_devices, len(self.devices))
        return created

    def deploy(self, package: TransferPackage, rollout=None) -> None:
        """Deploy one transfer package across the fleet.

        Without a ``rollout`` policy this is the historical broadcast: every
        not-yet-deployed device receives the package at once.  With one — a
        :class:`~repro.serving.rollout.RolloutPolicy` instance or registry
        name (``"all-at-once"``, ``"staged"``, ``"ab"``) — the policy plans
        which devices receive the package at which stage; stage 0 is applied
        immediately and :meth:`advance_rollout` applies the rest.  Cohort
        labels from the plan feed :meth:`rollout_report`.
        """
        if not self.devices:
            raise ConfigurationError("provision() must run before deploy()")
        if rollout is None:
            targets = [d for d in self.devices if not d.is_deployed]
            self._deploy_to(targets, package)
            self._rollout = None
        else:
            from repro.serving.rollout import ActiveRollout, make_rollout_policy

            policy = make_rollout_policy(rollout)
            plan = policy.plan([d.device_id for d in self.devices], self._root_rng)
            self._deploy_to([self.device(i) for i in plan.stages[0]], package)
            self._rollout = ActiveRollout(policy=policy, plan=plan, package=package)
            logger.info(
                "rollout %r: stage 0/%d deployed to %d devices",
                policy.name,
                plan.n_stages,
                len(plan.stages[0]),
            )
        self.package = package

    def _deploy_to(self, targets: Sequence[FleetDevice], package: TransferPackage) -> None:
        seeds = spawn_rngs(self._root_rng, len(targets))
        for device, device_rng in zip(targets, seeds):
            device.deploy(package, self.config, seed=device_rng, backend=self.backend)
        self.transfers.record_deploy(package.total_bytes, len(targets))
        logger.info(
            "deployed %.2f KB package to %d devices",
            package.total_bytes / 1024,
            len(targets),
        )

    # ------------------------------------------------------------------ #
    # staged rollout
    # ------------------------------------------------------------------ #
    @property
    def active_rollout(self):
        """The rollout in progress, or ``None``."""
        return self._rollout

    def cohort_of(self, device_id: int) -> Optional[str]:
        """Rollout cohort label of one device (``None`` without a rollout)."""
        if self._rollout is None:
            return None
        return self._rollout.plan.cohorts.get(int(device_id))

    def advance_rollout(self) -> List[int]:
        """Deploy the next rollout stage; returns the newly deployed ids.

        Returns an empty list once the plan is exhausted (the rollout stays
        recorded for cohort reporting).  Raises
        :class:`~repro.exceptions.ConfigurationError` when no rollout is
        active.
        """
        if self._rollout is None:
            raise ConfigurationError("no rollout in progress; deploy(..., rollout=...) first")
        if self._rollout.complete:
            return []
        stage = self._rollout.plan.stages[self._rollout.next_stage]
        self._deploy_to([self.device(i) for i in stage], self._rollout.package)
        self._rollout.next_stage += 1
        logger.info(
            "rollout %r: stage %d/%d deployed to %d devices",
            self._rollout.policy.name,
            self._rollout.next_stage - 1,
            self._rollout.plan.n_stages,
            len(stage),
        )
        return list(stage)

    def rollout_report(self, dataset: Optional[HARDataset] = None, serving=None):
        """Per-cohort accuracy and latency across the current rollout.

        ``dataset`` (optional) is evaluated on every *deployed* device's
        learner for per-cohort accuracy; ``serving`` (an optional
        :class:`~repro.fleet.router.RoutingReport`, e.g.
        ``client.report()``) contributes per-cohort request counts and
        mean/p99 simulated latency.
        """
        from repro.serving.rollout import CohortReport, RolloutReport

        if self._rollout is None:
            raise ConfigurationError("no rollout in progress; deploy(..., rollout=...) first")
        cohorts = self._rollout.plan.cohorts
        report = RolloutReport(policy=self._rollout.policy.name)
        for device in self.devices:
            cohort = cohorts.get(device.device_id)
            if cohort is None:
                continue
            row = report.per_cohort.setdefault(
                cohort, CohortReport(cohort=cohort, device_ids=[], n_deployed=0)
            )
            row.device_ids.append(device.device_id)
            if device.is_deployed:
                row.n_deployed += 1
        if dataset is not None:
            for row in report.per_cohort.values():
                accuracies = [
                    self.device(i).accuracy(dataset)
                    for i in row.device_ids
                    if self.device(i).is_deployed
                ]
                row.accuracy = float(np.mean(accuracies)) if accuracies else None
        if serving is not None:
            for row in report.per_cohort.values():
                stats = [
                    serving.per_device[i]
                    for i in row.device_ids
                    if i in serving.per_device
                ]
                row.requests = int(sum(s.requests for s in stats))
                if row.requests:
                    row.mean_latency_seconds = (
                        sum(s.total_latency_seconds for s in stats) / row.requests
                    )
                latencies = [l for s in stats for l in s.latencies]
                if latencies:
                    row.p99_latency_seconds = float(
                        np.percentile(np.asarray(latencies), 99.0)
                    )
        return report

    def replace_device(self, device_id: int, replacement: FleetDevice) -> FleetDevice:
        """Swap a (crashed) device for its replacement, keeping the id slot."""
        current = self.device(device_id)  # raises ConfigurationError when absent
        position = self._device_index[current.device_id]
        self.devices[position] = replacement
        del self._device_index[current.device_id]
        self._device_index[replacement.device_id] = position
        return replacement

    # ------------------------------------------------------------------ #
    # staggered incremental updates
    # ------------------------------------------------------------------ #
    def schedule_increment(
        self,
        device_id: int,
        tick: int,
        new_train: HARDataset,
        new_validation: Optional[HARDataset] = None,
    ) -> None:
        """Queue an incremental update for one device at a simulation tick."""
        self.device(device_id)  # validate the id eagerly
        self._pending_increments.append((int(tick), device_id, new_train, new_validation))

    def pending_increments(self) -> List[Tuple[int, int]]:
        """``(tick, device_id)`` pairs still waiting to run."""
        return [(tick, device_id) for tick, device_id, _, _ in self._pending_increments]

    def run_due_increments(self, tick: int) -> Dict[int, TrainingHistory]:
        """Run every queued increment whose tick has arrived."""
        due = [entry for entry in self._pending_increments if entry[0] <= tick]
        self._pending_increments = [
            entry for entry in self._pending_increments if entry[0] > tick
        ]
        histories: Dict[int, TrainingHistory] = {}
        for _, device_id, new_train, new_validation in sorted(due, key=lambda e: e[:2]):
            device = self.device(device_id)
            histories[device_id] = device.learn_new_activity(new_train, new_validation)
            logger.info(
                "device %d integrated %d new-class samples at tick %d",
                device_id,
                new_train.n_samples,
                tick,
            )
        return histories

    # ------------------------------------------------------------------ #
    def accuracy_report(self, dataset: HARDataset) -> FleetAccuracyReport:
        """Per-device accuracy on one test set — the fleet divergence view."""
        if not self.devices:
            raise ConfigurationError("the fleet has no devices")
        return FleetAccuracyReport(
            per_device={d.device_id: d.accuracy(dataset) for d in self.devices}
        )

    def describe(self) -> List[Dict[str, object]]:
        return [device.describe() for device in self.devices]


@dataclass
class RegionCoordinator:
    """One shard of the hierarchical fleet: a contiguous id range ``[start, stop)``.

    Every device in the region shares the region's device profile and — until
    it drifts — the region's pooled copy-on-write template learner, served
    through one synthetic serving lane (a :class:`FleetDevice` carrying a
    *negative* id so it can never collide with a real device id, which are
    always ≥ 0).  Devices that drift away from the template (a scheduled
    increment, a checkpoint probe) are *materialised* into ``materialized``
    and served individually from then on.
    """

    region_id: int
    start: int
    stop: int
    profile: DeviceProfile
    lane: Optional[FleetDevice] = None
    materialized: Dict[int, FleetDevice] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.lane is None:
            self.lane = FleetDevice(-(self.region_id + 1), EdgeDevice(self.profile))

    @property
    def n_devices(self) -> int:
        return self.stop - self.start

    @property
    def n_pooled(self) -> int:
        """Devices still served from the pooled template."""
        return self.n_devices - len(self.materialized)

    def owns(self, device_id: int) -> bool:
        return self.start <= int(device_id) < self.stop

    def describe(self) -> Dict[str, object]:
        return {
            "region_id": self.region_id,
            "device_range": (self.start, self.stop),
            "profile": self.profile.name,
            "n_devices": self.n_devices,
            "n_pooled": self.n_pooled,
            "materialized": sorted(self.materialized),
        }


class HierarchicalFleetCoordinator(FleetCoordinator):
    """A fleet restructured as a tree of :class:`RegionCoordinator` shards.

    The flat :class:`FleetCoordinator` materialises one learner per device,
    which stops being tractable somewhere past a few thousand devices (a
    million devices would hold a million copies of the same support set).
    The hierarchical coordinator exploits that devices which received the
    same broadcast and ran the same increments are *bit-identical*: each
    region serves its devices from one pooled template learner instantiated
    copy-on-write from the :class:`~repro.edge.transfer.TransferPackage`
    (``copy_arrays=False``), and only devices that actually diverge are
    materialised.  Memory scales with the number of *distinct states*
    (regions + drifted devices), not with device count, and one broadcast
    ships one package per region instead of one per device.

    Compatibility with the flat coordinator:

    - ``device(i)`` materialises device ``i`` on demand; the materialised
      learner trains from the *same* spawned RNG stream flat device ``i``
      would use, so a small fleet run hierarchically is bit-exact with the
      flat coordinator (``benchmarks/bench_fleet_scale.py`` gates on this).
    - ``schedule_increment``/``run_due_increments`` are inherited unchanged —
      validation materialises the target device.
    - ``deploy(..., rollout=...)`` stages over *regions* (device-granular
      policies that route users, e.g. ``"ab"``, are rejected).
    - ``accuracy_report`` evaluates each distinct state once and weights it
      by device multiplicity.

    Serving integrates through :meth:`serving_lanes` (one lane per region
    plus every materialised device) and :meth:`lane_map`, which
    :class:`~repro.serving.routing.RegionalRouting` uses to keep user → device
    hashing identical to the flat fleet's ``"hash"`` policy.
    """

    def __init__(
        self,
        config: Optional[PiloteConfig] = None,
        *,
        profiles: Optional[Sequence[DeviceProfile]] = None,
        seed: RandomState = None,
        n_regions: Optional[int] = None,
        backend=None,
    ) -> None:
        super().__init__(config, profiles=profiles, seed=seed, backend=backend)
        self.regions: List[RegionCoordinator] = []
        self.requested_regions = n_regions
        self._n_devices = 0
        self._region_size = 0
        self._device_seeds: Optional[np.ndarray] = None
        self._lanes: Optional[List[FleetDevice]] = None

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._n_devices

    @property
    def n_regions(self) -> int:
        return len(self.regions)

    def provision(
        self, n_devices: int, profiles: Optional[Sequence[DeviceProfile]] = None
    ) -> List[RegionCoordinator]:
        """Shard ``n_devices`` ids into regions; returns the region list.

        Unlike the flat coordinator a hierarchical fleet is provisioned
        exactly once — regions own contiguous id ranges, so growing the fleet
        later would reshuffle ownership.  Profiles cycle per *region* (every
        device in a region shares its profile; pooling requires it).
        """
        if self.regions:
            raise ConfigurationError("a hierarchical fleet is provisioned exactly once")
        if n_devices <= 0:
            raise ConfigurationError(f"n_devices must be positive, got {n_devices}")
        pool = tuple(profiles) if profiles else self.profiles
        requested = self.requested_regions if self.requested_regions else min(64, n_devices)
        if requested <= 0:
            raise ConfigurationError(f"n_regions must be positive, got {requested}")
        requested = min(int(requested), int(n_devices))
        self._region_size = -(-int(n_devices) // requested)  # ceil division
        n_regions = -(-int(n_devices) // self._region_size)
        for region_id in range(n_regions):
            start = region_id * self._region_size
            stop = min(start + self._region_size, int(n_devices))
            self.regions.append(
                RegionCoordinator(region_id, start, stop, pool[region_id % len(pool)])
            )
        self._n_devices = int(n_devices)
        logger.info(
            "provisioned %d devices across %d regions (<= %d devices each)",
            n_devices,
            n_regions,
            self._region_size,
        )
        return list(self.regions)

    # ------------------------------------------------------------------ #
    def deploy(self, package: TransferPackage, rollout=None) -> None:
        """Broadcast the package region-by-region (one shipment per region)."""
        if not self.regions:
            raise ConfigurationError("provision() must run before deploy()")
        if self._device_seeds is None:
            # The exact draw the flat coordinator's spawn_rngs() would make
            # for a full broadcast, so materialised device i trains from the
            # identical RNG stream as flat device i (bit-exact equivalence).
            self._device_seeds = self._root_rng.integers(
                0, 2**63 - 1, size=self._n_devices, dtype=np.int64
            )
        if rollout is None:
            self._deploy_regions(self.regions, package)
            self._rollout = None
        else:
            from repro.serving.rollout import ActiveRollout, make_rollout_policy

            policy = make_rollout_policy(rollout)
            if policy.routes_users:
                raise ConfigurationError(
                    f"rollout policy {policy.name!r} routes individual users and "
                    "cannot drive a region-granular hierarchical rollout"
                )
            plan = policy.plan([r.region_id for r in self.regions], self._root_rng)
            self._deploy_regions([self.regions[i] for i in plan.stages[0]], package)
            self._rollout = ActiveRollout(policy=policy, plan=plan, package=package)
            logger.info(
                "rollout %r: stage 0/%d deployed to %d regions",
                policy.name,
                plan.n_stages,
                len(plan.stages[0]),
            )
        self.package = package

    def _deploy_regions(
        self, regions: Sequence[RegionCoordinator], package: TransferPackage
    ) -> None:
        for region in regions:
            if not region.lane.is_deployed:
                region.lane.deploy(
                    package, self.config, seed=0, copy_arrays=False,
                    backend=self.backend,
                )
            for device in region.materialized.values():
                if not device.is_deployed:
                    device.deploy(
                        package,
                        self.config,
                        seed=resolve_rng(
                            int(self._device_seeds[device.device_id])
                        ),
                        copy_arrays=False,
                        backend=self.backend,
                    )
        self.transfers.record_deploy(package.total_bytes, len(regions))
        logger.info(
            "deployed %.2f KB package to %d regions",
            package.total_bytes / 1024,
            len(regions),
        )

    def advance_rollout(self) -> List[int]:
        """Deploy the next rollout stage; returns the newly deployed region ids."""
        if self._rollout is None:
            raise ConfigurationError("no rollout in progress; deploy(..., rollout=...) first")
        if self._rollout.complete:
            return []
        stage = self._rollout.plan.stages[self._rollout.next_stage]
        self._deploy_regions([self.regions[i] for i in stage], self._rollout.package)
        self._rollout.next_stage += 1
        return list(stage)

    def cohort_of(self, device_id: int) -> Optional[str]:
        """Rollout cohort of a device — its *region's* cohort label."""
        if self._rollout is None:
            return None
        return self._rollout.plan.cohorts.get(self.region_of(device_id).region_id)

    def rollout_report(self, dataset=None, serving=None):
        raise ConfigurationError(
            "per-device rollout reports are not available on a hierarchical fleet; "
            "use cohort_of() and describe() for region-level rollout state"
        )

    # ------------------------------------------------------------------ #
    def region_of(self, device_id: int) -> RegionCoordinator:
        """The region owning a (non-negative) device id."""
        device_id = int(device_id)
        if not 0 <= device_id < self._n_devices:
            raise ConfigurationError(f"no device with id {device_id} in the fleet")
        return self.regions[device_id // self._region_size]

    def device(self, device_id: int) -> FleetDevice:
        """Materialise (or fetch) one device out of its region's pool.

        The materialised learner is instantiated copy-on-write from the
        deployed package with the same per-device RNG stream the flat
        coordinator would have spawned, so everything downstream (increments,
        checkpoints, serving) behaves exactly as on a flat fleet.
        Materialisation is frozen once :meth:`serving_lanes` ran — new lanes
        would invalidate the routing table.
        """
        region = self.region_of(device_id)
        device_id = int(device_id)
        existing = region.materialized.get(device_id)
        if existing is not None:
            return existing
        if self._lanes is not None:
            raise ConfigurationError(
                "cannot materialise new devices after serving_lanes() froze the "
                "lane set; materialise (e.g. schedule increments) before serving"
            )
        device = FleetDevice(device_id, EdgeDevice(region.profile))
        if region.lane.is_deployed and self.package is not None:
            device.deploy(
                self.package,
                self.config,
                seed=resolve_rng(int(self._device_seeds[device_id])),
                copy_arrays=False,
                backend=self.backend,
            )
        region.materialized[device_id] = device
        return device

    def replace_device(self, device_id: int, replacement: FleetDevice) -> FleetDevice:
        """Swap a materialised (crashed) device for its replacement."""
        device_id = int(device_id)
        region = self.region_of(device_id)
        current = region.materialized.get(device_id)
        if current is None:
            raise ConfigurationError(
                f"device {device_id} is not materialised; only materialised "
                "devices can be replaced"
            )
        del region.materialized[device_id]
        region.materialized[int(replacement.device_id)] = replacement
        if self._lanes is not None:
            # In-place swap so the scheduler, which shares this list, sees it.
            self._lanes[self._lanes.index(current)] = replacement
        return replacement

    # ------------------------------------------------------------------ #
    # serving integration
    # ------------------------------------------------------------------ #
    def serving_lanes(self) -> List[FleetDevice]:
        """Freeze and return the serving lanes: region lanes, then drifted devices.

        Every region contributes its pooled template lane (position =
        ``region_id``), followed by all materialised devices in id order.
        :func:`repro.serving.client.serve` passes this list to the scheduler;
        the first call freezes materialisation so :meth:`lane_map` stays valid.
        """
        if self._lanes is None:
            lanes = [region.lane for region in self.regions]
            for region in self.regions:
                lanes.extend(region.materialized[i] for i in sorted(region.materialized))
            self._lanes = lanes
        return self._lanes

    def lane_map(self) -> np.ndarray:
        """``device id → serving-lane position`` (int64 vector of length N).

        Pooled devices map to their region's lane; materialised devices map
        to their own lane.  :class:`~repro.serving.routing.RegionalRouting`
        indexes this array with the hashed user id, which keeps the user →
        *device* assignment identical to flat ``"hash"`` routing — the lane
        merely serves whichever state that device currently holds.
        """
        lanes = self.serving_lanes()
        positions = {lane.device_id: pos for pos, lane in enumerate(lanes)}
        mapping = np.arange(self._n_devices, dtype=np.int64) // self._region_size
        for region in self.regions:
            for device_id in region.materialized:
                mapping[device_id] = positions[device_id]
        return mapping

    # ------------------------------------------------------------------ #
    def accuracy_report(self, dataset: HARDataset) -> FleetAccuracyReport:
        """Fleet accuracy: each distinct state once, weighted by multiplicity."""
        if not self.regions:
            raise ConfigurationError("the fleet has no devices")
        per_device: Dict[int, float] = {}
        weights: Dict[int, float] = {}
        for region in self.regions:
            if region.lane.is_deployed and region.n_pooled > 0:
                per_device[region.lane.device_id] = region.lane.accuracy(dataset)
                weights[region.lane.device_id] = float(region.n_pooled)
            for device_id in sorted(region.materialized):
                device = region.materialized[device_id]
                if device.is_deployed:
                    per_device[device_id] = device.accuracy(dataset)
                    weights[device_id] = 1.0
        if not per_device:
            raise ConfigurationError("no deployed devices to evaluate; deploy() first")
        return FleetAccuracyReport(per_device=per_device, weights=weights)

    def describe(self) -> List[Dict[str, object]]:
        return [region.describe() for region in self.regions]


#: Short alias used in examples and docs.
Fleet = FleetCoordinator
