"""Fleet provisioning and orchestration.

One :class:`~repro.edge.cloud.CloudServer` broadcast, many edge devices: the
coordinator provisions N :class:`~repro.edge.device.EdgeDevice`s from
(possibly heterogeneous) :class:`~repro.edge.device.DeviceProfile`s, deploys
the same :class:`~repro.edge.transfer.TransferPackage` to each of them, and
schedules per-device incremental updates.  Every device owns an *independent*
learner materialised from the package
(:meth:`~repro.edge.transfer.TransferPackage.instantiate_learner`), so devices
drift apart exactly as a real fleet does when new activities reach users at
different times.

Serving runs through each device's batched
:class:`~repro.edge.inference.InferenceEngine`; request distribution is the
router's job (:mod:`repro.fleet.router`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import PiloteConfig
from repro.core.pilote import PILOTE
from repro.data.dataset import HARDataset
from repro.edge.device import DEVICE_PROFILES, DeviceProfile, EdgeDevice
from repro.edge.transfer import TransferPackage
from repro.exceptions import ConfigurationError, NotFittedError
from repro.nn.trainer import TrainingHistory
from repro.utils.logging import get_logger
from repro.utils.rng import RandomState, resolve_rng, spawn_rngs

logger = get_logger("fleet.coordinator")


class FleetDevice:
    """One provisioned edge device: hardware budget + local learner + engine.

    The wrapper binds the three per-device pieces together — the
    :class:`EdgeDevice` storage/compute model, the device's own PILOTE learner
    and its serving engine — and runs learning and serving under the device
    profile's dtype policy.
    """

    def __init__(self, device_id: int, edge: EdgeDevice) -> None:
        self.device_id = int(device_id)
        self.edge = edge
        self.learner: Optional[PILOTE] = None
        self.increment_histories: List[TrainingHistory] = []

    # ------------------------------------------------------------------ #
    @property
    def profile(self) -> DeviceProfile:
        return self.edge.profile

    @property
    def engine(self):
        """The serving engine attached to the underlying edge device.

        Exposed so remote executors can snapshot it
        (:meth:`~repro.edge.inference.InferenceEngine.state_snapshot`);
        ``None`` until a package is deployed.
        """
        return self.edge.engine

    @property
    def serving_dtype(self) -> str:
        """Dtype :meth:`serve` runs under — the profile's compute dtype.

        Remote executors replicate it so off-process predictions stay
        bit-identical to the device's own.
        """
        return self.profile.compute_dtype

    @property
    def is_deployed(self) -> bool:
        return self.learner is not None and self.edge.engine is not None

    def deploy(
        self, package: TransferPackage, config: PiloteConfig, seed: RandomState = None
    ) -> None:
        """Receive the cloud broadcast: build the local learner and engine."""
        with self.edge.precision():
            self.learner = package.instantiate_learner(config, seed=seed)
            self.edge.store("model", package.model_bytes)
            self.edge.store("support_set", package.support_set_bytes)
            self.edge.store("prototypes", package.prototype_bytes)
            self.edge.attach_inference(self.learner.inference_engine())

    def adopt(self, learner: PILOTE) -> None:
        """Install an already-built learner (checkpoint restore path)."""
        with self.edge.precision():
            self.learner = learner
            self.edge.store("model", learner.model_nbytes())
            self.edge.store("support_set", learner.support_set_nbytes())
            self.edge.store("prototypes", learner.prototypes.nbytes())
            self.edge.attach_inference(learner.inference_engine())

    # ------------------------------------------------------------------ #
    def serve(self, windows: np.ndarray) -> np.ndarray:
        """Serve a batch of windows at this device's compute dtype."""
        with self.edge.precision():
            return self.edge.serve(windows)

    #: The event-loop scheduler and legacy router both call ``infer`` on a
    #: device-like target; for a fleet device it is simply :meth:`serve`.
    infer = serve

    def learn_new_activity(
        self,
        new_train: HARDataset,
        new_validation: Optional[HARDataset] = None,
    ) -> TrainingHistory:
        """On-device incremental update; refreshes the storage ledger."""
        if self.learner is None:
            raise NotFittedError(
                f"device {self.device_id} has no learner; deploy a package first"
            )
        with self.edge.precision():
            history = self.learner.learn_new_classes(new_train, new_validation)
            self.edge.store("support_set", self.learner.support_set_nbytes())
            self.edge.store("prototypes", self.learner.prototypes.nbytes())
        self.increment_histories.append(history)
        return history

    def accuracy(self, dataset: HARDataset) -> float:
        """Plain accuracy of this device's learner on a labelled dataset."""
        if self.learner is None:
            raise NotFittedError(f"device {self.device_id} has no learner")
        with self.edge.precision():
            return self.learner.evaluate(dataset)

    def describe(self) -> Dict[str, object]:
        return {
            "device_id": self.device_id,
            "profile": self.profile.name,
            "storage_used": self.edge.storage_used,
            "storage_free": self.edge.storage_free,
            "classes": [] if self.learner is None else self.learner.classes_,
            "increments": len(self.increment_histories),
        }


@dataclass
class FleetAccuracyReport:
    """Per-device accuracy after (staggered) increments, plus divergence."""

    per_device: Dict[int, float]

    @property
    def mean(self) -> float:
        return float(np.mean(list(self.per_device.values())))

    @property
    def std(self) -> float:
        return float(np.std(list(self.per_device.values())))

    @property
    def spread(self) -> float:
        """Max − min accuracy across the fleet (the divergence headline)."""
        values = list(self.per_device.values())
        return float(max(values) - min(values))

    def summary(self) -> Dict[str, float]:
        return {"mean": self.mean, "std": self.std, "spread": self.spread}


class FleetCoordinator:
    """Provisions, deploys and schedules a fleet of edge devices.

    Parameters
    ----------
    config:
        PILOTE configuration shared by every device learner.
    profiles:
        Device profiles to cycle through while provisioning; defaults to the
        stock smartphone profile for every device.
    seed:
        Root seed; per-device learner streams are spawned from it so the
        fleet is reproducible end to end.
    """

    def __init__(
        self,
        config: Optional[PiloteConfig] = None,
        *,
        profiles: Optional[Sequence[DeviceProfile]] = None,
        seed: RandomState = None,
    ) -> None:
        self.config = config or PiloteConfig()
        self.profiles = tuple(profiles) if profiles else (DEVICE_PROFILES["smartphone"],)
        self._root_rng = resolve_rng(seed)
        self.devices: List[FleetDevice] = []
        self.package: Optional[TransferPackage] = None
        self._pending_increments: List[Tuple[int, int, HARDataset, Optional[HARDataset]]] = []
        self._rollout = None  # ActiveRollout when deploy(..., rollout=...) ran

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.devices)

    def device(self, device_id: int) -> FleetDevice:
        for candidate in self.devices:
            if candidate.device_id == device_id:
                return candidate
        raise ConfigurationError(f"no device with id {device_id} in the fleet")

    def provision(
        self, n_devices: int, profiles: Optional[Sequence[DeviceProfile]] = None
    ) -> List[FleetDevice]:
        """Add ``n_devices`` fresh devices, cycling through the profile list."""
        if n_devices <= 0:
            raise ConfigurationError(f"n_devices must be positive, got {n_devices}")
        pool = tuple(profiles) if profiles else self.profiles
        created = []
        next_id = max((d.device_id for d in self.devices), default=-1) + 1
        for index in range(n_devices):
            profile = pool[index % len(pool)]
            device = FleetDevice(next_id + index, EdgeDevice(profile))
            self.devices.append(device)
            created.append(device)
        logger.info("provisioned %d devices (%d total)", n_devices, len(self.devices))
        return created

    def deploy(self, package: TransferPackage, rollout=None) -> None:
        """Deploy one transfer package across the fleet.

        Without a ``rollout`` policy this is the historical broadcast: every
        not-yet-deployed device receives the package at once.  With one — a
        :class:`~repro.serving.rollout.RolloutPolicy` instance or registry
        name (``"all-at-once"``, ``"staged"``, ``"ab"``) — the policy plans
        which devices receive the package at which stage; stage 0 is applied
        immediately and :meth:`advance_rollout` applies the rest.  Cohort
        labels from the plan feed :meth:`rollout_report`.
        """
        if not self.devices:
            raise ConfigurationError("provision() must run before deploy()")
        if rollout is None:
            targets = [d for d in self.devices if not d.is_deployed]
            self._deploy_to(targets, package)
            self._rollout = None
        else:
            from repro.serving.rollout import ActiveRollout, make_rollout_policy

            policy = make_rollout_policy(rollout)
            plan = policy.plan([d.device_id for d in self.devices], self._root_rng)
            self._deploy_to([self.device(i) for i in plan.stages[0]], package)
            self._rollout = ActiveRollout(policy=policy, plan=plan, package=package)
            logger.info(
                "rollout %r: stage 0/%d deployed to %d devices",
                policy.name,
                plan.n_stages,
                len(plan.stages[0]),
            )
        self.package = package

    def _deploy_to(self, targets: Sequence[FleetDevice], package: TransferPackage) -> None:
        seeds = spawn_rngs(self._root_rng, len(targets))
        for device, device_rng in zip(targets, seeds):
            device.deploy(package, self.config, seed=device_rng)
        logger.info(
            "deployed %.2f KB package to %d devices",
            package.total_bytes / 1024,
            len(targets),
        )

    # ------------------------------------------------------------------ #
    # staged rollout
    # ------------------------------------------------------------------ #
    @property
    def active_rollout(self):
        """The rollout in progress, or ``None``."""
        return self._rollout

    def cohort_of(self, device_id: int) -> Optional[str]:
        """Rollout cohort label of one device (``None`` without a rollout)."""
        if self._rollout is None:
            return None
        return self._rollout.plan.cohorts.get(int(device_id))

    def advance_rollout(self) -> List[int]:
        """Deploy the next rollout stage; returns the newly deployed ids.

        Returns an empty list once the plan is exhausted (the rollout stays
        recorded for cohort reporting).  Raises
        :class:`~repro.exceptions.ConfigurationError` when no rollout is
        active.
        """
        if self._rollout is None:
            raise ConfigurationError("no rollout in progress; deploy(..., rollout=...) first")
        if self._rollout.complete:
            return []
        stage = self._rollout.plan.stages[self._rollout.next_stage]
        self._deploy_to([self.device(i) for i in stage], self._rollout.package)
        self._rollout.next_stage += 1
        logger.info(
            "rollout %r: stage %d/%d deployed to %d devices",
            self._rollout.policy.name,
            self._rollout.next_stage - 1,
            self._rollout.plan.n_stages,
            len(stage),
        )
        return list(stage)

    def rollout_report(self, dataset: Optional[HARDataset] = None, serving=None):
        """Per-cohort accuracy and latency across the current rollout.

        ``dataset`` (optional) is evaluated on every *deployed* device's
        learner for per-cohort accuracy; ``serving`` (an optional
        :class:`~repro.fleet.router.RoutingReport`, e.g.
        ``client.report()``) contributes per-cohort request counts and
        mean/p99 simulated latency.
        """
        from repro.serving.rollout import CohortReport, RolloutReport

        if self._rollout is None:
            raise ConfigurationError("no rollout in progress; deploy(..., rollout=...) first")
        cohorts = self._rollout.plan.cohorts
        report = RolloutReport(policy=self._rollout.policy.name)
        for device in self.devices:
            cohort = cohorts.get(device.device_id)
            if cohort is None:
                continue
            row = report.per_cohort.setdefault(
                cohort, CohortReport(cohort=cohort, device_ids=[], n_deployed=0)
            )
            row.device_ids.append(device.device_id)
            if device.is_deployed:
                row.n_deployed += 1
        if dataset is not None:
            for row in report.per_cohort.values():
                accuracies = [
                    self.device(i).accuracy(dataset)
                    for i in row.device_ids
                    if self.device(i).is_deployed
                ]
                row.accuracy = float(np.mean(accuracies)) if accuracies else None
        if serving is not None:
            for row in report.per_cohort.values():
                stats = [
                    serving.per_device[i]
                    for i in row.device_ids
                    if i in serving.per_device
                ]
                row.requests = int(sum(s.requests for s in stats))
                if row.requests:
                    row.mean_latency_seconds = (
                        sum(s.total_latency_seconds for s in stats) / row.requests
                    )
                latencies = [l for s in stats for l in s.latencies]
                if latencies:
                    row.p99_latency_seconds = float(
                        np.percentile(np.asarray(latencies), 99.0)
                    )
        return report

    def replace_device(self, device_id: int, replacement: FleetDevice) -> FleetDevice:
        """Swap a (crashed) device for its replacement, keeping the id slot."""
        for index, candidate in enumerate(self.devices):
            if candidate.device_id == device_id:
                self.devices[index] = replacement
                return replacement
        raise ConfigurationError(f"no device with id {device_id} in the fleet")

    # ------------------------------------------------------------------ #
    # staggered incremental updates
    # ------------------------------------------------------------------ #
    def schedule_increment(
        self,
        device_id: int,
        tick: int,
        new_train: HARDataset,
        new_validation: Optional[HARDataset] = None,
    ) -> None:
        """Queue an incremental update for one device at a simulation tick."""
        self.device(device_id)  # validate the id eagerly
        self._pending_increments.append((int(tick), device_id, new_train, new_validation))

    def pending_increments(self) -> List[Tuple[int, int]]:
        """``(tick, device_id)`` pairs still waiting to run."""
        return [(tick, device_id) for tick, device_id, _, _ in self._pending_increments]

    def run_due_increments(self, tick: int) -> Dict[int, TrainingHistory]:
        """Run every queued increment whose tick has arrived."""
        due = [entry for entry in self._pending_increments if entry[0] <= tick]
        self._pending_increments = [
            entry for entry in self._pending_increments if entry[0] > tick
        ]
        histories: Dict[int, TrainingHistory] = {}
        for _, device_id, new_train, new_validation in sorted(due, key=lambda e: e[:2]):
            device = self.device(device_id)
            histories[device_id] = device.learn_new_activity(new_train, new_validation)
            logger.info(
                "device %d integrated %d new-class samples at tick %d",
                device_id,
                new_train.n_samples,
                tick,
            )
        return histories

    # ------------------------------------------------------------------ #
    def accuracy_report(self, dataset: HARDataset) -> FleetAccuracyReport:
        """Per-device accuracy on one test set — the fleet divergence view."""
        if not self.devices:
            raise ConfigurationError("the fleet has no devices")
        return FleetAccuracyReport(
            per_device={d.device_id: d.accuracy(dataset) for d in self.devices}
        )

    def describe(self) -> List[Dict[str, object]]:
        return [device.describe() for device in self.devices]


#: Short alias used in examples and docs.
Fleet = FleetCoordinator
