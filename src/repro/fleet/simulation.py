"""End-to-end fleet simulation: one cloud broadcast, many drifting devices.

This is the fleet-level counterpart of the paper's single-device pipeline and
the runner behind the ``pilote fleet-sim`` CLI subcommand:

1. the cloud pre-trains on the old activities and exports one
   :class:`~repro.edge.transfer.TransferPackage`;
2. the coordinator provisions N devices and deploys the package to each;
3. a seeded open-loop traffic stream (Zipf/bursty/uniform) is sharded across
   the fleet by user id while, at staggered ticks, each device integrates the
   held-out activity from its *own* share of the new-class data;
4. the run reports per-device serving stats, the fleet's aggregate simulated
   throughput, the per-device accuracy divergence, and a checkpoint → restore
   round-trip check on one device.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.data.streams import build_incremental_scenario
from repro.edge.cloud import CloudServer
from repro.evaluation.scenarios import FLEET_SCENARIO, FleetScenarioSpec
from repro.exceptions import ConfigurationError
from repro.experiments.common import ExperimentSettings, make_dataset
from repro.fleet.checkpoint import CheckpointStore
from repro.fleet.coordinator import (
    FleetAccuracyReport,
    FleetCoordinator,
    HierarchicalFleetCoordinator,
)
from repro.fleet.router import RoutingReport
from repro.fleet.traffic import TrafficGenerator, WorkloadSpec, staggered_schedule
from repro.utils.logging import get_logger
from repro.utils.rng import resolve_rng, spawn_rngs

logger = get_logger("fleet.simulation")

#: Past this many devices the simulation switches to the hierarchical
#: coordinator automatically (one pooled template per region, only drifting
#: devices materialised) — the flat one-learner-per-device model would not
#: fit in memory at, say, a million devices.
HIERARCHICAL_DEVICE_THRESHOLD = 1024

#: How many devices of a hierarchical fleet actually drift (receive a
#: staggered increment and are therefore materialised).  Spread evenly over
#: the id range; device 0 is always included so the checkpoint probe runs.
HIERARCHICAL_DRIFT_DEVICES = 16


def _peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes (0 if unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return 0
    # Linux reports kilobytes; macOS reports bytes.  Normalise heuristically.
    peak = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    return peak * 1024 if peak < 2**40 else peak


@dataclass
class FleetSimulationResult:
    """Everything one fleet simulation run produced."""

    n_devices: int
    routing: RoutingReport
    accuracy: FleetAccuracyReport
    increment_ticks: Dict[int, int]
    increment_samples: Dict[int, int]
    checkpoint_roundtrip_exact: bool
    device_rows: List[Dict[str, object]] = field(default_factory=list)
    routing_policy: str = "hash"
    scheduling_order: str = "fifo"
    deadline_ms: Optional[float] = None
    executor_name: str = "serial"
    n_regions: Optional[int] = None
    control_stats: Optional[Dict[str, object]] = None
    peak_rss_bytes: int = 0
    deploy_bytes: int = 0
    deploy_shipments: int = 0
    resync_bytes: int = 0
    resync_full: int = 0
    resync_delta: int = 0

    def to_text(self) -> str:
        # Concurrent executors measure real elapsed time; the serial default
        # models device-seconds on the simulated parallel clock.
        clock_note = (
            "measured wall clock" if self.routing.clock == "wall"
            else "simulated, devices in parallel"
        )
        region_note = (
            "" if self.n_regions is None else f" in {self.n_regions} regions"
        )
        lines = [
            "Fleet simulation: multi-device serving with staggered increments",
            "",
            f"devices: {self.n_devices}{region_note}  "
            f"(routing policy: {self.routing_policy}, "
            f"scheduling: {self.scheduling_order}, executor: {self.executor_name})",
            f"requests routed: {int(self.routing.total_requests)} "
            f"({int(self.routing.total_windows)} windows)",
            f"aggregate throughput: {self.routing.aggregate_throughput:.0f} windows/s "
            f"({clock_note})",
            f"p99 latency: {self.routing.p99_latency_seconds * 1e3:.2f} ms "
            f"({self.routing.clock})",
        ]
        breakdown = self.routing.deadline_breakdown()
        if self.deadline_ms is not None or breakdown["expired"] or breakdown["missed"]:
            lines.append(
                f"deadline SLO: {breakdown['served']} served in deadline, "
                f"{breakdown['missed']} missed, {breakdown['expired']} expired, "
                f"{breakdown['failed']} failed "
                f"(attainment {self.routing.deadline_attainment:.4f})"
            )
        if self.control_stats is not None:
            shed = self.routing.total_shed
            cancelled = self.routing.total_cancelled
            hedging = self.control_stats.get("hedging", {})
            autoscaler = self.control_stats.get("autoscaler", {})
            lines.append(
                "control plane: "
                f"{', '.join(self.control_stats.get('controllers', []))}; "
                f"shed {shed}, hedges {hedging.get('fired', 0)} "
                f"(cancelled {cancelled}), "
                f"resizes {autoscaler.get('actions', 0)}"
            )
        lines.extend([
            "",
            f"{'device':>7}{'profile':>14}{'requests':>10}{'throughput':>12}"
            f"{'latency ms':>12}{'queue':>7}{'inc@tick':>9}{'accuracy':>10}",
        ])
        for row in self.device_rows:
            lines.append(
                f"{row['device_id']:>7}{row['profile']:>14}{row['requests']:>10}"
                f"{row['throughput']:>12.0f}{row['mean_latency_ms']:>12.2f}"
                f"{row['max_queue_depth']:>7}{row['increment_tick']:>9}"
                f"{row['accuracy']:>10.4f}"
            )
        resync_note = (
            f"; executor re-sync {self.resync_bytes / 2**20:.2f} MB "
            f"({self.resync_full} full, {self.resync_delta} delta)"
            if self.resync_full or self.resync_delta
            else ""
        )
        lines.extend(
            [
                "",
                f"memory: peak RSS {self.peak_rss_bytes / 2**20:.1f} MB; "
                f"deploy shipped {self.deploy_bytes / 2**20:.2f} MB in "
                f"{self.deploy_shipments} shipments{resync_note}",
            ]
        )
        summary = self.accuracy.summary()
        lines.extend(
            [
                "",
                "per-device accuracy divergence after staggered increments:",
                f"  mean {summary['mean']:.4f}, std {summary['std']:.4f}, "
                f"spread (max-min) {summary['spread']:.4f}",
                f"checkpoint/restore round-trip reproduces predictions: "
                f"{self.checkpoint_roundtrip_exact}",
            ]
        )
        return "\n".join(lines)


def run(
    settings: Optional[ExperimentSettings] = None,
    *,
    scenario: FleetScenarioSpec = FLEET_SCENARIO,
    n_devices: Optional[int] = None,
    routing: Optional[str] = None,
    scheduling: Optional[str] = None,
    deadline_ms: Optional[float] = None,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    regions: Optional[int] = None,
    adaptive: bool = False,
) -> FleetSimulationResult:
    """Run one fleet simulation at the given experiment scale.

    ``routing`` picks the serving client's routing policy (``"hash"``,
    ``"least-loaded"``, ``"p2c"``); the default comes from the scenario.
    ``scheduling`` picks the queue order (``"fifo"`` or ``"edf"``) and
    ``deadline_ms`` attaches seeded per-request deadlines to the traffic
    (mean relative deadline in simulated milliseconds, mixed over
    urgent/normal/relaxed classes) so the run reports a deadline SLO
    breakdown.  ``executor`` picks where batches execute (``"serial"``
    inline on the simulated clock — the default — ``"thread"``, or
    ``"process"`` for a pool of ``workers`` real worker processes; the
    report's throughput/latency lines then carry measured wall-clock
    numbers instead of the simulated parallel clock).  ``regions`` forces the
    hierarchical coordinator with that many regional shards; without it, the
    simulation switches to hierarchical mode automatically past
    :data:`HIERARCHICAL_DEVICE_THRESHOLD` devices (which is what makes
    ``pilote fleet-sim --devices 1000000`` tractable).
    """
    settings = settings or ExperimentSettings.default()
    if n_devices is None:
        n_devices = scenario.n_devices
    if n_devices <= 0:
        raise ConfigurationError(f"n_devices must be positive, got {n_devices}")
    routing = routing or scenario.routing_policy
    scheduling = scheduling or "fifo"
    if deadline_ms is not None and deadline_ms <= 0:
        raise ConfigurationError(f"deadline_ms must be positive, got {deadline_ms}")
    if deadline_ms is not None and executor not in (None, "serial"):
        # The generated traffic anchors arrivals (and therefore absolute
        # deadlines) on the simulated tick clock, while thread/process
        # executors serve on the accumulating measured wall clock — mixing
        # the two would mass-expire every request after the first drain and
        # report a meaningless SLO.  Fail loudly instead.
        raise ConfigurationError(
            "deadline_ms requires the serial executor: the simulation's "
            "arrivals/deadlines are simulated-clock quantities, while "
            f"executor={executor!r} serves on the measured wall clock"
        )
    rng = resolve_rng(settings.seed)
    dataset = make_dataset(settings, rng=rng)
    data_scenario = build_incremental_scenario(
        dataset, [int(c) for c in scenario.new_classes], rng=rng
    )

    # 1. One cloud pre-training, one package for the whole fleet.
    cloud = CloudServer(settings.config, seed=settings.seed)
    cloud.pretrain(
        data_scenario.old_train,
        data_scenario.old_validation,
        exemplars_per_class=settings.exemplars_per_class,
    )
    package = cloud.export_package()

    # 2. Provision and deploy.
    hierarchical = regions is not None or n_devices > HIERARCHICAL_DEVICE_THRESHOLD
    if hierarchical:
        fleet: FleetCoordinator = HierarchicalFleetCoordinator(
            settings.config, seed=settings.seed, n_regions=regions
        )
    else:
        fleet = FleetCoordinator(settings.config, seed=settings.seed)
    fleet.provision(n_devices)
    fleet.deploy(package)

    # 3. Staggered increments: device i learns the new activity at its own
    #    tick from its own subsample, so the fleet genuinely drifts apart.
    #    Hierarchically only a fixed-size drift cohort (spread over the id
    #    range, always including device 0 for the checkpoint probe) gets an
    #    increment — scheduling one per device would materialise the whole
    #    fleet and defeat the pooling.
    if hierarchical:
        drift_ids = np.unique(
            np.linspace(
                0, n_devices - 1, num=min(n_devices, HIERARCHICAL_DRIFT_DEVICES)
            ).astype(np.int64)
        )
        schedule = {
            int(device_id): scenario.stagger_start_tick
            + rank * scenario.stagger_spacing_ticks
            for rank, device_id in enumerate(drift_ids)
        }
        increment_rngs = spawn_rngs(settings.seed, len(drift_ids))
        fractions = np.linspace(scenario.min_increment_fraction, 1.0, len(drift_ids))
        ranks = {int(device_id): rank for rank, device_id in enumerate(drift_ids)}
    else:
        schedule = staggered_schedule(
            n_devices,
            start_tick=scenario.stagger_start_tick,
            spacing_ticks=scenario.stagger_spacing_ticks,
        )
        increment_rngs = spawn_rngs(settings.seed, n_devices)
        fractions = np.linspace(scenario.min_increment_fraction, 1.0, n_devices)
        ranks = {device_id: device_id for device_id in schedule}
    increment_samples: Dict[int, int] = {}
    for device_id, tick in schedule.items():
        rank = ranks[device_id]
        n_samples = max(int(data_scenario.new_train.n_samples * fractions[rank]), 2)
        share = data_scenario.new_train.subsample(n_samples, rng=increment_rngs[rank])
        increment_samples[device_id] = share.n_samples
        fleet.schedule_increment(device_id, tick, share)

    # 4. Serve the open-loop traffic through the unified client's event-loop
    #    scheduler, applying increments at tick boundaries as they fall due.
    from repro.serving.client import serve  # deferred: serving imports fleet

    workload = WorkloadSpec(
        pattern=scenario.traffic_pattern,
        n_users=scenario.n_users,
        requests_per_tick=scenario.requests_per_tick,
        n_ticks=scenario.n_ticks,
        deadline_seconds=None if deadline_ms is None else deadline_ms / 1e3,
        # Urgent / normal / relaxed mix, so EDF has classes to discriminate.
        deadline_multipliers=(0.5, 1.0, 4.0),
    )
    traffic = TrafficGenerator(data_scenario.test, workload, seed=settings.seed)
    client = serve(
        fleet, routing=routing, scheduling=scheduling, seed=settings.seed,
        executor=executor, workers=workers, adaptive=adaptive,
    )
    try:
        for tick_index, requests in enumerate(traffic.ticks()):
            fleet.run_due_increments(tick_index)
            client.submit_many(requests)
            client.drain()  # per-tick drain keeps increments ordered between ticks
        fleet.run_due_increments(max(schedule.values()))  # anything past the stream
        routing_report = client.report()
        control_stats = client.control_stats()
        executor_instance = client.scheduler.executor
    finally:
        client.close()  # release executor worker pools, if any
    # Counters survive close(); an executor without them reports zeros.
    resync = getattr(executor_instance, "sync_stats", lambda: {})()

    # 5. Fleet-level evaluation + a crash/replace round-trip on device 0.
    accuracy = fleet.accuracy_report(data_scenario.test)
    probe = data_scenario.test.features[: min(256, data_scenario.test.n_samples)]
    device0 = fleet.device(0)
    with tempfile.TemporaryDirectory() as scratch:
        store = CheckpointStore(scratch)
        checkpoint = store.save(device0)
        restored = store.restore(checkpoint)
        roundtrip_exact = bool(
            np.array_equal(device0.infer(probe), restored.infer(probe))
        )

    device_rows = []
    if isinstance(fleet, HierarchicalFleetCoordinator):
        # One row per serving lane: pooled region lanes first (labelled by
        # region and multiplicity), then the materialised (drifted) devices.
        for lane in fleet.serving_lanes():
            stats = routing_report.per_device[lane.device_id]
            pooled = lane.device_id < 0
            region = (
                fleet.regions[-lane.device_id - 1]
                if pooled
                else fleet.region_of(lane.device_id)
            )
            device_rows.append(
                {
                    "device_id": (
                        f"R{region.region_id}x{region.n_pooled}"
                        if pooled
                        else lane.device_id
                    ),
                    "profile": lane.profile.name,
                    "requests": stats.requests,
                    "throughput": stats.throughput,
                    "mean_latency_ms": stats.mean_latency_seconds * 1e3,
                    "max_queue_depth": stats.max_queue_depth,
                    "increment_tick": schedule.get(lane.device_id, "-"),
                    "accuracy": accuracy.per_device.get(lane.device_id, float("nan")),
                }
            )
    else:
        for device in fleet.devices:
            stats = routing_report.per_device[device.device_id]
            device_rows.append(
                {
                    "device_id": device.device_id,
                    "profile": device.profile.name,
                    "requests": stats.requests,
                    "throughput": stats.throughput,
                    "mean_latency_ms": stats.mean_latency_seconds * 1e3,
                    "max_queue_depth": stats.max_queue_depth,
                    "increment_tick": schedule[device.device_id],
                    "accuracy": accuracy.per_device[device.device_id],
                }
            )
    logger.info(
        "fleet simulation: %d devices, %.0f windows/s aggregate, accuracy spread %.4f",
        n_devices,
        routing_report.aggregate_throughput,
        accuracy.spread,
    )
    return FleetSimulationResult(
        n_devices=n_devices,
        routing=routing_report,
        accuracy=accuracy,
        increment_ticks=dict(schedule),
        increment_samples=increment_samples,
        checkpoint_roundtrip_exact=roundtrip_exact,
        device_rows=device_rows,
        routing_policy=client.routing,
        scheduling_order=client.scheduling,
        deadline_ms=deadline_ms,
        executor_name=client.executor,
        n_regions=(
            fleet.n_regions if isinstance(fleet, HierarchicalFleetCoordinator) else None
        ),
        peak_rss_bytes=_peak_rss_bytes(),
        deploy_bytes=fleet.transfers.deploy_bytes,
        deploy_shipments=fleet.transfers.deploy_shipments,
        resync_bytes=int(resync.get("bytes_shipped", 0)),
        resync_full=int(resync.get("full_syncs", 0)),
        resync_delta=int(resync.get("delta_syncs", 0)),
        control_stats=control_stats,
    )
