"""Request routing and load balancing across a fleet of edge devices.

The router shards an open-loop stream of :class:`InferenceRequest`s across
devices **by user id** (a user's data always lands on the same device — the
MAGNETO privacy model requires it) and batches each device's share through its
:class:`~repro.edge.inference.InferenceEngine` in one call per tick.

Timing uses a simulated clock layered on measured compute: each per-device
batch is timed with the wall clock and converted to device-seconds through the
profile's ``relative_compute``, and devices drain their queues *in parallel*
in simulated time.  Aggregate fleet throughput is therefore
``total_windows / makespan`` where the makespan is the latest completion time
across devices — the quantity ``benchmarks/bench_fleet.py`` gates on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.fleet.coordinator import FleetDevice
from repro.fleet.traffic import InferenceRequest
from repro.utils.rng import RandomState, resolve_rng

# 64-bit mixing constants (splitmix64 finaliser) for the sharding hash.
_MIX1 = np.uint64(0xFF51AFD7ED558CCD)
_MIX2 = np.uint64(0xC4CEB9FE1A85EC53)
_SHIFT = np.uint64(33)


@dataclass
class DeviceStats:
    """Serving statistics for one device, accumulated by the router."""

    device_id: int
    profile: str
    requests: int = 0
    windows: int = 0
    batches: int = 0
    busy_seconds: float = 0.0        # simulated device-seconds of compute
    wall_seconds: float = 0.0        # measured engine wall clock
    total_latency_seconds: float = 0.0
    max_queue_depth: int = 0
    available_at: float = 0.0        # simulated time the device frees up

    @property
    def throughput(self) -> float:
        """Windows per simulated busy second on this device."""
        return self.windows / self.busy_seconds if self.busy_seconds > 0 else 0.0

    @property
    def mean_latency_seconds(self) -> float:
        return self.total_latency_seconds / self.requests if self.requests else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "requests": float(self.requests),
            "windows": float(self.windows),
            "batches": float(self.batches),
            "busy_seconds": self.busy_seconds,
            "throughput": self.throughput,
            "mean_latency_seconds": self.mean_latency_seconds,
            "max_queue_depth": float(self.max_queue_depth),
        }


@dataclass
class RoutingReport:
    """Fleet-level view over the per-device stats after a routed stream."""

    per_device: Dict[int, DeviceStats]
    total_requests: int = 0
    total_windows: int = 0

    @property
    def makespan_seconds(self) -> float:
        """Simulated time at which the last device finishes its queue."""
        return max((s.available_at for s in self.per_device.values()), default=0.0)

    @property
    def aggregate_throughput(self) -> float:
        """Windows per simulated second with devices draining in parallel."""
        makespan = self.makespan_seconds
        return self.total_windows / makespan if makespan > 0 else 0.0

    @property
    def engine_wall_seconds(self) -> float:
        """Measured (not simulated) engine compute across the fleet."""
        return sum(s.wall_seconds for s in self.per_device.values())

    def summary(self) -> Dict[str, float]:
        return {
            "devices": float(len(self.per_device)),
            "total_requests": float(self.total_requests),
            "total_windows": float(self.total_windows),
            "makespan_seconds": self.makespan_seconds,
            "aggregate_throughput": self.aggregate_throughput,
        }


class Router:
    """Shards inference requests across fleet devices and batches per device.

    Parameters
    ----------
    devices:
        The fleet's devices (each must have an engine attached before
        requests are dispatched to it).  When given a list — e.g.
        ``FleetCoordinator.devices`` — the router keeps a *live view* of it,
        so ``FleetCoordinator.replace_device`` takes effect for in-flight
        routing; the device *count* must stay fixed (it is the sharding
        modulus).
    seed:
        Seeds the sharding salt: the same seed always produces the same
        user → device assignment, different seeds rebalance differently.
    """

    def __init__(
        self, devices: Sequence[FleetDevice], *, seed: RandomState = None
    ) -> None:
        if not devices:
            raise ConfigurationError("the router needs at least one device")
        self._devices = devices if isinstance(devices, list) else list(devices)
        self._n_shards = len(devices)
        self._salt = np.uint64(resolve_rng(seed).integers(0, 2**63 - 1, dtype=np.int64))
        self._stats: Dict[int, DeviceStats] = {
            d.device_id: DeviceStats(device_id=d.device_id, profile=d.profile.name)
            for d in self._devices
        }
        self._total_requests = 0
        self._total_windows = 0

    # ------------------------------------------------------------------ #
    @property
    def n_devices(self) -> int:
        return len(self._devices)

    def shard(self, user_ids) -> np.ndarray:
        """Deterministic device index for each user id (vectorised).

        Uses a salted splitmix64 finaliser so the assignment is uniform over
        devices, stable per user, and reproducible from the router seed.
        """
        ids = np.atleast_1d(np.asarray(user_ids)).astype(np.uint64)
        v = ids + self._salt
        v ^= v >> _SHIFT
        v *= _MIX1
        v ^= v >> _SHIFT
        v *= _MIX2
        v ^= v >> _SHIFT
        return (v % np.uint64(self._n_shards)).astype(np.int64)

    # ------------------------------------------------------------------ #
    def dispatch_tick(
        self, requests: Sequence[InferenceRequest]
    ) -> List[Optional[np.ndarray]]:
        """Route one tick's arrivals; returns predictions aligned with input.

        Each device's share of the tick is concatenated into a single batch
        and served through the device engine in one call (the engine applies
        its own internal ``batch_size`` bound), which is what keeps the
        per-request overhead of the fleet layer small.
        """
        predictions: List[Optional[np.ndarray]] = [None] * len(requests)
        if not requests:
            return predictions
        if len(self._devices) != self._n_shards:
            raise ConfigurationError(
                f"the fleet changed size ({self._n_shards} -> {len(self._devices)}); "
                "build a new Router — the device count is the sharding modulus"
            )
        user_ids = np.fromiter(
            (r.user_id for r in requests), dtype=np.int64, count=len(requests)
        )
        assignment = self.shard(user_ids)
        arrival = min(r.arrival_seconds for r in requests)
        for position in range(self._n_shards):
            indices = np.flatnonzero(assignment == position)
            if indices.size == 0:
                continue
            device = self._devices[position]
            # setdefault: a replacement device (crash/restore) may carry a new
            # id; it inherits the shard but gets its own stats row.
            stats = self._stats.setdefault(
                device.device_id,
                DeviceStats(device_id=device.device_id, profile=device.profile.name),
            )
            batch_requests = [requests[i] for i in indices]
            windows = np.concatenate([r.features for r in batch_requests], axis=0)

            start = time.perf_counter()
            outputs = device.infer(windows)
            wall = time.perf_counter() - start
            service = wall / device.profile.relative_compute

            begin = max(stats.available_at, arrival)
            queue_depth = len(batch_requests) + (1 if stats.available_at > arrival else 0)
            completion = begin + service
            stats.available_at = completion
            stats.requests += len(batch_requests)
            stats.windows += int(windows.shape[0])
            stats.batches += 1
            stats.busy_seconds += service
            stats.wall_seconds += wall
            stats.max_queue_depth = max(stats.max_queue_depth, queue_depth)
            stats.total_latency_seconds += sum(
                completion - r.arrival_seconds for r in batch_requests
            )

            offset = 0
            for request, index in zip(batch_requests, indices):
                predictions[index] = outputs[offset:offset + request.n_windows]
                offset += request.n_windows
            self._total_requests += len(batch_requests)
            self._total_windows += int(windows.shape[0])
        return predictions

    def route(
        self, ticks: Iterable[Sequence[InferenceRequest]]
    ) -> RoutingReport:
        """Dispatch a whole stream of ticks and return the fleet report."""
        for requests in ticks:
            self.dispatch_tick(requests)
        return self.report()

    def report(self) -> RoutingReport:
        """Current routing statistics (stats keep accumulating afterwards)."""
        return RoutingReport(
            per_device=dict(self._stats),
            total_requests=self._total_requests,
            total_windows=self._total_windows,
        )


#: Alias emphasising the balancing role in docs and examples.
LoadBalancer = Router
