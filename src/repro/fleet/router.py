"""Request routing and load balancing across a fleet of edge devices.

The router shards an open-loop stream of :class:`InferenceRequest`s across
devices **by user id** (a user's data always lands on the same device — the
MAGNETO privacy model requires it) and batches each device's share through its
:class:`~repro.edge.inference.InferenceEngine` in one call per tick.

Timing uses a simulated clock layered on measured compute: each per-device
batch is timed with the wall clock and converted to device-seconds through the
profile's ``relative_compute``, and devices drain their queues *in parallel*
in simulated time.  Aggregate fleet throughput is therefore
``total_windows / makespan`` where the makespan is the latest completion time
across devices — the quantity ``benchmarks/bench_fleet.py`` gates on.

The synchronous per-tick drain here is the *legacy* serving surface: new code
should go through :mod:`repro.serving`, whose event-loop scheduler
(:class:`~repro.serving.EventLoopScheduler`) serves the same requests with
futures, deadlines and pluggable routing policies at no extra per-request
overhead (``benchmarks/bench_serving.py`` gates that).  The router stays for
its sharding hash (which :class:`~repro.serving.HashRouting` reuses) and for
callers of the tick-synchronous API.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.fleet.coordinator import FleetDevice
from repro.fleet.traffic import InferenceRequest
from repro.utils.clock import perf_seconds
from repro.utils.hashing import splitmix64
from repro.utils.rng import RandomState, resolve_rng

#: Rolling-window length (in deadline-carrying request outcomes) for the
#: recent-attainment signal.  Shared by the per-device rows, the fleet-level
#: aggregate, and the control plane's signal bus, so the stats endpoint and
#: the controllers read the same quantity.
ROLLING_WINDOW = 256


@dataclass
class DeviceStats:
    """Serving statistics for one device, accumulated by the router."""

    device_id: int
    profile: str
    requests: int = 0
    windows: int = 0
    batches: int = 0
    busy_seconds: float = 0.0        # simulated device-seconds of compute
    wall_seconds: float = 0.0        # measured engine wall clock
    total_latency_seconds: float = 0.0
    max_queue_depth: int = 0
    available_at: float = 0.0        # simulated time the device frees up
    #: Served requests that carried a deadline, and how many of those
    #: completed past it (service began in time but finished late).  Only
    #: the event-loop scheduler populates these; requests expired *before*
    #: service are counted fleet-wide in ``RoutingReport.total_expired``.
    deadline_requests: int = 0
    deadline_misses: int = 0
    #: Requests lost on this device to a raising engine/worker (the
    #: per-device view of ``RoutingReport.total_failed``).
    failures: int = 0
    #: Requests currently queued on this device's lane — a *live* gauge
    #: (not a counter) maintained by the event-loop scheduler at enqueue
    #: and service time; always 0 for the legacy tick drain.
    queue_depth: int = 0
    #: Rolling deadline outcomes (1 = met, 0 = missed/expired/rejected) for
    #: the most recent deadline-carrying requests on this lane, bounded to
    #: ``2 * ROLLING_WINDOW`` entries; :attr:`rolling_deadline_attainment`
    #: reads the last ``ROLLING_WINDOW``.  Only the event-loop scheduler
    #: populates it.
    recent_deadlines: List[int] = field(default_factory=list, repr=False)
    #: Per-request simulated latencies; populated by the event-loop scheduler
    #: (the legacy tick drain only tracks the aggregate) for percentile views.
    #: Bounded to the scheduler's most recent LATENCY_HISTORY_CAP requests.
    latencies: List[float] = field(default_factory=list, repr=False)
    #: Which clock the timing columns are on: ``"simulated"`` (the default —
    #: wall time scaled by ``relative_compute``, devices modeled as draining
    #: in parallel) or ``"wall"`` (measured elapsed time where the batch
    #: actually ran, set by the concurrent serving executors).  Lets reports
    #: distinguish modeled from measured latency.
    clock: str = "simulated"

    @property
    def throughput(self) -> float:
        """Windows per simulated busy second on this device."""
        return self.windows / self.busy_seconds if self.busy_seconds > 0 else 0.0

    @property
    def mean_latency_seconds(self) -> float:
        return self.total_latency_seconds / self.requests if self.requests else 0.0

    @property
    def rolling_deadline_attainment(self) -> float:
        """Fraction of the last ``ROLLING_WINDOW`` deadline-carrying
        requests on this lane that met their deadline; ``1.0`` with no
        recent deadline traffic (vacuously attained, matching the
        cumulative :attr:`RoutingReport.deadline_attainment` convention)."""
        recent = self.recent_deadlines[-ROLLING_WINDOW:]
        if not recent:
            return 1.0
        return sum(recent) / len(recent)

    def note_deadline(self, hit: bool) -> None:
        """Append one deadline outcome to the rolling window (bounded)."""
        recent = self.recent_deadlines
        recent.append(1 if hit else 0)
        if len(recent) > 2 * ROLLING_WINDOW:
            del recent[: len(recent) - ROLLING_WINDOW]

    def summary(self) -> Dict[str, float]:
        return {
            "requests": float(self.requests),
            "windows": float(self.windows),
            "batches": float(self.batches),
            "busy_seconds": self.busy_seconds,
            "throughput": self.throughput,
            "mean_latency_seconds": self.mean_latency_seconds,
            "max_queue_depth": float(self.max_queue_depth),
            "deadline_misses": float(self.deadline_misses),
        }

    # -- serialization -------------------------------------------------- #
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view of this row (native python scalars only).

        The bounded per-request latency history does not travel — it can be
        megabytes per device and every percentile consumers care about is
        already aggregated on the owning :class:`RoutingReport`.
        """
        return {
            "device_id": int(self.device_id),
            "profile": str(self.profile),
            "requests": int(self.requests),
            "windows": int(self.windows),
            "batches": int(self.batches),
            "busy_seconds": float(self.busy_seconds),
            "wall_seconds": float(self.wall_seconds),
            "total_latency_seconds": float(self.total_latency_seconds),
            "max_queue_depth": int(self.max_queue_depth),
            "available_at": float(self.available_at),
            "deadline_requests": int(self.deadline_requests),
            "deadline_misses": int(self.deadline_misses),
            "failures": int(self.failures),
            "queue_depth": int(self.queue_depth),
            "rolling_deadline_attainment": float(self.rolling_deadline_attainment),
            "rolling_window": min(len(self.recent_deadlines), ROLLING_WINDOW),
            "clock": str(self.clock),
            "throughput": float(self.throughput),
            "mean_latency_seconds": float(self.mean_latency_seconds),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DeviceStats":
        """Rebuild a row from :meth:`to_dict` output (derived keys ignored)."""
        fields = {
            key: data[key]
            for key in (
                "device_id", "profile", "requests", "windows", "batches",
                "busy_seconds", "wall_seconds", "total_latency_seconds",
                "max_queue_depth", "available_at", "deadline_requests",
                "deadline_misses", "failures", "queue_depth", "clock",
            )
            if key in data
        }
        return cls(**fields)  # type: ignore[arg-type]


@dataclass
class RoutingReport:
    """Fleet-level view over the per-device stats after a routed stream.

    ``total_requests`` counts *served* requests (it matches the sum of the
    per-device rows); requests that were never served are broken out
    separately: ``total_expired`` holds deadline expiries (including the
    ``total_rejected`` subset failed by admission control at submit time)
    and ``total_failed`` holds requests lost to a raising device.  Served
    requests that carried a deadline but completed past it are counted in
    the per-device ``deadline_misses`` rows (``total_deadline_misses``
    here); :meth:`deadline_attainment` and :meth:`slo_attainment` summarise
    the served / missed / expired breakdown.
    """

    per_device: Dict[int, DeviceStats]
    total_requests: int = 0
    total_windows: int = 0
    total_expired: int = 0
    total_rejected: int = 0
    total_failed: int = 0
    #: Subset of ``total_rejected`` failed by load-shedding admission
    #: control (the control plane's :class:`RequestSheddedError` path)
    #: rather than by an arithmetically unmeetable deadline.
    total_shed: int = 0
    #: Queued requests cancelled before service (hedged-request losers,
    #: failed with :class:`RequestCancelledError`).  *Not* part of
    #: ``total_expired``/``total_failed`` and excluded from SLO
    #: denominators: each cancelled attempt's logical request was answered
    #: exactly once by its winning twin.
    total_cancelled: int = 0
    #: All-time count of requests resolved one way or another — served +
    #: expired (incl. rejected) + failed.  Unlike the per-device latency
    #: history (bounded to ``LATENCY_HISTORY_CAP`` samples), this never
    #: trims, which keeps :meth:`slo_attainment` consistent on long runs.
    #: ``0`` (reports built before the counter existed) falls back to the
    #: sum of the totals above.
    resolved_requests: int = 0

    @property
    def clock(self) -> str:
        """Clock the timing columns are on: ``simulated``/``wall``/``mixed``."""
        modes = {stats.clock for stats in self.per_device.values()}
        if not modes:
            return "simulated"
        return modes.pop() if len(modes) == 1 else "mixed"

    @property
    def makespan_seconds(self) -> float:
        """Simulated time at which the last device finishes its queue."""
        return max((s.available_at for s in self.per_device.values()), default=0.0)

    @property
    def aggregate_throughput(self) -> float:
        """Windows per simulated second with devices draining in parallel."""
        makespan = self.makespan_seconds
        return self.total_windows / makespan if makespan > 0 else 0.0

    @property
    def engine_wall_seconds(self) -> float:
        """Measured (not simulated) engine compute across the fleet."""
        return sum(s.wall_seconds for s in self.per_device.values())

    @property
    def mean_latency_seconds(self) -> float:
        total = sum(s.total_latency_seconds for s in self.per_device.values())
        return total / self.total_requests if self.total_requests else 0.0

    def latency_percentile(self, quantile: float) -> float:
        """Simulated latency percentile (``quantile`` in [0, 100]).

        Needs per-request latencies, which only the event-loop scheduler
        records (over its most recent window per device — see
        ``repro.serving.scheduler.LATENCY_HISTORY_CAP``); returns 0.0 for
        reports produced by the legacy tick drain.
        """
        samples = [
            latency
            for stats in self.per_device.values()
            for latency in stats.latencies
        ]
        if not samples:
            return 0.0
        return float(np.percentile(np.asarray(samples), quantile))

    @property
    def p99_latency_seconds(self) -> float:
        return self.latency_percentile(99.0)

    @property
    def total_queue_depth(self) -> int:
        """Requests currently queued across the fleet (live gauge)."""
        return sum(s.queue_depth for s in self.per_device.values())

    @property
    def rolling_deadline_attainment(self) -> float:
        """Fleet-wide rolling deadline attainment over each lane's most
        recent :data:`ROLLING_WINDOW` outcomes; ``1.0`` with no recent
        deadline traffic."""
        hits = 0
        total = 0
        for stats in self.per_device.values():
            recent = stats.recent_deadlines[-ROLLING_WINDOW:]
            hits += sum(recent)
            total += len(recent)
        return hits / total if total else 1.0

    # -- deadline / SLO accounting ------------------------------------- #
    @property
    def total_deadline_requests(self) -> int:
        """Served requests that carried a deadline (sum of per-device rows)."""
        return sum(s.deadline_requests for s in self.per_device.values())

    @property
    def total_deadline_misses(self) -> int:
        """Served requests whose completion fell past their deadline."""
        return sum(s.deadline_misses for s in self.per_device.values())

    def deadline_breakdown(self) -> Dict[str, int]:
        """Request outcomes relevant to the deadline SLO.

        ``served`` carried a deadline and began *and* completed within it,
        ``missed`` began in time but completed late, ``expired`` never
        began (queue expiry plus admission rejections; only
        deadline-carrying requests can expire).  ``failed`` is the
        *fleet-wide* count of requests lost to a raising device — with or
        without a deadline, since a failed batch records no per-request
        deadline facts; it is reported for completeness and excluded from
        :attr:`deadline_attainment`.
        """
        return {
            "served": self.total_deadline_requests - self.total_deadline_misses,
            "missed": self.total_deadline_misses,
            "expired": self.total_expired,
            "failed": self.total_failed,
        }

    @property
    def deadline_attainment(self) -> float:
        """Fraction of deadline-carrying requests answered within deadline.

        Counts expired (never-served) requests against attainment; failed
        requests are an infrastructure loss, reported separately.  ``1.0``
        when no request carried a deadline.
        """
        denominator = self.total_deadline_requests + self.total_expired
        if denominator == 0:
            return 1.0
        return (self.total_deadline_requests - self.total_deadline_misses) / denominator

    def slo_attainment(self, target_seconds: float) -> float:
        """Fraction of resolved requests answered within ``target_seconds``.

        A latency-target SLO; expired and failed requests count against it,
        ``1.0`` when nothing was resolved.  Latency samples are bounded per
        device (the event-loop scheduler's most recent window — see
        ``repro.serving.scheduler.LATENCY_HISTORY_CAP``) while the outcome
        counters are all-time, so the windowed samples only *estimate* the
        served-within rate; that rate is then weighted by the all-time
        served and :attr:`resolved_requests` counters.  This keeps the
        ratio consistent on runs long enough to trim the history — the
        window can no longer over-weight expiries against a truncated
        served count.  Exact (not estimated) for event-loop reports whose
        history has not trimmed; legacy tick-drain reports keep no
        per-request history at all, so with nothing expired or failed they
        stay vacuously ``1.0`` (as before), and otherwise the absent
        samples contribute zero served-within credit (also as before).
        """
        sampled = 0
        within = 0
        for stats in self.per_device.values():
            if stats.latencies:
                samples = np.asarray(stats.latencies)
                within += int(np.count_nonzero(samples <= target_seconds))
                sampled += samples.size
        if sampled == 0 and self.total_expired + self.total_failed == 0:
            # No latency view and nothing lost: vacuously attained (matches
            # legacy-router reports, which keep no per-request history).
            return 1.0
        resolved = self.resolved_requests or (
            self.total_requests + self.total_expired + self.total_failed
        )
        if resolved == 0:
            return 1.0
        served_within = within / sampled * self.total_requests if sampled else 0.0
        return served_within / resolved

    def summary(self) -> Dict[str, float]:
        return {
            "devices": float(len(self.per_device)),
            "total_requests": float(self.total_requests),
            "total_windows": float(self.total_windows),
            "makespan_seconds": self.makespan_seconds,
            "aggregate_throughput": self.aggregate_throughput,
            "total_expired": float(self.total_expired),
            "total_failed": float(self.total_failed),
            "deadline_misses": float(self.total_deadline_misses),
        }

    # -- serialization -------------------------------------------------- #
    def to_dict(
        self,
        *,
        sync_stats: Optional[Dict[str, int]] = None,
        slo_target_seconds: Optional[float] = None,
    ) -> Dict[str, object]:
        """JSON-ready snapshot of the whole report.

        One serialization shared by the network server's stats endpoint,
        ``pilote bench-client`` and the benchmark artifacts: counters,
        derived throughput/latency aggregates (p50/p99 from the bounded
        per-device histories, which themselves do not travel), the deadline
        breakdown, and optionally the executor's snapshot ``sync_stats``
        and the :meth:`slo_attainment` at a caller-chosen target.
        """
        data: Dict[str, object] = {
            "clock": self.clock,
            "devices": len(self.per_device),
            "total_requests": int(self.total_requests),
            "total_windows": int(self.total_windows),
            "total_expired": int(self.total_expired),
            "total_rejected": int(self.total_rejected),
            "total_failed": int(self.total_failed),
            "total_shed": int(self.total_shed),
            "total_cancelled": int(self.total_cancelled),
            "total_queue_depth": int(self.total_queue_depth),
            "rolling_deadline_attainment": float(self.rolling_deadline_attainment),
            "resolved_requests": int(
                self.resolved_requests
                or self.total_requests + self.total_expired + self.total_failed
            ),
            "makespan_seconds": float(self.makespan_seconds),
            "aggregate_throughput": float(self.aggregate_throughput),
            "engine_wall_seconds": float(self.engine_wall_seconds),
            "mean_latency_seconds": float(self.mean_latency_seconds),
            "p50_latency_seconds": self.latency_percentile(50.0),
            "p99_latency_seconds": self.latency_percentile(99.0),
            "deadline_breakdown": {
                key: int(value) for key, value in self.deadline_breakdown().items()
            },
            "deadline_attainment": float(self.deadline_attainment),
            "per_device": {
                str(device_id): stats.to_dict()
                for device_id, stats in sorted(self.per_device.items())
            },
        }
        if slo_target_seconds is not None:
            data["slo_target_seconds"] = float(slo_target_seconds)
            data["slo_attainment"] = float(self.slo_attainment(slo_target_seconds))
        if sync_stats is not None:
            data["sync_stats"] = {
                key: int(value) for key, value in sync_stats.items()
            }
        return data

    def to_json(self, **kwargs) -> str:
        """:meth:`to_dict` as a JSON string (keys sorted, stable for diffs)."""
        import json

        return json.dumps(self.to_dict(**kwargs), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RoutingReport":
        """Rebuild a report from :meth:`to_dict` output.

        Lossy where the export is: per-request latency histories do not
        travel, so percentile/SLO views on the restored report fall back to
        their no-history behaviour; every counter, per-device row and
        derived aggregate that *did* travel is restored exactly.
        """
        per_device = {
            int(device_id): DeviceStats.from_dict(row)
            for device_id, row in dict(data.get("per_device", {})).items()
        }
        return cls(
            per_device=per_device,
            total_requests=int(data.get("total_requests", 0)),
            total_windows=int(data.get("total_windows", 0)),
            total_expired=int(data.get("total_expired", 0)),
            total_rejected=int(data.get("total_rejected", 0)),
            total_failed=int(data.get("total_failed", 0)),
            total_shed=int(data.get("total_shed", 0)),
            total_cancelled=int(data.get("total_cancelled", 0)),
            resolved_requests=int(data.get("resolved_requests", 0)),
        )


class Router:
    """Shards inference requests across fleet devices and batches per device.

    Parameters
    ----------
    devices:
        The fleet's devices (each must have an engine attached before
        requests are dispatched to it).  When given a list — e.g.
        ``FleetCoordinator.devices`` — the router keeps a *live view* of it,
        so ``FleetCoordinator.replace_device`` takes effect for in-flight
        routing; the device *count* must stay fixed (it is the sharding
        modulus).
    seed:
        Seeds the sharding salt: the same seed always produces the same
        user → device assignment, different seeds rebalance differently.
    """

    def __init__(
        self, devices: Sequence[FleetDevice], *, seed: RandomState = None
    ) -> None:
        if not devices:
            raise ConfigurationError("the router needs at least one device")
        self._devices = devices if isinstance(devices, list) else list(devices)
        self._n_shards = len(devices)
        self._salt = np.uint64(resolve_rng(seed).integers(0, 2**63 - 1, dtype=np.int64))
        self._stats: Dict[int, DeviceStats] = {
            d.device_id: DeviceStats(device_id=d.device_id, profile=d.profile.name)
            for d in self._devices
        }
        self._total_requests = 0
        self._total_windows = 0
        self._legacy_client = None  # lazy ServingClient behind the submit() shim

    # ------------------------------------------------------------------ #
    @property
    def n_devices(self) -> int:
        return len(self._devices)

    def replace_device(self, device_id: int, replacement) -> None:
        """Swap a (crashed) device in the live device list, keeping its slot.

        Mutates the shared list, so a coordinator (and any event-loop
        scheduler) holding the same list sees the replacement immediately —
        including for requests already in flight.
        """
        for index, candidate in enumerate(self._devices):
            if candidate.device_id == device_id:
                self._devices[index] = replacement
                return
        raise ConfigurationError(f"no device with id {device_id} behind this router")

    def submit(self, request) -> np.ndarray:
        """Deprecated single-request entry point; returns per-window class ids.

        .. deprecated::
            Use the unified serving client instead —
            ``repro.serving.serve(fleet).submit(request)`` returns a
            :class:`~repro.serving.PendingResult` future with deadlines and
            metadata support.  This shim delegates to that client (same
            sharding salt, so the same user → device placement) and blocks on
            the result.
        """
        warnings.warn(
            "Router.submit is deprecated; build a client with "
            "repro.serving.serve(...) and use submit()/predict() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        client = self._legacy_client
        if client is None:
            from repro.serving.client import ServingClient
            from repro.serving.routing import HashRouting

            client = ServingClient(
                self._devices, routing=HashRouting(salt=self._salt)
            )
            self._legacy_client = client
        pending = client.submit(request)
        client.drain()
        return pending.result().class_ids

    def shard(self, user_ids) -> np.ndarray:
        """Deterministic device index for each user id (vectorised).

        Uses the shared salted splitmix64 finaliser
        (:func:`repro.utils.hashing.splitmix64` — the same one
        :class:`~repro.serving.HashRouting` hashes with) so the assignment
        is uniform over devices, stable per user, and reproducible from the
        router seed.
        """
        hashed = splitmix64(user_ids, self._salt)
        return (hashed % np.uint64(self._n_shards)).astype(np.int64)

    # ------------------------------------------------------------------ #
    def dispatch_tick(
        self, requests: Sequence[InferenceRequest]
    ) -> List[Optional[np.ndarray]]:
        """Route one tick's arrivals; returns predictions aligned with input.

        Each device's share of the tick is concatenated into a single batch
        and served through the device engine in one call (the engine applies
        its own internal ``batch_size`` bound), which is what keeps the
        per-request overhead of the fleet layer small.
        """
        predictions: List[Optional[np.ndarray]] = [None] * len(requests)
        if not requests:
            return predictions
        if len(self._devices) != self._n_shards:
            raise ConfigurationError(
                f"the fleet changed size ({self._n_shards} -> {len(self._devices)}); "
                "build a new Router — the device count is the sharding modulus"
            )
        user_ids = np.fromiter(
            (r.user_id for r in requests), dtype=np.int64, count=len(requests)
        )
        assignment = self.shard(user_ids)
        arrival = min(r.arrival_seconds for r in requests)
        for position in range(self._n_shards):
            indices = np.flatnonzero(assignment == position)
            if indices.size == 0:
                continue
            device = self._devices[position]
            # setdefault: a replacement device (crash/restore) may carry a new
            # id; it inherits the shard but gets its own stats row.
            stats = self._stats.setdefault(
                device.device_id,
                DeviceStats(device_id=device.device_id, profile=device.profile.name),
            )
            batch_requests = [requests[i] for i in indices]
            windows = np.concatenate([r.features for r in batch_requests], axis=0)

            start = perf_seconds()
            outputs = device.infer(windows)
            wall = perf_seconds() - start
            service = wall / device.profile.relative_compute

            begin = max(stats.available_at, arrival)
            queue_depth = len(batch_requests) + (1 if stats.available_at > arrival else 0)
            completion = begin + service
            stats.available_at = completion
            stats.requests += len(batch_requests)
            stats.windows += int(windows.shape[0])
            stats.batches += 1
            stats.busy_seconds += service
            stats.wall_seconds += wall
            stats.max_queue_depth = max(stats.max_queue_depth, queue_depth)
            stats.total_latency_seconds += sum(
                completion - r.arrival_seconds for r in batch_requests
            )

            offset = 0
            for request, index in zip(batch_requests, indices):
                predictions[index] = outputs[offset:offset + request.n_windows]
                offset += request.n_windows
            self._total_requests += len(batch_requests)
            self._total_windows += int(windows.shape[0])
        return predictions

    def route(
        self, ticks: Iterable[Sequence[InferenceRequest]]
    ) -> RoutingReport:
        """Dispatch a whole stream of ticks and return the fleet report."""
        for requests in ticks:
            self.dispatch_tick(requests)
        return self.report()

    def report(self) -> RoutingReport:
        """Current routing statistics (stats keep accumulating afterwards).

        Traffic served through the deprecated :meth:`submit` shim is folded
        in, so mixing the two entry points does not undercount.
        """
        per_device = dict(self._stats)
        total_requests = self._total_requests
        total_windows = self._total_windows
        total_expired = 0
        total_rejected = 0
        total_failed = 0
        if self._legacy_client is not None:
            shim = self._legacy_client.report()
            total_requests += shim.total_requests
            total_windows += shim.total_windows
            total_expired += shim.total_expired
            total_rejected += shim.total_rejected
            total_failed += shim.total_failed
            for device_id, extra in shim.per_device.items():
                if extra.requests == 0:
                    continue
                base = per_device.get(device_id)
                per_device[device_id] = (
                    _merged_stats(base, extra) if base is not None else extra
                )
        return RoutingReport(
            per_device=per_device,
            total_requests=total_requests,
            total_windows=total_windows,
            total_expired=total_expired,
            total_rejected=total_rejected,
            total_failed=total_failed,
            resolved_requests=total_requests + total_expired + total_failed,
        )


def _merged_stats(base: DeviceStats, extra: DeviceStats) -> DeviceStats:
    """Sum two stats rows for the same device (tick drain + submit shim)."""
    return DeviceStats(
        device_id=base.device_id,
        profile=base.profile,
        requests=base.requests + extra.requests,
        windows=base.windows + extra.windows,
        batches=base.batches + extra.batches,
        busy_seconds=base.busy_seconds + extra.busy_seconds,
        wall_seconds=base.wall_seconds + extra.wall_seconds,
        total_latency_seconds=base.total_latency_seconds + extra.total_latency_seconds,
        max_queue_depth=max(base.max_queue_depth, extra.max_queue_depth),
        available_at=max(base.available_at, extra.available_at),
        deadline_requests=base.deadline_requests + extra.deadline_requests,
        deadline_misses=base.deadline_misses + extra.deadline_misses,
        failures=base.failures + extra.failures,
        queue_depth=base.queue_depth + extra.queue_depth,
        recent_deadlines=base.recent_deadlines + extra.recent_deadlines,
        latencies=base.latencies + extra.latencies,
        clock=base.clock if base.clock == extra.clock else "mixed",
    )


#: Alias emphasising the balancing role in docs and examples.
LoadBalancer = Router
