"""Fleet serving: multi-device orchestration, routing, traffic, checkpoints.

The paper ships one pre-trained model to one edge device; this package scales
that architecture out to a *fleet* behind a single cloud broadcast:

* :class:`FleetCoordinator` provisions N devices from heterogeneous
  :class:`~repro.edge.device.DeviceProfile`s, deploys one
  :class:`~repro.edge.transfer.TransferPackage` to all of them (each device
  gets an independent learner) and schedules staggered per-device increments;
* :class:`Router` (alias :class:`LoadBalancer`) shards inference requests
  across devices by user id, batches them through each device's
  :class:`~repro.edge.inference.InferenceEngine`, and records per-device
  throughput/latency/queue-depth statistics on a simulated parallel clock;
* :class:`TrafficGenerator` produces deterministic open-loop workloads
  (uniform, bursty, Zipf-skewed user populations);
* :class:`CheckpointStore` snapshots device state (full or delta archives),
  evicts under a storage budget, and restores state onto a fresh device
  (crash/replace, elasticity);
* :class:`HierarchicalFleetCoordinator` scales the same architecture to a
  million devices: regions (:class:`RegionCoordinator`) serve pooled
  copy-on-write template state behind one lane each, only drifting devices
  are materialised, and broadcasts ship one package per region
  (:class:`TransferLedger` accounts the bytes).

Entry points: ``MagnetoPlatform.to_fleet(n)``, the ``pilote fleet-sim`` CLI
subcommand, ``examples/fleet_simulation.py`` and
``benchmarks/bench_fleet.py``.

Serving itself now goes through :mod:`repro.serving`: ``serve(fleet)``
builds a futures-based client whose event-loop scheduler supersedes the
router's synchronous per-tick drain, with pluggable routing policies and
rollout staging on ``FleetCoordinator.deploy``.
"""

from repro.fleet.checkpoint import CheckpointStore, DeviceCheckpoint
from repro.fleet.coordinator import (
    Fleet,
    FleetAccuracyReport,
    FleetCoordinator,
    FleetDevice,
    HierarchicalFleetCoordinator,
    RegionCoordinator,
    TransferLedger,
)
from repro.fleet.router import DeviceStats, LoadBalancer, Router, RoutingReport
from repro.fleet.simulation import FleetSimulationResult
from repro.fleet.traffic import (
    InferenceRequest,
    TrafficGenerator,
    WorkloadSpec,
    staggered_schedule,
)

__all__ = [
    "Fleet",
    "FleetCoordinator",
    "FleetDevice",
    "FleetAccuracyReport",
    "HierarchicalFleetCoordinator",
    "RegionCoordinator",
    "TransferLedger",
    "Router",
    "LoadBalancer",
    "DeviceStats",
    "RoutingReport",
    "TrafficGenerator",
    "WorkloadSpec",
    "InferenceRequest",
    "staggered_schedule",
    "CheckpointStore",
    "DeviceCheckpoint",
    "FleetSimulationResult",
]
