"""Deterministic open-loop traffic generation for fleet simulations.

A production MAGNETO deployment serves a large user population whose requests
are neither uniform nor steady: a few heavy users dominate (Zipf), load comes
in bursts, and new activities reach different devices at different times.
:class:`TrafficGenerator` produces such workloads reproducibly — the whole
stream is a pure function of the workload spec and the seed, so benchmark and
simulation runs can be replayed exactly.

The generator is *open loop*: it emits what arrives per tick regardless of
whether the fleet keeps up, which is what exposes queueing behaviour in the
router's per-device stats.  Workloads can additionally carry seeded
per-request deadlines (``WorkloadSpec.deadline_seconds`` /
``deadline_multipliers`` / ``deadline_fraction``) to drive the serving
scheduler's deadline machinery — admission control, queue expiry and
earliest-deadline-first ordering (see :mod:`repro.serving.scheduler`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.data.dataset import HARDataset
from repro.exceptions import ConfigurationError, DataError
from repro.utils.rng import RandomState, resolve_rng

#: Workload patterns understood by :class:`TrafficGenerator`.
PATTERNS = ("uniform", "bursty", "zipf")


@dataclass(frozen=True)
class InferenceRequest:
    """One user's inference request: a few feature windows to classify.

    Attributes
    ----------
    user_id:
        Stable identity of the requesting user; the router shards on it.
    features:
        ``(n_windows, n_features)`` feature matrix for this request.
    arrival_seconds:
        Simulated arrival time (tick index × tick duration).
    deadline_seconds:
        Optional absolute simulated deadline, honoured by the event-loop
        scheduler exactly like :class:`~repro.serving.PredictRequest`'s
        (admission rejection / queue expiry / late-completion miss — see
        :mod:`repro.serving.scheduler`).  The legacy tick-drain router
        ignores it.
    """

    user_id: int
    features: np.ndarray
    arrival_seconds: float = 0.0
    deadline_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.user_id < 0:
            raise DataError(f"user_id must be non-negative, got {self.user_id}")
        if self.deadline_seconds is not None and self.deadline_seconds <= self.arrival_seconds:
            raise DataError(
                f"deadline_seconds ({self.deadline_seconds}) must be after "
                f"arrival_seconds ({self.arrival_seconds})"
            )

    @property
    def n_windows(self) -> int:
        return int(self.features.shape[0])


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of an open-loop inference workload.

    Attributes
    ----------
    pattern:
        ``"uniform"`` (every user equally likely, steady rate), ``"bursty"``
        (steady rate with periodic spikes) or ``"zipf"`` (skewed user
        popularity — a heavy-hitter population).
    n_users:
        Size of the simulated user population.
    requests_per_tick:
        Base arrival rate (requests per tick).
    n_ticks:
        Length of the generated stream.
    windows_per_request:
        Feature windows carried by each request.
    tick_seconds:
        Simulated wall-clock duration of one tick (0 = replay as fast as the
        fleet can drain, i.e. a pure throughput workload).
    burst_every / burst_multiplier:
        For ``"bursty"``: every ``burst_every``-th tick carries
        ``burst_multiplier`` × the base rate.
    zipf_exponent:
        For ``"zipf"``: exponent of the rank-frequency law (larger = more
        skewed toward the heaviest users).
    deadline_seconds:
        Base *relative* deadline per request, in simulated seconds after
        its arrival; ``None`` (the default) emits deadline-less traffic and
        leaves the generated stream bit-identical to earlier versions.
    deadline_multipliers:
        Discrete deadline classes: each request's relative deadline is
        ``deadline_seconds`` times a multiplier drawn uniformly (seeded)
        from this tuple — e.g. ``(1.0, 40.0)`` mixes urgent and relaxed
        traffic.  Discrete classes (rather than continuous jitter) keep
        co-arriving requests coalescible into large engine batches under
        EDF scheduling, which groups per ``(arrival, deadline)``.
    deadline_fraction:
        Fraction of requests that carry a deadline at all; the rest are
        emitted deadline-less (they sort last under EDF, in arrival order).
    """

    pattern: str = "uniform"
    n_users: int = 256
    requests_per_tick: int = 64
    n_ticks: int = 10
    windows_per_request: int = 1
    tick_seconds: float = 0.0
    burst_every: int = 4
    burst_multiplier: float = 4.0
    zipf_exponent: float = 1.1
    deadline_seconds: Optional[float] = None
    deadline_multipliers: Tuple[float, ...] = (1.0,)
    deadline_fraction: float = 1.0

    def __post_init__(self) -> None:
        # All spec errors are ConfigurationError, which is also a ValueError:
        # a non-positive rate/duration/user count fails loudly and typed here
        # instead of producing an empty or nonsensical traffic stream.
        if self.pattern not in PATTERNS:
            raise ConfigurationError(
                f"pattern must be one of {PATTERNS}, got {self.pattern!r}"
            )
        if self.n_users <= 0:
            raise ConfigurationError(
                f"n_users must be positive, got {self.n_users}"
            )
        if self.requests_per_tick <= 0:
            raise ConfigurationError(
                f"requests_per_tick must be positive, got {self.requests_per_tick}"
            )
        if self.n_ticks <= 0:
            raise ConfigurationError(
                f"n_ticks must be positive, got {self.n_ticks}"
            )
        if self.windows_per_request <= 0:
            raise ConfigurationError(
                f"windows_per_request must be positive, got {self.windows_per_request}"
            )
        if self.tick_seconds < 0:
            raise ConfigurationError("tick_seconds must be non-negative")
        if self.burst_every <= 0 or self.burst_multiplier < 1.0:
            raise ConfigurationError(
                "burst_every must be positive and burst_multiplier >= 1"
            )
        if self.zipf_exponent <= 0:
            raise ConfigurationError("zipf_exponent must be positive")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigurationError(
                f"deadline_seconds must be positive, got {self.deadline_seconds}"
            )
        if not self.deadline_multipliers or any(
            m <= 0 for m in self.deadline_multipliers
        ):
            raise ConfigurationError(
                "deadline_multipliers must be a non-empty tuple of positive "
                f"factors, got {self.deadline_multipliers!r}"
            )
        if not 0.0 <= self.deadline_fraction <= 1.0:
            raise ConfigurationError(
                f"deadline_fraction must be in [0, 1], got {self.deadline_fraction}"
            )

    def requests_at_tick(self, tick: int) -> int:
        """Arrival count for one tick under this spec."""
        if self.pattern == "bursty" and tick % self.burst_every == self.burst_every - 1:
            return int(round(self.requests_per_tick * self.burst_multiplier))
        return self.requests_per_tick


class TrafficGenerator:
    """Seeded generator of :class:`InferenceRequest` streams.

    Parameters
    ----------
    pool:
        Feature matrix (or :class:`~repro.data.dataset.HARDataset`) that
        request windows are sampled from.
    spec:
        The workload shape.
    seed:
        Seed or generator; the emitted stream is fully determined by it.
    """

    def __init__(
        self,
        pool,
        spec: WorkloadSpec = WorkloadSpec(),
        seed: RandomState = None,
    ) -> None:
        features = pool.features if isinstance(pool, HARDataset) else np.asarray(pool)
        if features.ndim != 2 or features.shape[0] == 0:
            raise DataError(
                f"pool must be a non-empty (n, d) feature matrix, got shape {features.shape}"
            )
        self.pool = features
        self.spec = spec
        self._rng = resolve_rng(seed)
        if spec.pattern == "zipf":
            ranks = np.arange(1, spec.n_users + 1, dtype=np.float64)
            weights = ranks ** (-spec.zipf_exponent)
            self._user_pmf = weights / weights.sum()
        else:
            self._user_pmf = None

    # ------------------------------------------------------------------ #
    def _draw_users(self, count: int) -> np.ndarray:
        if self._user_pmf is not None:
            return self._rng.choice(self.spec.n_users, size=count, p=self._user_pmf)
        return self._rng.integers(0, self.spec.n_users, size=count)

    def _draw_deadlines(self, count: int, arrival: float) -> List[Optional[float]]:
        """Seeded per-request absolute deadlines (``None`` = no deadline)."""
        spec = self.spec
        multipliers = np.asarray(spec.deadline_multipliers, dtype=np.float64)
        relative = spec.deadline_seconds * self._rng.choice(multipliers, size=count)
        if spec.deadline_fraction < 1.0:
            carried = self._rng.random(count) < spec.deadline_fraction
        else:
            carried = np.ones(count, dtype=bool)
        return [
            float(arrival + relative[i]) if carried[i] else None
            for i in range(count)
        ]

    def tick(self, tick_index: int) -> List[InferenceRequest]:
        """Requests arriving during one tick (advances the internal stream)."""
        spec = self.spec
        count = spec.requests_at_tick(tick_index)
        users = self._draw_users(count)
        rows = self._rng.integers(
            0, self.pool.shape[0], size=(count, spec.windows_per_request)
        )
        arrival = tick_index * spec.tick_seconds
        if spec.deadline_seconds is not None:
            deadlines = self._draw_deadlines(count, arrival)
        else:
            deadlines = [None] * count
        return [
            InferenceRequest(
                user_id=int(users[i]),
                features=self.pool[rows[i]],
                arrival_seconds=arrival,
                deadline_seconds=deadlines[i],
            )
            for i in range(count)
        ]

    def ticks(self) -> Iterator[List[InferenceRequest]]:
        """Iterate over all ``spec.n_ticks`` ticks of the stream."""
        for tick_index in range(self.spec.n_ticks):
            yield self.tick(tick_index)

    def requests(self) -> List[InferenceRequest]:
        """The whole stream flattened (convenience for benchmarks)."""
        flattened: List[InferenceRequest] = []
        for batch in self.ticks():
            flattened.extend(batch)
        return flattened


def staggered_schedule(
    n_devices: int, *, start_tick: int = 1, spacing_ticks: int = 1
) -> Dict[int, int]:
    """Tick at which each device first sees new-activity data.

    Staggered arrival is what makes a fleet drift: device 0 integrates the new
    activity at ``start_tick``, device 1 ``spacing_ticks`` later, and so on —
    mirroring a rollout where users adopt a new activity at different times.
    """
    if n_devices <= 0:
        raise ConfigurationError(f"n_devices must be positive, got {n_devices}")
    if start_tick < 0 or spacing_ticks < 0:
        raise ConfigurationError("start_tick and spacing_ticks must be non-negative")
    return {
        device_id: start_tick + device_id * spacing_ticks
        for device_id in range(n_devices)
    }
