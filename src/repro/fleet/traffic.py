"""Deterministic open-loop traffic generation for fleet simulations.

A production MAGNETO deployment serves a large user population whose requests
are neither uniform nor steady: a few heavy users dominate (Zipf), load comes
in bursts, and new activities reach different devices at different times.
:class:`TrafficGenerator` produces such workloads reproducibly — the whole
stream is a pure function of the workload spec and the seed, so benchmark and
simulation runs can be replayed exactly.

The generator is *open loop*: it emits what arrives per tick regardless of
whether the fleet keeps up, which is what exposes queueing behaviour in the
router's per-device stats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

import numpy as np

from repro.data.dataset import HARDataset
from repro.exceptions import ConfigurationError, DataError
from repro.utils.rng import RandomState, resolve_rng

#: Workload patterns understood by :class:`TrafficGenerator`.
PATTERNS = ("uniform", "bursty", "zipf")


@dataclass(frozen=True)
class InferenceRequest:
    """One user's inference request: a few feature windows to classify.

    Attributes
    ----------
    user_id:
        Stable identity of the requesting user; the router shards on it.
    features:
        ``(n_windows, n_features)`` feature matrix for this request.
    arrival_seconds:
        Simulated arrival time (tick index × tick duration).
    """

    user_id: int
    features: np.ndarray
    arrival_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.user_id < 0:
            raise DataError(f"user_id must be non-negative, got {self.user_id}")

    @property
    def n_windows(self) -> int:
        return int(self.features.shape[0])


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of an open-loop inference workload.

    Attributes
    ----------
    pattern:
        ``"uniform"`` (every user equally likely, steady rate), ``"bursty"``
        (steady rate with periodic spikes) or ``"zipf"`` (skewed user
        popularity — a heavy-hitter population).
    n_users:
        Size of the simulated user population.
    requests_per_tick:
        Base arrival rate (requests per tick).
    n_ticks:
        Length of the generated stream.
    windows_per_request:
        Feature windows carried by each request.
    tick_seconds:
        Simulated wall-clock duration of one tick (0 = replay as fast as the
        fleet can drain, i.e. a pure throughput workload).
    burst_every / burst_multiplier:
        For ``"bursty"``: every ``burst_every``-th tick carries
        ``burst_multiplier`` × the base rate.
    zipf_exponent:
        For ``"zipf"``: exponent of the rank-frequency law (larger = more
        skewed toward the heaviest users).
    """

    pattern: str = "uniform"
    n_users: int = 256
    requests_per_tick: int = 64
    n_ticks: int = 10
    windows_per_request: int = 1
    tick_seconds: float = 0.0
    burst_every: int = 4
    burst_multiplier: float = 4.0
    zipf_exponent: float = 1.1

    def __post_init__(self) -> None:
        # All spec errors are ConfigurationError, which is also a ValueError:
        # a non-positive rate/duration/user count fails loudly and typed here
        # instead of producing an empty or nonsensical traffic stream.
        if self.pattern not in PATTERNS:
            raise ConfigurationError(
                f"pattern must be one of {PATTERNS}, got {self.pattern!r}"
            )
        if self.n_users <= 0:
            raise ConfigurationError(
                f"n_users must be positive, got {self.n_users}"
            )
        if self.requests_per_tick <= 0:
            raise ConfigurationError(
                f"requests_per_tick must be positive, got {self.requests_per_tick}"
            )
        if self.n_ticks <= 0:
            raise ConfigurationError(
                f"n_ticks must be positive, got {self.n_ticks}"
            )
        if self.windows_per_request <= 0:
            raise ConfigurationError(
                f"windows_per_request must be positive, got {self.windows_per_request}"
            )
        if self.tick_seconds < 0:
            raise ConfigurationError("tick_seconds must be non-negative")
        if self.burst_every <= 0 or self.burst_multiplier < 1.0:
            raise ConfigurationError(
                "burst_every must be positive and burst_multiplier >= 1"
            )
        if self.zipf_exponent <= 0:
            raise ConfigurationError("zipf_exponent must be positive")

    def requests_at_tick(self, tick: int) -> int:
        """Arrival count for one tick under this spec."""
        if self.pattern == "bursty" and tick % self.burst_every == self.burst_every - 1:
            return int(round(self.requests_per_tick * self.burst_multiplier))
        return self.requests_per_tick


class TrafficGenerator:
    """Seeded generator of :class:`InferenceRequest` streams.

    Parameters
    ----------
    pool:
        Feature matrix (or :class:`~repro.data.dataset.HARDataset`) that
        request windows are sampled from.
    spec:
        The workload shape.
    seed:
        Seed or generator; the emitted stream is fully determined by it.
    """

    def __init__(
        self,
        pool,
        spec: WorkloadSpec = WorkloadSpec(),
        seed: RandomState = None,
    ) -> None:
        features = pool.features if isinstance(pool, HARDataset) else np.asarray(pool)
        if features.ndim != 2 or features.shape[0] == 0:
            raise DataError(
                f"pool must be a non-empty (n, d) feature matrix, got shape {features.shape}"
            )
        self.pool = features
        self.spec = spec
        self._rng = resolve_rng(seed)
        if spec.pattern == "zipf":
            ranks = np.arange(1, spec.n_users + 1, dtype=np.float64)
            weights = ranks ** (-spec.zipf_exponent)
            self._user_pmf = weights / weights.sum()
        else:
            self._user_pmf = None

    # ------------------------------------------------------------------ #
    def _draw_users(self, count: int) -> np.ndarray:
        if self._user_pmf is not None:
            return self._rng.choice(self.spec.n_users, size=count, p=self._user_pmf)
        return self._rng.integers(0, self.spec.n_users, size=count)

    def tick(self, tick_index: int) -> List[InferenceRequest]:
        """Requests arriving during one tick (advances the internal stream)."""
        spec = self.spec
        count = spec.requests_at_tick(tick_index)
        users = self._draw_users(count)
        rows = self._rng.integers(
            0, self.pool.shape[0], size=(count, spec.windows_per_request)
        )
        arrival = tick_index * spec.tick_seconds
        return [
            InferenceRequest(
                user_id=int(users[i]),
                features=self.pool[rows[i]],
                arrival_seconds=arrival,
            )
            for i in range(count)
        ]

    def ticks(self) -> Iterator[List[InferenceRequest]]:
        """Iterate over all ``spec.n_ticks`` ticks of the stream."""
        for tick_index in range(self.spec.n_ticks):
            yield self.tick(tick_index)

    def requests(self) -> List[InferenceRequest]:
        """The whole stream flattened (convenience for benchmarks)."""
        flattened: List[InferenceRequest] = []
        for batch in self.ticks():
            flattened.extend(batch)
        return flattened


def staggered_schedule(
    n_devices: int, *, start_tick: int = 1, spacing_ticks: int = 1
) -> Dict[int, int]:
    """Tick at which each device first sees new-activity data.

    Staggered arrival is what makes a fleet drift: device 0 integrates the new
    activity at ``start_tick``, device 1 ``spacing_ticks`` later, and so on —
    mirroring a rollout where users adopt a new activity at different times.
    """
    if n_devices <= 0:
        raise ConfigurationError(f"n_devices must be positive, got {n_devices}")
    if start_tick < 0 or spacing_ticks < 0:
        raise ConfigurationError("start_tick and spacing_ticks must be non-negative")
    return {
        device_id: start_tick + device_id * spacing_ticks
        for device_id in range(n_devices)
    }
