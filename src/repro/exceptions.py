"""Exception hierarchy for the repro (PILOTE reproduction) library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """Raised when a configuration object holds invalid or inconsistent values.

    Also a :class:`ValueError`, so callers validating plain values (e.g. a
    :class:`~repro.fleet.traffic.WorkloadSpec` with a non-positive rate) can
    catch the standard built-in without importing the library hierarchy.
    """


class DataError(ReproError):
    """Raised when input data is malformed (wrong shape, dtype, empty, ...)."""


class NotFittedError(ReproError):
    """Raised when a model is used for prediction before being trained."""


class GradientError(ReproError):
    """Raised when the autodiff engine detects an invalid backward pass."""


class ShapeError(DataError):
    """Raised when array shapes are incompatible with the requested operation."""


class EdgeResourceError(ReproError):
    """Raised when an operation would exceed an edge device's resource budget."""


class SerializationError(ReproError):
    """Raised when a model or dataset cannot be saved or restored."""


class ServingError(ReproError):
    """Base class for errors raised by the unified serving API."""


class InvalidRequestError(ServingError, DataError):
    """Raised when a :class:`~repro.serving.PredictRequest` is malformed."""


class DeadlineExceededError(ServingError):
    """Raised when a request's deadline passes before service begins."""


class RoutingError(ServingError, ConfigurationError):
    """Raised when requests cannot be routed (unknown policy, resized fleet)."""


class RequestSheddedError(DeadlineExceededError):
    """Raised when load-shedding admission control rejects a request before
    it queues (the control plane judged its deadline unmeetable under the
    current backlog).  A :class:`DeadlineExceededError` subtype: shed
    requests are the cheap-to-reject subset of admission rejections and are
    counted in both ``RoutingReport.total_rejected`` and the finer-grained
    ``RoutingReport.total_shed``."""


class RequestCancelledError(ServingError):
    """Raised through a future whose queued request was cancelled before
    service began — e.g. the losing attempt of a hedged request pair after
    the winner completed.  Cancelled requests are counted in
    ``RoutingReport.total_cancelled`` and excluded from SLO denominators
    (their logical request was answered by the winning attempt)."""


class ClientClosedError(ServingError):
    """Raised when requests are submitted to a closed serving client, and
    set on any still-pending futures a ``close()`` had to abandon — a closed
    client never leaves a future silently unresolved."""


class WireProtocolError(ServingError):
    """Raised when a network peer violates the serving wire protocol
    (garbage framing, oversized header/payload, an unusable codec, or a
    connection dropped mid-frame).  Travels over the wire as a typed error
    frame like every other :class:`ServingError`."""


class ExecutorError(ServingError):
    """Raised when a serving executor cannot run a batch (missing engine
    snapshot, unusable worker pool, unknown executor name)."""


class WorkerDiedError(ExecutorError):
    """Raised through a request's future when the worker process executing
    its batch died before answering; the batch is neither retried nor
    dropped silently (counted in ``RoutingReport.total_failed``)."""


class SnapshotMismatchError(ServingError):
    """Raised when two :class:`~repro.edge.inference.EngineStateSnapshot`\\ s
    cannot be diffed (different model architecture, compute dtype, metric or
    parameter key set); callers fall back to shipping the full snapshot."""


class AnalysisError(ReproError):
    """Raised when the static-analysis tooling itself fails (unknown rule id,
    unreadable source tree) — never for a lint *finding*, which is data, not
    an exception."""


class SanitizerViolationError(AnalysisError):
    """Raised by :meth:`repro.analysis.Sanitizer.assert_clean` when the
    runtime sanitizer recorded an unsynchronized cross-thread write to
    scheduler, stats, or signal-bus state."""


class StaleSnapshotError(ServingError):
    """Raised when an :class:`~repro.edge.inference.EngineSnapshotDelta` is
    applied to a snapshot whose ``state_version`` is not the delta's base;
    callers fall back to a full re-ship."""
