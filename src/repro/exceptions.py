"""Exception hierarchy for the repro (PILOTE reproduction) library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """Raised when a configuration object holds invalid or inconsistent values."""


class DataError(ReproError):
    """Raised when input data is malformed (wrong shape, dtype, empty, ...)."""


class NotFittedError(ReproError):
    """Raised when a model is used for prediction before being trained."""


class GradientError(ReproError):
    """Raised when the autodiff engine detects an invalid backward pass."""


class ShapeError(DataError):
    """Raised when array shapes are incompatible with the requested operation."""


class EdgeResourceError(ReproError):
    """Raised when an operation would exceed an edge device's resource budget."""


class SerializationError(ReproError):
    """Raised when a model or dataset cannot be saved or restored."""
