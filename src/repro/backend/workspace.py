"""Reusable scratch buffers for repeated numeric steps.

Training and serving on the edge run the *same* shapes over and over (one
herding step per exemplar, one distance matrix per batch).  Allocating those
temporaries anew on every step costs both time and peak memory on devices
with tens of megabytes of RAM.  A :class:`Workspace` hands out scratch arrays
keyed by ``(shape, dtype)`` and reuses them across requests, so steady-state
steps allocate nothing.

Buffers are plain numpy arrays with **undefined contents** on request; the
caller owns a buffer only until the next request for the same key.  The
workspace is deliberately not re-entrant — hot loops are single-threaded on
the devices this targets — and :meth:`clear` drops everything, e.g. between
training phases with different shapes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.backend.policy import DtypeLike, default_dtype, resolve_dtype


class Workspace:
    """Pool of reusable scratch arrays keyed by shape and dtype."""

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[str, Tuple[int, ...], np.dtype], np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    def request(self, shape, dtype: Optional[DtypeLike] = None, tag: str = "") -> np.ndarray:
        """Return a scratch array of ``shape``; contents are undefined.

        The same array is returned for repeated requests with the same shape,
        dtype and ``tag``, so steady-state loops stop allocating.  ``tag``
        separates buffers that may coincide in shape within one computation.
        """
        shape = (int(shape),) if np.isscalar(shape) else tuple(int(s) for s in shape)
        resolved = resolve_dtype(dtype) if dtype is not None else default_dtype()
        key = (tag, shape, resolved)
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = np.empty(shape, dtype=resolved)
            self._buffers[key] = buffer
            self.misses += 1
        else:
            self.hits += 1
        return buffer

    def clear(self) -> None:
        """Drop every pooled buffer (and reset the hit/miss counters)."""
        self._buffers.clear()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the pool."""
        return int(sum(buffer.nbytes for buffer in self._buffers.values()))

    def __len__(self) -> int:
        return len(self._buffers)

    def stats(self) -> Dict[str, int]:
        """Reuse statistics — useful in benchmarks and regression tests."""
        return {
            "buffers": len(self._buffers),
            "nbytes": self.nbytes,
            "hits": self.hits,
            "misses": self.misses,
        }
