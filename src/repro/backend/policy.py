"""Global dtype policy for the compute stack.

Every leaf tensor and every array materialised through the backend follows a
single process-wide *compute dtype*.  The reproduction historically ran all
numerics in ``float64``; on the extreme edge that doubles memory traffic and
halves SIMD throughput for no accuracy benefit, so the policy makes the
precision an explicit, switchable decision:

* ``"reference"`` profile — ``float64``, bit-compatible with the seed
  implementation and required by finite-difference gradient checking;
* ``"edge"`` profile — ``float32``, the serving/training precision used by the
  edge device profiles and the performance benchmarks.

The policy is intentionally tiny: a module-level default plus the
:func:`precision` context manager for scoped overrides.  Interior autodiff
nodes follow numpy promotion from their inputs, so a graph built from
``float64`` leaves stays ``float64`` even while the global default is
``float32`` (this is what keeps gradcheck exact under an edge policy).
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Union

import numpy as np

from repro.exceptions import ConfigurationError

DtypeLike = Union[str, type, np.dtype]

#: Named precision profiles.  ``edge`` is what the device profiles default to;
#: ``reference`` matches the seed implementation and the gradcheck tolerances.
PROFILE_DTYPES = {
    "edge": np.dtype(np.float32),
    "reference": np.dtype(np.float64),
    "gradcheck": np.dtype(np.float64),
}

_SUPPORTED = (np.dtype(np.float32), np.dtype(np.float64))

_default_dtype = np.dtype(np.float64)


def resolve_dtype(dtype: DtypeLike) -> np.dtype:
    """Normalise a dtype-like or profile name to a supported numpy dtype."""
    if isinstance(dtype, str) and dtype in PROFILE_DTYPES:
        return PROFILE_DTYPES[dtype]
    try:
        resolved = np.dtype(dtype)
    except TypeError as exc:
        raise ConfigurationError(f"unknown dtype or profile {dtype!r}") from exc
    if resolved not in _SUPPORTED:
        raise ConfigurationError(
            f"compute dtype must be float32 or float64, got {resolved}"
        )
    return resolved


def default_dtype() -> np.dtype:
    """The process-wide compute dtype used for leaf tensors and backend arrays."""
    return _default_dtype


def set_default_dtype(dtype: DtypeLike) -> np.dtype:
    """Set the global compute dtype; returns the previous one."""
    global _default_dtype
    previous = _default_dtype
    _default_dtype = resolve_dtype(dtype)
    return previous


@contextlib.contextmanager
def precision(dtype: DtypeLike) -> Iterator[np.dtype]:
    """Scoped dtype override, e.g. ``with precision("edge"): ...``.

    Accepts either a dtype (``"float32"``, ``np.float64``) or a profile name
    from :data:`PROFILE_DTYPES`.
    """
    previous = set_default_dtype(dtype)
    try:
        yield _default_dtype
    finally:
        set_default_dtype(previous)
