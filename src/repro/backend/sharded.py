"""The sharded compute backend: data-parallel learning over a worker pool.

:class:`ShardedBackend` drops in behind the existing
:class:`~repro.backend.backend.Backend` seam (``BACKENDS["sharded"]``,
installable per-worker through
:func:`~repro.backend.backend.install_worker_backend`) and partitions
per-class learning workloads — exemplar herding, prototype refresh, grouped
means — across the persistent shard pool of
:mod:`repro.backend.collectives`.  Everything above the seam is unchanged:
``grouped_means`` callers (:func:`repro.core.prototypes
.compute_class_prototypes`) and :class:`repro.core.pilote.PILOTE` (via
``PILOTE(..., backend="sharded")``) dispatch to the sharded twins
transparently.

The bit-exactness contract (gated by ``benchmarks/bench_collective.py``):

* work is sharded by **whole natural units** — a class, a group, a fixed-size
  candidate block — so every unit's arithmetic runs with exactly the shapes
  the serial path uses.  Splitting a single BLAS call is *never* bit-exact
  (kernel selection depends on the operand shapes), which is why
  ``pairwise_distances`` deliberately inherits the exact single-process
  kernel instead of growing a row-sharded twin;
* reductions combine indexed unit contributions in ascending global unit
  order through one fixed left fold
  (:func:`~repro.backend.collectives.allreduce`), so results are invariant to
  the shard count and identical to the serial accumulation.
"""

from __future__ import annotations

import itertools
import os
from typing import Any, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backend.backend import BACKENDS, NumpyBackend
from repro.backend.collectives import (
    Collectives,
    argmin_reduce,
    in_shard_worker,
    make_collectives,
)
from repro.exceptions import ConfigurationError, DataError, ShapeError

#: Fixed candidate-block size of the intra-class herding twin.  The block grid
#: depends only on the data, never on the shard count — that is what makes the
#: blocked selection shard-count invariant.
HERDING_BLOCK_ROWS = 1024

_herd_keys = itertools.count()


class ShardedBackend(NumpyBackend):
    """Numpy semantics, sharded execution.

    Parameters
    ----------
    shards:
        Logical world size; defaults to the CPU core count.  One shard (or a
        backend built inside a shard worker process) degrades to the inline
        serial transport — never a nested pool.
    collectives:
        Transport: ``"process"`` (default), ``"serial"``, or a prebuilt
        :class:`~repro.backend.collectives.Collectives` instance.
    min_shard_rows:
        Below this many rows ``grouped_means`` runs the inherited serial
        kernel — the IPC round trip costs more than the work.
    timeout:
        Optional wall-clock bound (seconds) per process-transport collective
        call: a worker that hangs while still alive fails the call with a
        typed :class:`~repro.exceptions.ExecutorError` instead of spinning
        forever.  ``None`` (the default) keeps calls unbounded.
    """

    name = "sharded"

    def __init__(
        self,
        shards: Optional[int] = None,
        collectives: Union[str, Collectives, None] = None,
        min_shard_rows: int = 2048,
        timeout: Optional[float] = None,
    ) -> None:
        super().__init__()
        if shards is None:
            shards = os.cpu_count() or 1
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        self.shards = int(shards)
        self.min_shard_rows = int(min_shard_rows)
        self.timeout = timeout
        self._collectives_spec = collectives
        self._collectives: Optional[Collectives] = None

    # ------------------------------------------------------------------ #
    # collectives lifecycle
    # ------------------------------------------------------------------ #
    @property
    def collectives(self) -> Collectives:
        """The transport, built lazily so idle backends never spawn a pool."""
        if self._collectives is None:
            self._collectives = make_collectives(
                self._collectives_spec, self.shards, timeout=self.timeout
            )
        return self._collectives

    @property
    def world_size(self) -> int:
        return self.shards

    def close(self) -> None:
        """Shut the worker pool down (idempotent; safe before first use)."""
        if self._collectives is not None:
            self._collectives.close()
            self._collectives = None

    def __enter__(self) -> "ShardedBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def describe(self) -> str:
        transport = (
            self._collectives.name
            if self._collectives is not None
            else ("serial" if in_shard_worker() or self.shards <= 1 else "process")
        )
        return f"{self.name}[{self.shards}x{transport}]"

    # ------------------------------------------------------------------ #
    # sharded twins
    # ------------------------------------------------------------------ #
    def map_class_units(
        self, model, model_token: Any, kernel: str, payloads: Sequence[Any]
    ) -> List[Any]:
        """Run a model-bound shard kernel over per-class payloads, in order.

        Ships the model to the pool once per ``model_token`` (callers key it
        by model identity + training revision), then fans the payloads out.
        This is the seam :class:`~repro.core.pilote.PILOTE` drives for
        herding, prototype refresh and support-set builds.
        """
        transport = self.collectives
        transport.broadcast_model(model, model_token)
        return transport.run(kernel, payloads)

    def grouped_means(
        self, values: np.ndarray, groups: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        values = np.asarray(values)
        groups = np.asarray(groups).reshape(-1)
        if values.ndim != 2:
            raise ShapeError(f"grouped_means requires 2-D values, got {values.shape}")
        if groups.shape[0] != values.shape[0]:
            raise ShapeError(
                f"got {groups.shape[0]} group ids for {values.shape[0]} rows"
            )
        unique, inverse = np.unique(groups, return_inverse=True)
        if (
            self.shards < 2
            or unique.shape[0] < 2
            or values.shape[0] < self.min_shard_rows
        ):
            # Serial tail: identical arithmetic to NumpyBackend.grouped_means.
            sums = np.zeros((unique.shape[0], values.shape[1]), dtype=values.dtype)
            np.add.at(sums, inverse, values)
            counts = np.bincount(inverse, minlength=unique.shape[0])
            return unique, sums / counts[:, None]
        transport = self.collectives
        payloads = []
        for chunk_index, chunk in enumerate(transport.partition(unique.shape[0])):
            if len(chunk) == 0:
                continue
            selector = np.flatnonzero((inverse >= chunk.start) & (inverse < chunk.stop))
            payloads.append(
                (chunk_index, values[selector], inverse[selector] - chunk.start,
                 len(chunk))
            )
        results = transport.run("grouped_partial", payloads)
        # Whole groups live on one shard and np.add.at accumulates rows in
        # their original order there, so concatenating the per-chunk partials
        # in chunk order reproduces the serial sums bit-for-bit.
        sums = transport.allgather(
            [(chunk_index, chunk_sums) for chunk_index, chunk_sums, _ in results]
        )
        counts = transport.allgather(
            [(chunk_index, chunk_counts) for chunk_index, _, chunk_counts in results]
        )
        return unique, sums / counts[:, None]


def sharded_herding_selection(
    embeddings: np.ndarray,
    n_exemplars: int,
    collectives: Collectives,
    block_rows: int = HERDING_BLOCK_ROWS,
) -> np.ndarray:
    """Herding selection with per-shard candidate scoring + global argmin.

    The collective twin of :func:`repro.core.exemplars.herding_selection` for
    a single class too large to score on one shard: candidates are cut into a
    fixed ``block_rows`` grid, each shard caches its blocks once, and every
    selection step ships only the (embedding-dim) centre vector, scores
    block-locally, and folds the per-block minima with
    :func:`~repro.backend.collectives.argmin_reduce` (ties to the lowest
    block, then the lowest row — ``np.argmin`` order).

    The block grid depends only on the data, so the selected indices are
    **shard-count invariant** — one shard, four shards and the inline serial
    transport all pick identical exemplars.  They can differ from the
    unblocked serial kernel in the last ulp of a score (BLAS GEMV kernels
    depend on the operand shapes), which is why PILOTE's increment shards by
    whole classes instead — this twin is for the single-giant-class regime
    where that is impossible.
    """
    embeddings = np.asarray(embeddings)
    if embeddings.ndim != 2 or embeddings.shape[0] == 0:
        raise DataError(f"embeddings must be a non-empty 2-D array, got {embeddings.shape}")
    if n_exemplars <= 0:
        raise DataError(f"n_exemplars must be positive, got {n_exemplars}")
    if block_rows <= 0:
        raise ConfigurationError(f"block_rows must be positive, got {block_rows}")
    count = embeddings.shape[0]
    n_exemplars = min(int(n_exemplars), count)
    world = collectives.world_size

    prototype = embeddings.mean(axis=0)
    key = f"herding-{next(_herd_keys)}"
    shard_blocks: List[List[tuple]] = [[] for _ in range(world)]
    for block_index, offset in enumerate(range(0, count, int(block_rows))):
        block = embeddings[offset:offset + int(block_rows)]
        squared_norms = np.einsum("ij,ij->i", block, block)
        shard_blocks[block_index % world].append(
            (block_index, block, squared_norms, offset)
        )

    running_sum = np.zeros_like(prototype)
    selected: List[int] = []
    last_selected: Optional[int] = None
    try:
        for step in range(1, n_exemplars + 1):
            centre = running_sum - float(step) * prototype
            # Keys are per shard: under the serial transport every "shard"
            # scores against the same ShardWorkerState, and one shared key
            # would let the last shard's block cache clobber the others.
            payloads = [
                {
                    "key": f"{key}/{shard}",
                    "blocks": shard_blocks[shard] if step == 1 else None,
                    "centre": centre,
                    "remove": last_selected,
                }
                for shard in range(world)
            ]
            contributions = [
                item for shard_result in collectives.run("herd_score", payloads)
                for item in shard_result
            ]
            _, best = argmin_reduce(contributions)
            selected.append(int(best))
            last_selected = int(best)
            running_sum += embeddings[int(best)]
    finally:
        collectives.run("herd_release", [f"{key}/{shard}" for shard in range(world)])
    return np.asarray(selected, dtype=np.int64)


BACKENDS[ShardedBackend.name] = ShardedBackend
