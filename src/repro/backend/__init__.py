"""Pluggable compute backend: dtype policy, op registry, reusable workspace.

This package is the seam between the numerical substrate and everything built
on it (autodiff, nn, PILOTE core, serving):

* :mod:`repro.backend.policy` — the global compute-dtype policy
  (``float32`` for edge profiles, ``float64`` reference/gradcheck) with the
  :func:`~repro.backend.policy.precision` context manager;
* :mod:`repro.backend.registry` — the declarative op registry the autodiff
  tape dispatches through (named forward/vjp records instead of anonymous
  closures);
* :mod:`repro.backend.workspace` — reusable scratch buffers so repeated
  training/serving steps stop allocating;
* :mod:`repro.backend.backend` — the :class:`~repro.backend.backend.Backend`
  abstraction (array creation + shared vectorized kernels) with
  :class:`~repro.backend.backend.NumpyBackend` as the default and the
  extension point for future accelerator backends;
* :mod:`repro.backend.collectives` — deterministic collective ops
  (``allreduce``/``allgather``/``reduce_scatter`` with a fixed fold order for
  float64 bit-exactness) over serial or persistent-process transports, plus
  the tape-facing ``allreduce_sum``/``allreduce_mean``/``allgather`` op-
  registry twins data-parallel gradient accumulation dispatches through;
* :mod:`repro.backend.sharded` — :class:`~repro.backend.sharded.ShardedBackend`
  (``BACKENDS["sharded"]``), partitioning per-class learning workloads
  (herding, prototype refresh, grouped means) across the shard pool while
  staying bit-exact with the serial backend.
"""

from repro.backend.backend import (
    BACKENDS,
    Backend,
    NumpyBackend,
    get_backend,
    install_worker_backend,
    make_backend,
    set_backend,
    use_backend,
)
from repro.backend.collectives import (
    COLLECTIVES,
    Collectives,
    ProcessCollectives,
    SerialCollectives,
    allgather,
    allreduce,
    argmin_reduce,
    fixed_order_sum,
    in_shard_worker,
    make_collectives,
    reduce_scatter,
    register_shard_kernel,
)
from repro.backend.sharded import ShardedBackend, sharded_herding_selection
from repro.backend.policy import (
    PROFILE_DTYPES,
    default_dtype,
    precision,
    resolve_dtype,
    set_default_dtype,
)
from repro.backend.registry import (
    OpContext,
    OpSpec,
    apply,
    get_op,
    is_registered,
    list_ops,
    register_op,
)
from repro.backend.workspace import Workspace

__all__ = [
    "BACKENDS",
    "Backend",
    "NumpyBackend",
    "ShardedBackend",
    "get_backend",
    "install_worker_backend",
    "make_backend",
    "set_backend",
    "use_backend",
    "COLLECTIVES",
    "Collectives",
    "ProcessCollectives",
    "SerialCollectives",
    "allgather",
    "allreduce",
    "argmin_reduce",
    "fixed_order_sum",
    "in_shard_worker",
    "make_collectives",
    "reduce_scatter",
    "register_shard_kernel",
    "sharded_herding_selection",
    "PROFILE_DTYPES",
    "default_dtype",
    "precision",
    "resolve_dtype",
    "set_default_dtype",
    "OpContext",
    "OpSpec",
    "apply",
    "get_op",
    "is_registered",
    "list_ops",
    "register_op",
    "Workspace",
]
