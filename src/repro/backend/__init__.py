"""Pluggable compute backend: dtype policy, op registry, reusable workspace.

This package is the seam between the numerical substrate and everything built
on it (autodiff, nn, PILOTE core, serving):

* :mod:`repro.backend.policy` — the global compute-dtype policy
  (``float32`` for edge profiles, ``float64`` reference/gradcheck) with the
  :func:`~repro.backend.policy.precision` context manager;
* :mod:`repro.backend.registry` — the declarative op registry the autodiff
  tape dispatches through (named forward/vjp records instead of anonymous
  closures);
* :mod:`repro.backend.workspace` — reusable scratch buffers so repeated
  training/serving steps stop allocating;
* :mod:`repro.backend.backend` — the :class:`~repro.backend.backend.Backend`
  abstraction (array creation + shared vectorized kernels) with
  :class:`~repro.backend.backend.NumpyBackend` as the default and the
  extension point for future accelerator backends.
"""

from repro.backend.backend import (
    BACKENDS,
    Backend,
    NumpyBackend,
    get_backend,
    install_worker_backend,
    make_backend,
    set_backend,
    use_backend,
)
from repro.backend.policy import (
    PROFILE_DTYPES,
    default_dtype,
    precision,
    resolve_dtype,
    set_default_dtype,
)
from repro.backend.registry import (
    OpContext,
    OpSpec,
    apply,
    get_op,
    is_registered,
    list_ops,
    register_op,
)
from repro.backend.workspace import Workspace

__all__ = [
    "BACKENDS",
    "Backend",
    "NumpyBackend",
    "get_backend",
    "install_worker_backend",
    "make_backend",
    "set_backend",
    "use_backend",
    "PROFILE_DTYPES",
    "default_dtype",
    "precision",
    "resolve_dtype",
    "set_default_dtype",
    "OpContext",
    "OpSpec",
    "apply",
    "get_op",
    "is_registered",
    "list_ops",
    "register_op",
    "Workspace",
]
