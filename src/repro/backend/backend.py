"""Pluggable compute backend.

A :class:`Backend` owns three things:

1. **array creation** under the global dtype policy (:mod:`~repro.backend.policy`)
   — every array materialised through the backend gets the active compute
   dtype unless one is requested explicitly;
2. **a reusable-buffer workspace** (:class:`~repro.backend.workspace.Workspace`)
   so repeated training/serving steps stop allocating;
3. **the vectorized kernels** the hot paths share (batched distance matrices,
   grouped means), expressed once so dtype policy applies uniformly.

:class:`NumpyBackend` is the only concrete backend today; the indirection is
the extension point for future accelerator or multi-device backends (see
ROADMAP "Open items").
"""

from __future__ import annotations

import abc
import contextlib
from typing import Iterator, Optional, Tuple, Union

import numpy as np

from repro.backend.policy import DtypeLike, default_dtype, resolve_dtype
from repro.backend.workspace import Workspace
from repro.exceptions import ConfigurationError, ShapeError


class Backend(abc.ABC):
    """Abstract compute backend: array creation, workspace, hot-path kernels."""

    #: Identifier used in logs and benchmark reports.
    name: str = "abstract"

    def __init__(self) -> None:
        self._workspace = Workspace()

    # ------------------------------------------------------------------ #
    # array creation (dtype policy applies when dtype is omitted)
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def asarray(self, data, dtype: Optional[DtypeLike] = None) -> np.ndarray:
        """Materialise ``data`` as a backend array in the policy dtype."""

    @abc.abstractmethod
    def zeros(self, shape, dtype: Optional[DtypeLike] = None) -> np.ndarray:
        """Zero-filled array."""

    @abc.abstractmethod
    def empty(self, shape, dtype: Optional[DtypeLike] = None) -> np.ndarray:
        """Uninitialised array."""

    # ------------------------------------------------------------------ #
    # workspace
    # ------------------------------------------------------------------ #
    @property
    def workspace(self) -> Workspace:
        """The backend's reusable-buffer pool."""
        return self._workspace

    def scratch(self, shape, dtype: Optional[DtypeLike] = None, tag: str = "") -> np.ndarray:
        """Shorthand for ``workspace.request``."""
        return self._workspace.request(shape, dtype, tag)

    # ------------------------------------------------------------------ #
    # shared vectorized kernels
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def pairwise_distances(
        self, queries: np.ndarray, references: np.ndarray, metric: str = "euclidean"
    ) -> np.ndarray:
        """``(n, m)`` distances between query rows and reference rows."""

    @abc.abstractmethod
    def grouped_means(
        self, values: np.ndarray, groups: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-group row means: returns ``(unique_groups, (g, d) means)``."""


class NumpyBackend(Backend):
    """The default backend: plain numpy under the global dtype policy."""

    name = "numpy"

    # -- creation -------------------------------------------------------- #
    def asarray(self, data, dtype: Optional[DtypeLike] = None) -> np.ndarray:
        resolved = resolve_dtype(dtype) if dtype is not None else default_dtype()
        return np.asarray(data, dtype=resolved)

    def zeros(self, shape, dtype: Optional[DtypeLike] = None) -> np.ndarray:
        resolved = resolve_dtype(dtype) if dtype is not None else default_dtype()
        return np.zeros(shape, dtype=resolved)

    def empty(self, shape, dtype: Optional[DtypeLike] = None) -> np.ndarray:
        resolved = resolve_dtype(dtype) if dtype is not None else default_dtype()
        return np.empty(shape, dtype=resolved)

    # -- kernels --------------------------------------------------------- #
    def pairwise_distances(
        self, queries: np.ndarray, references: np.ndarray, metric: str = "euclidean"
    ) -> np.ndarray:
        queries = np.asarray(queries)
        references = np.asarray(references)
        if queries.ndim != 2 or references.ndim != 2:
            raise ShapeError(
                f"pairwise_distances requires 2-D inputs, got {queries.shape} "
                f"and {references.shape}"
            )
        if queries.shape[1] != references.shape[1]:
            raise ShapeError(
                f"dimension mismatch: queries are {queries.shape[1]}-D, "
                f"references {references.shape[1]}-D"
            )
        if metric == "euclidean":
            # ||q - r||^2 = ||q||^2 - 2 q.r + ||r||^2 via one GEMM instead of
            # materialising the (n, m, d) difference tensor.
            q_sq = np.einsum("ij,ij->i", queries, queries)
            r_sq = np.einsum("ij,ij->i", references, references)
            squared = q_sq[:, None] - 2.0 * (queries @ references.T) + r_sq[None, :]
            np.maximum(squared, 0.0, out=squared)
            return np.sqrt(squared, out=squared)
        if metric == "cosine":
            q_norm = queries / (np.linalg.norm(queries, axis=1, keepdims=True) + 1e-12)
            r_norm = references / (np.linalg.norm(references, axis=1, keepdims=True) + 1e-12)
            return 1.0 - q_norm @ r_norm.T
        raise ConfigurationError(f"unknown metric {metric!r}")

    def grouped_means(
        self, values: np.ndarray, groups: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        values = np.asarray(values)
        groups = np.asarray(groups).reshape(-1)
        if values.ndim != 2:
            raise ShapeError(f"grouped_means requires 2-D values, got {values.shape}")
        if groups.shape[0] != values.shape[0]:
            raise ShapeError(
                f"got {groups.shape[0]} group ids for {values.shape[0]} rows"
            )
        unique, inverse = np.unique(groups, return_inverse=True)
        sums = np.zeros((unique.shape[0], values.shape[1]), dtype=values.dtype)
        np.add.at(sums, inverse, values)
        counts = np.bincount(inverse, minlength=unique.shape[0])
        return unique, sums / counts[:, None]


_ACTIVE_BACKEND: Backend = NumpyBackend()


def get_backend() -> Backend:
    """The process-wide active backend."""
    return _ACTIVE_BACKEND


def set_backend(backend: Backend) -> Backend:
    """Swap the active backend; returns the previous one."""
    global _ACTIVE_BACKEND
    if not isinstance(backend, Backend):
        raise ConfigurationError(f"expected a Backend instance, got {type(backend)!r}")
    previous = _ACTIVE_BACKEND
    _ACTIVE_BACKEND = backend
    return previous


@contextlib.contextmanager
def use_backend(backend: Backend) -> Iterator[Backend]:
    """Scoped backend override."""
    previous = set_backend(backend)
    try:
        yield backend
    finally:
        set_backend(previous)


#: Backend name → class, for spawning backends by name in worker processes.
BACKENDS = {NumpyBackend.name: NumpyBackend}


def make_backend(name: str) -> Backend:
    """A fresh backend instance by registry name (own workspace buffers)."""
    try:
        return BACKENDS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {name!r}; expected one of {sorted(BACKENDS)}"
        ) from None


def install_worker_backend(backend: Union[str, Backend] = NumpyBackend.name,
                           dtype=None) -> Backend:
    """Per-process installation hook for executor worker processes.

    A worker process (see :class:`repro.serving.ProcessExecutor`) must not
    share mutable backend state — workspace scratch buffers, the dtype
    policy — with the parent, so each worker calls this once at startup:
    a *fresh* backend instance is built (by registry name, so the parent
    only ships a string over IPC) and installed via :func:`set_backend`,
    and the worker's base compute dtype is set when given.  Returns the
    installed backend.
    """
    from repro.backend.policy import set_default_dtype

    instance = make_backend(backend) if isinstance(backend, str) else backend
    set_backend(instance)
    if dtype is not None:
        set_default_dtype(dtype)
    return instance
