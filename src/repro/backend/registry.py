"""Declarative operation registry for the autodiff engine.

The seed implementation defined every tensor operation as an ad-hoc closure
inside a ``Tensor`` method — gradients worked, but the tape was anonymous
(``_backward`` callables with no name), ops could not be tested in isolation,
and there was no seam for alternative backends.  Following the tape/record
idiom of vmad-style engines, each operation is now a registered
:class:`OpSpec` — a named record with a ``forward`` and a ``vjp`` (vector-
Jacobian product) implementation working on raw numpy arrays:

* ``forward(ctx, *arrays, **kwargs) -> ndarray`` computes the result and may
  stash intermediates on ``ctx`` for the backward pass;
* ``vjp(ctx, grad) -> tuple[ndarray | None, ...]`` returns one cotangent per
  input (``None`` for inputs that need no gradient).

:func:`apply` dispatches an op by name over tensors, wiring the resulting
tape record so it carries the op name — making the recorded graph
inspectable (see ``Tensor.trace()``) and each op unit-testable through
:func:`get_op` without building a graph at all.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

ForwardFn = Callable[..., np.ndarray]
VjpFn = Callable[..., Tuple[Optional[np.ndarray], ...]]

_REGISTRY: Dict[str, "OpSpec"] = {}

# Set by repro.autodiff.tensor at import time; apply() needs the Tensor class
# but the registry must stay import-cycle-free.
_TENSOR_CLS = None


class OpContext:
    """Per-application scratch space shared between ``forward`` and ``vjp``.

    ``needs_input_grad`` mirrors torch's convention: ``vjp`` implementations
    may skip computing cotangents for inputs whose entry is ``False``.
    """

    __slots__ = ("op_name", "needs_input_grad", "saved", "kwargs")

    def __init__(self, op_name: str) -> None:
        self.op_name = op_name
        self.needs_input_grad: Tuple[bool, ...] = ()
        self.saved: Tuple[Any, ...] = ()
        self.kwargs: Dict[str, Any] = {}

    def save(self, *values: Any) -> None:
        """Stash values needed by the backward pass."""
        self.saved = values


class OpSpec:
    """A named, declaratively registered tensor operation."""

    __slots__ = ("name", "forward", "vjp", "doc")

    def __init__(self, name: str, forward: ForwardFn, vjp: VjpFn, doc: str = "") -> None:
        self.name = name
        self.forward = forward
        self.vjp = vjp
        self.doc = doc or (forward.__doc__ or "")

    def __repr__(self) -> str:
        return f"OpSpec({self.name!r})"


def register_op(name: str, forward: ForwardFn, vjp: VjpFn, doc: str = "") -> OpSpec:
    """Register an operation; re-registering a name overwrites it."""
    spec = OpSpec(name, forward, vjp, doc)
    _REGISTRY[name] = spec
    return spec


def get_op(name: str) -> OpSpec:
    """Look up a registered op (raises ``KeyError`` with the known names)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no op named {name!r} is registered; known ops: {sorted(_REGISTRY)}"
        ) from None


def list_ops() -> Tuple[str, ...]:
    """Sorted names of every registered op."""
    return tuple(sorted(_REGISTRY))


def is_registered(name: str) -> bool:
    return name in _REGISTRY


def bind_tensor(tensor_cls) -> None:
    """Called once by ``repro.autodiff.tensor`` to break the import cycle."""
    global _TENSOR_CLS
    _TENSOR_CLS = tensor_cls


def apply(name: str, *inputs, **kwargs):
    """Apply a registered op to tensors, recording a named tape entry.

    ``inputs`` may mix tensors and array-likes; non-tensors are promoted.
    Keyword arguments are forwarded to the op's ``forward`` and kept on the
    context for the ``vjp``.
    """
    spec = get_op(name)
    tensor_cls = _TENSOR_CLS
    if tensor_cls is None:  # pragma: no cover - tensor module imports first
        from repro.autodiff.tensor import Tensor as tensor_cls  # noqa: N813

    tensors = tuple(
        x if isinstance(x, tensor_cls) else tensor_cls(x) for x in inputs
    )
    ctx = OpContext(name)
    ctx.needs_input_grad = tuple(t.requires_grad for t in tensors)
    ctx.kwargs = kwargs
    data = spec.forward(ctx, *(t.data for t in tensors), **kwargs)

    def backward(grad: np.ndarray) -> None:
        cotangents = spec.vjp(ctx, grad)
        for tensor, cotangent in zip(tensors, cotangents):
            if cotangent is not None and tensor.requires_grad:
                tensor._accumulate(cotangent)

    return tensors[0]._make(data, tensors, backward, op=name)
