"""Deterministic collective ops over a persistent shard worker pool.

This module is the communication layer of the sharded backend
(:mod:`repro.backend.sharded`).  It follows the operator-library approach of
vmad-style MPI engines: every collective is a *pure, deterministic combine
function* over indexed contributions, and the tape-facing twins
(``allreduce_sum`` / ``allreduce_mean`` / ``allgather``) are registered in the
same op registry (:mod:`repro.backend.registry`) the autodiff tensors dispatch
through, so gradient accumulation across data-parallel shards records a named
tape entry with a proper VJP instead of an anonymous closure.

Bit-exactness is a *design rule* here, not an aspiration:

* Contributions are ``(unit_index, array)`` pairs.  Every reduction sorts by
  the global unit index and left-folds in that fixed order — so the result is
  identical no matter how units were assigned to shards (shard-count
  invariance) and identical to a serial left fold over the same units.
* Work is partitioned by *whole natural units* (a class, a group, a fixed-size
  block), never by splitting one BLAS call: single-threaded BLAS kernels pick
  different blocking by matrix shape, so ``A[rows] @ B`` concatenated is *not*
  bitwise ``A @ B`` — only identical shapes give identical bits.  Each unit's
  computation therefore has exactly the same shapes serially and on a shard.

Two transports implement the same :class:`Collectives` interface:
:class:`SerialCollectives` runs shard kernels inline (the reference, and the
fallback inside worker processes — a shard worker must never spawn its own
pool), :class:`ProcessCollectives` runs them on a persistent pool of worker
processes reusing the fork-or-spawn + private-task-queue + shared-result-queue
IPC machinery of :class:`repro.serving.executor.ProcessExecutor`, including
its typed worker-death handling: a worker dying mid-collective fails the call
with :class:`~repro.exceptions.WorkerDiedError` (a collective is all-or-
nothing — a missing contribution would silently change the reduction), and the
pool respawns the worker so the next call finds a healthy world.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backend.policy import default_dtype
from repro.backend.registry import register_op
from repro.exceptions import (
    ConfigurationError,
    ExecutorError,
    ShapeError,
    WorkerDiedError,
)

#: Seconds between liveness checks while waiting on the IPC result queue.
_POLL_SECONDS = 0.1

#: Grace a ``kill_worker(wait=False)`` crash holds the worker alive for, so
#: the next collective call deterministically queues its tasks *before* the
#: worker dies — without it the death races the call's pre-queue liveness
#: check and the mid-collective failure path is only hit by luck.
_CRASH_GRACE_SECONDS = 0.25

#: Set in shard worker processes so a backend built there degrades to the
#: serial transport instead of recursively spawning pools.
_WORKER_ENV = "REPRO_SHARD_WORKER"


def in_shard_worker() -> bool:
    """Whether this process is a shard worker of some parent pool."""
    return os.environ.get(_WORKER_ENV) == "1"


# ---------------------------------------------------------------------- #
# deterministic combine functions
# ---------------------------------------------------------------------- #
def fixed_order_sum(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Left fold ``((a0 + a1) + a2) + ...`` — the one float summation order.

    Floating-point addition is not associative, so *any* reduction that wants
    to be bit-exact across shard counts must fix the fold order.  This is it:
    every collective in this module reduces in ascending unit-index order
    through this fold, which also equals the serial accumulation order.
    """
    arrays = list(arrays)
    if not arrays:
        raise ShapeError("fixed_order_sum needs at least one array")
    total = np.array(arrays[0], copy=True)
    for array in arrays[1:]:
        array = np.asarray(array)
        if array.shape != total.shape:
            raise ShapeError(
                f"fixed_order_sum got mismatched shapes {total.shape} and {array.shape}"
            )
        np.add(total, array, out=total)
    return total


Contribution = Tuple[int, np.ndarray]


def _ordered(contributions: Iterable[Contribution]) -> List[np.ndarray]:
    """Arrays in ascending unit-index order; duplicate indices are a bug."""
    items = sorted(contributions, key=lambda pair: pair[0])
    indices = [index for index, _ in items]
    if len(set(indices)) != len(indices):
        raise ConfigurationError(
            f"duplicate unit indices in collective contributions: {indices}"
        )
    return [np.asarray(array) for _, array in items]


def allreduce(contributions: Iterable[Contribution], op: str = "sum") -> np.ndarray:
    """Reduce ``(unit_index, array)`` contributions in fixed unit order.

    ``op`` is ``"sum"`` or ``"mean"``.  The result does not depend on how the
    units were distributed over shards: contributions are re-ordered by their
    *global* unit index before the left fold.
    """
    arrays = _ordered(contributions)
    if op == "sum":
        return fixed_order_sum(arrays)
    if op == "mean":
        return fixed_order_sum(arrays) / float(len(arrays))
    raise ConfigurationError(f"unknown allreduce op {op!r}; expected 'sum' or 'mean'")


def allgather(contributions: Iterable[Contribution]) -> np.ndarray:
    """Concatenate contributions along axis 0 in ascending unit order."""
    arrays = _ordered(contributions)
    return np.concatenate([np.atleast_1d(a) for a in arrays], axis=0)


def reduce_scatter(
    contributions: Iterable[Tuple[int, int, np.ndarray]], op: str = "sum"
) -> Dict[int, np.ndarray]:
    """Per-slot fixed-order reduction: ``(slot, unit_index, array)`` → slot result.

    The scatter half of MPI's reduce-scatter, coordinator-orchestrated: every
    destination ``slot`` receives the reduction of the contributions addressed
    to it, each reduced in ascending unit order (so the per-slot results are
    shard-count invariant exactly like :func:`allreduce`).
    """
    per_slot: Dict[int, List[Contribution]] = {}
    for slot, unit_index, array in contributions:
        per_slot.setdefault(int(slot), []).append((unit_index, array))
    return {slot: allreduce(items, op=op) for slot, items in sorted(per_slot.items())}


def argmin_reduce(
    contributions: Iterable[Tuple[int, float, Any]]
) -> Tuple[float, Any]:
    """Global argmin over ``(unit_index, value, payload)`` contributions.

    Ties break to the lowest unit index (strict ``<`` over ascending units),
    matching ``np.argmin``'s first-occurrence rule when unit order follows
    candidate order — the herding twin relies on that to stay deterministic.
    """
    items = sorted(contributions, key=lambda item: item[0])
    if not items:
        raise ShapeError("argmin_reduce needs at least one contribution")
    best_value, best_payload = float(items[0][1]), items[0][2]
    for _, value, payload in items[1:]:
        if float(value) < best_value:
            best_value, best_payload = float(value), payload
    return best_value, best_payload


# ---------------------------------------------------------------------- #
# tape-facing twins (registered in the op registry)
# ---------------------------------------------------------------------- #
def _allreduce_sum_forward(ctx, *arrays):
    """Fixed-order sum of the shard contributions (one tensor per shard)."""
    ctx.save(len(arrays))
    return fixed_order_sum(arrays)


def _allreduce_sum_vjp(ctx, grad):
    (count,) = ctx.saved
    return tuple(grad for _ in range(count))


def _allreduce_mean_forward(ctx, *arrays):
    """Fixed-order mean of the shard contributions."""
    ctx.save(len(arrays))
    return fixed_order_sum(arrays) / float(len(arrays))


def _allreduce_mean_vjp(ctx, grad):
    (count,) = ctx.saved
    scaled = grad / float(count)
    return tuple(scaled for _ in range(count))


def _allgather_forward(ctx, *arrays):
    """Concatenate shard contributions along axis 0 (ascending shard order)."""
    parts = [np.atleast_1d(np.asarray(a)) for a in arrays]
    ctx.save(tuple(part.shape[0] for part in parts))
    return np.concatenate(parts, axis=0)


def _allgather_vjp(ctx, grad):
    (sizes,) = ctx.saved
    cotangents = []
    offset = 0
    for size in sizes:
        cotangents.append(grad[offset:offset + size])
        offset += size
    return tuple(cotangents)


register_op(
    "allreduce_sum",
    _allreduce_sum_forward,
    _allreduce_sum_vjp,
    doc="Data-parallel sum: fixed-order fold over per-shard tensors; the "
    "gradient fans out unchanged to every shard.",
)
register_op(
    "allreduce_mean",
    _allreduce_mean_forward,
    _allreduce_mean_vjp,
    doc="Data-parallel mean: fixed-order fold over per-shard tensors divided "
    "by the shard count; the gradient fans out scaled by 1/k.",
)
register_op(
    "allgather",
    _allgather_forward,
    _allgather_vjp,
    doc="Gather per-shard tensors along axis 0 in shard order; the gradient "
    "splits back to the contributing shards.",
)


# ---------------------------------------------------------------------- #
# shard kernels
# ---------------------------------------------------------------------- #
#: Kernel name → ``fn(state, payload) -> result``.  Kernels are module-level
#: named functions (not closures) so the spawn start method can pickle the
#: *name* over IPC and resolve it worker-side.
SHARD_KERNELS: Dict[str, Callable[["ShardWorkerState", Any], Any]] = {}


def register_shard_kernel(name: str) -> Callable:
    """Decorator registering a named shard kernel."""

    def decorator(fn: Callable) -> Callable:
        SHARD_KERNELS[name] = fn
        return fn

    return decorator


def get_shard_kernel(name: str) -> Callable:
    try:
        return SHARD_KERNELS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown shard kernel {name!r}; known kernels: {sorted(SHARD_KERNELS)}"
        ) from None


class ShardWorkerState:
    """Per-shard state kernels run against: the shipped model plus a cache.

    In a worker process the model is reconstructed from the broadcast
    ``(input_dim, config fields, state_dict)`` blob; under
    :class:`SerialCollectives` it is simply the live coordinator model.  The
    ``cache`` dict lets stateful kernels (blocked herding scoring) keep
    shard-resident data across calls without re-shipping it every step.
    """

    __slots__ = ("model", "model_token", "cache")

    def __init__(self) -> None:
        self.model = None
        self.model_token: Any = None
        self.cache: Dict[Any, Any] = {}

    def install_model(self, token, input_dim, config_fields, state_dict) -> None:
        """Rebuild the embedding network from a broadcast blob (worker side).

        The network is constructed under the *shipped parameters'* dtype, not
        this process's ambient default: leaf tensors materialise in the
        construction-time policy dtype and ``load_state_dict`` casts loaded
        values to the existing parameters' dtype, so building under any other
        precision would silently re-cast the coordinator's weights and break
        bit-exactness with the serial path.
        """
        # Local imports: the backend layer must not depend on core at module
        # load (core imports backend); workers resolve it lazily.
        from repro.backend.policy import precision
        from repro.core.config import PiloteConfig
        from repro.core.embedding import EmbeddingNetwork

        fields = dict(config_fields)
        fields["hidden_dims"] = tuple(fields["hidden_dims"])
        config = PiloteConfig(**fields)
        param_values = [
            np.asarray(value)
            for key, value in state_dict.items()
            if key.startswith("param.")
        ]
        leaf_dtype = param_values[0].dtype if param_values else default_dtype()
        with precision(leaf_dtype):
            model = EmbeddingNetwork(int(input_dim), config=config)
        model.load_state_dict(state_dict)
        model.eval()
        self.model = model
        self.model_token = token

    def require_model(self):
        if self.model is None:
            raise ExecutorError("shard kernel needs a model but none was broadcast")
        return self.model


@register_shard_kernel("class_embeddings")
def _kernel_class_embeddings(state: ShardWorkerState, payload) -> Tuple[int, np.ndarray]:
    """``(class_id, rows)`` → ``(class_id, embeddings)`` under the shard model."""
    class_id, rows = payload
    return int(class_id), state.require_model().embed(rows)


@register_shard_kernel("herd_class")
def _kernel_herd_class(state: ShardWorkerState, payload) -> Tuple[int, np.ndarray]:
    """``(class_id, rows, budget)`` → ``(class_id, herding indices)``.

    Embeds the *whole* class and runs the exact serial
    :func:`repro.core.exemplars.herding_selection` — identical shapes, data
    and single-threaded kernels as the coordinator would use, so the selected
    indices are bit-for-bit the serial ones.
    """
    from repro.core.exemplars import herding_selection

    class_id, rows, budget = payload
    embeddings = state.require_model().embed(rows)
    indices = herding_selection(rows, embeddings, int(budget))
    return int(class_id), indices


@register_shard_kernel("class_prototype")
def _kernel_class_prototype(state: ShardWorkerState, payload) -> Tuple[int, np.ndarray]:
    """``(class_id, exemplar rows)`` → ``(class_id, mean embedding)``."""
    class_id, rows = payload
    embeddings = state.require_model().embed(rows)
    return int(class_id), embeddings.mean(axis=0)


@register_shard_kernel("grouped_partial")
def _kernel_grouped_partial(state: ShardWorkerState, payload):
    """Partial grouped sums for a contiguous chunk of groups.

    ``(chunk_index, values, local_inverse, n_groups)`` → ``(chunk_index,
    sums, counts)``.  ``np.add.at`` is an unbuffered sequential accumulate in
    row order, so each group's sum is the same left fold the serial
    ``grouped_means`` computes — whole groups on one shard keep it bit-exact.
    """
    chunk_index, values, inverse, n_groups = payload
    values = np.asarray(values)
    inverse = np.asarray(inverse)
    sums = np.zeros((int(n_groups), values.shape[1]), dtype=values.dtype)
    np.add.at(sums, inverse, values)
    counts = np.bincount(inverse, minlength=int(n_groups))
    return int(chunk_index), sums, counts


@register_shard_kernel("herd_score")
def _kernel_herd_score(state: ShardWorkerState, payload):
    """Blocked candidate scoring for the intra-class herding twin.

    The payload is a dict: ``{"key", "blocks", "centre", "remove"}``.  On the
    first call ``blocks`` carries this shard's fixed-size candidate blocks as
    ``(block_index, embeddings, squared_norms, global_offset)`` tuples, cached
    under ``key`` so later steps only ship the (tiny) centre vector.
    ``remove`` marks a globally selected candidate unavailable.  Returns one
    ``(block_index, min_value, global_argmin_index)`` per live block — the
    coordinator folds them with :func:`argmin_reduce`.
    """
    key = payload["key"]
    if payload.get("blocks") is not None:
        state.cache[key] = [
            {
                "index": int(block_index),
                "embeddings": np.asarray(embeddings),
                "squared_norms": np.asarray(squared_norms),
                "offset": int(offset),
                "available": np.ones(np.asarray(embeddings).shape[0], dtype=bool),
            }
            for block_index, embeddings, squared_norms, offset in payload["blocks"]
        ]
    blocks = state.cache.get(key)
    if blocks is None:
        raise ExecutorError(f"herd_score called before its blocks were shipped ({key!r})")
    remove = payload.get("remove")
    if remove is not None:
        for block in blocks:
            local = int(remove) - block["offset"]
            if 0 <= local < block["available"].shape[0]:
                block["available"][local] = False
    centre = payload.get("centre")
    if centre is None:
        return []
    centre = np.asarray(centre)
    results = []
    for block in blocks:
        if not block["available"].any():
            continue
        scores = 2.0 * (block["embeddings"] @ centre) + block["squared_norms"]
        scores[~block["available"]] = np.inf
        local_best = int(np.argmin(scores))
        results.append(
            (block["index"], float(scores[local_best]), block["offset"] + local_best)
        )
    return results


@register_shard_kernel("herd_release")
def _kernel_herd_release(state: ShardWorkerState, payload):
    """Drop a cached herding working set (``payload`` is the cache key)."""
    state.cache.pop(payload, None)
    return None


# ---------------------------------------------------------------------- #
# process worker machinery (mirrors serving/executor.py's pool idioms)
# ---------------------------------------------------------------------- #
def _portable_error(error: BaseException) -> BaseException:
    """The error itself when picklable, else a typed stand-in."""
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return ExecutorError(f"{type(error).__name__}: {error}")


def _shard_worker_main(worker_index, task_queue, result_queue, backend_name, dtype_name):
    """Shard worker loop: install a backend, run named kernels on demand.

    Messages: ``("model", token, input_dim, config_fields, state_dict)``
    rebuilds the shard's embedding network; ``("dtype", name)`` re-installs
    the compute dtype (the coordinator's policy is a dynamic scoped setting —
    ``precision(...)`` — so the spawn-time dtype can go stale) and drops the
    resident model so the next broadcast rebuilds it under the new precision;
    ``("run", task_id, kernel_name, payload)`` answers ``(task_id, result,
    error)`` on the shared result queue; ``("crash",)`` kills the process
    without cleanup (the typed worker-death tests); ``None`` shuts down
    cleanly.
    """
    os.environ[_WORKER_ENV] = "1"
    from repro.backend.backend import install_worker_backend
    from repro.backend.policy import set_default_dtype

    install_worker_backend(backend_name, dtype=dtype_name)
    state = ShardWorkerState()
    while True:
        try:
            message = task_queue.get()
        except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover
            break
        if message is None:
            break
        kind = message[0]
        if kind == "dtype":
            set_default_dtype(message[1])
            # The resident model was built under the old precision; the
            # coordinator resets this worker's token so the next run
            # re-broadcasts and install_model rebuilds it.
            state.model = None
            state.model_token = None
            continue
        if kind == "model":
            _, token, input_dim, config_fields, state_dict = message
            try:
                state.install_model(token, input_dim, config_fields, state_dict)
            except Exception:
                # Surfaces as a typed failure on the next "run" that needs it.
                state.model = None
                state.model_token = None
            continue
        if kind == "crash":
            if len(message) > 1 and message[1]:
                time.sleep(message[1])
            os._exit(1)
        _, task_id, kernel_name, payload = message
        try:
            kernel = get_shard_kernel(kernel_name)
            result = kernel(state, payload)
        except Exception as error:
            result_queue.put((task_id, None, _portable_error(error)))
        else:
            result_queue.put((task_id, result, None))


class _ShardWorker:
    """One pool member: the OS process, its private task queue, shipped token."""

    __slots__ = ("index", "process", "task_queue", "model_token", "dtype_name")

    def __init__(self, index, process, task_queue, dtype_name) -> None:
        self.index = index
        self.process = process
        self.task_queue = task_queue
        # Token of the model blob this worker holds; a respawned replacement
        # starts at None so the next run re-broadcasts to it.
        self.model_token: Any = None
        # Compute dtype the worker currently has installed; re-synced before
        # every collective because the coordinator's dtype is a scoped policy.
        self.dtype_name = dtype_name


# ---------------------------------------------------------------------- #
# transports
# ---------------------------------------------------------------------- #
class Collectives:
    """Transport running shard kernels over a logical world of ``shards``.

    The combine half (``allreduce``/``allgather``/``reduce_scatter``) is pure
    and transport-independent — it always reduces in global unit order — so
    the two transports differ only in *where* kernels run.
    """

    #: Registry key of the transport.
    name: str = "abstract"

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        self.shards = int(shards)

    @property
    def world_size(self) -> int:
        return self.shards

    def partition(self, n_units: int) -> List[range]:
        """Contiguous, balanced unit ranges, one per shard (possibly empty)."""
        base, extra = divmod(max(int(n_units), 0), self.shards)
        ranges: List[range] = []
        start = 0
        for shard in range(self.shards):
            size = base + (1 if shard < extra else 0)
            ranges.append(range(start, start + size))
            start += size
        return ranges

    # combine functions, exposed on the transport for call-site convenience
    allreduce = staticmethod(allreduce)
    allgather = staticmethod(allgather)
    reduce_scatter = staticmethod(reduce_scatter)
    argmin_reduce = staticmethod(argmin_reduce)

    def broadcast_model(self, model, token: Any) -> None:
        """Make ``model`` available to every shard (idempotent per ``token``)."""
        raise NotImplementedError

    def run(self, kernel: str, payloads: Sequence[Any]) -> List[Any]:
        """Run a named kernel over payloads; results in payload order.

        Payload ``i`` runs on shard ``i % world_size`` — callers build one
        payload per natural unit and rely on the combine functions for order
        independence, so the placement policy is free to stay simple.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release worker pools (idempotent; the serial transport is a no-op)."""

    def describe(self) -> str:
        return f"{self.name}[{self.shards}]"


class SerialCollectives(Collectives):
    """Inline transport: kernels run in-process against the live model.

    The reference implementation every sharded result is gated against, and
    the automatic fallback inside shard workers (:func:`in_shard_worker`) so
    an installed sharded backend can never recursively spawn pools.
    """

    name = "serial"

    def __init__(self, shards: int = 1) -> None:
        super().__init__(shards)
        self._state = ShardWorkerState()

    def broadcast_model(self, model, token: Any) -> None:
        self._state.model = model
        self._state.model_token = token

    def run(self, kernel: str, payloads: Sequence[Any]) -> List[Any]:
        fn = get_shard_kernel(kernel)
        return [fn(self._state, payload) for payload in payloads]


class ProcessCollectives(Collectives):
    """Persistent multi-process transport, one OS process per shard.

    Reuses the :class:`~repro.serving.executor.ProcessExecutor` pool idioms:
    fork when available (spawn otherwise), a private task queue per worker, a
    shared result queue polled with liveness checks, chaos ``("crash",)``
    injection, and identity-based dead-worker reaping with respawn.  Unlike
    the serving executor — where one dead batch fails one future — a dead
    worker here fails the *whole* collective call with
    :class:`~repro.exceptions.WorkerDiedError`: a reduction missing one
    shard's contribution would be silently wrong, which is worse than loud.
    """

    name = "process"

    def __init__(
        self,
        shards: int,
        backend_name: str = "numpy",
        timeout: Optional[float] = None,
    ) -> None:
        if timeout is not None and timeout <= 0:
            raise ConfigurationError(f"timeout must be positive, got {timeout}")
        super().__init__(shards)
        methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._backend_name = backend_name
        #: Optional wall-clock bound per collective call.  A worker that is
        #: *alive but stuck* (wedged BLAS call, blocked queue put) never trips
        #: the dead-worker reaping, so without a deadline the call would spin
        #: forever; past the bound the stuck workers are killed, their slots
        #: respawned, and the call fails with a typed ExecutorError.
        self._timeout = timeout
        self._workers: List[_ShardWorker] = []
        self._results = None
        self._task_counter = 0
        # Last broadcast model blob: (token, input_dim, config_fields, state).
        self._model_blob: Optional[tuple] = None

    # -- pool lifecycle ------------------------------------------------- #
    def _ensure_workers(self) -> None:
        if self._workers:
            return
        if self._results is None:
            self._results = self._context.Queue()
        for index in range(self.shards):
            self._spawn(index)

    def _spawn(self, index: int) -> None:
        task_queue = self._context.Queue()
        dtype_name = str(default_dtype())
        process = self._context.Process(
            target=_shard_worker_main,
            args=(index, task_queue, self._results, self._backend_name,
                  dtype_name),
            daemon=True,
            name=f"repro-shard-{index}",
        )
        process.start()
        worker = _ShardWorker(index, process, task_queue, dtype_name)
        if index < len(self._workers):
            self._workers[index] = worker
        else:
            self._workers.append(worker)

    def kill_worker(self, index: int, *, wait: bool = True) -> int:
        """Chaos hook: crash one shard worker (``os._exit`` in-process).

        With ``wait`` the process is joined, so the next collective call
        finds the worker already dead *before* queueing and silently respawns
        the slot (the died-idle path — no typed failure).  Without it the
        crash message sits ahead of whatever that call queues — and carries a
        short grace sleep holding the worker alive through that call's
        pre-queue liveness check — so the worker deterministically dies
        holding tasks: the mid-collective death that fails the whole call
        with :class:`~repro.exceptions.WorkerDiedError`.  Returns the pool
        index.
        """
        self._ensure_workers()
        worker = self._workers[index % self.shards]
        worker.task_queue.put(("crash",) if wait else ("crash", _CRASH_GRACE_SECONDS))
        if wait:
            worker.process.join(timeout=5.0)
        return worker.index

    def close(self) -> None:
        for worker in self._workers:
            try:
                worker.task_queue.put(None)
            except (ValueError, OSError):  # pragma: no cover - queue torn down
                pass
        for worker in self._workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        self._workers = []
        if self._results is not None:
            self._results.close()
            self._results = None

    # -- model broadcast ------------------------------------------------ #
    def broadcast_model(self, model, token: Any) -> None:
        """Record the model blob; shipped lazily, per worker, keyed by token.

        The blob is built once per token (``state_dict`` copies the params so
        later training steps cannot mutate what a worker will deserialise);
        :meth:`run` ships it only to workers whose held token differs — a
        respawned worker starts at ``None`` and re-syncs automatically.
        """
        if self._model_blob is not None and self._model_blob[0] == token:
            return
        import dataclasses

        self._model_blob = (
            token,
            int(model.input_dim),
            dataclasses.asdict(model.config),
            model.state_dict(),
        )

    def _sync_model(self, worker: _ShardWorker) -> None:
        if self._model_blob is None:
            return
        token, input_dim, config_fields, state = self._model_blob
        if worker.model_token == token:
            return
        worker.task_queue.put(("model", token, input_dim, config_fields, state))
        worker.model_token = token

    def _sync_dtype(self, worker: _ShardWorker) -> None:
        """Re-install the call-time compute dtype on a stale worker.

        The coordinator's dtype is a *scoped* policy (``precision(...)``), so
        a pool spawned under one precision can serve calls made under another;
        without this re-sync the worker would rebuild models and embed under
        the spawn-time dtype and silently diverge from the serial path.  The
        dtype message is queued ahead of any model/run message for this call
        (private FIFO task queue), and the worker's held model token is reset
        so the resident network is rebuilt under the new precision.
        """
        current = str(default_dtype())
        if worker.dtype_name == current:
            return
        worker.task_queue.put(("dtype", current))
        worker.dtype_name = current
        worker.model_token = None

    # -- execution ------------------------------------------------------ #
    def run(self, kernel: str, payloads: Sequence[Any]) -> List[Any]:
        self._ensure_workers()
        get_shard_kernel(kernel)  # fail fast on typos, before any IPC
        deadline = (
            time.monotonic() + self._timeout if self._timeout is not None else None
        )
        pending: Dict[int, int] = {}  # task_id -> payload position
        owners: Dict[int, _ShardWorker] = {}
        ordered: List[Any] = [None] * len(payloads)
        for position, payload in enumerate(payloads):
            worker = self._workers[position % self.shards]
            if not worker.process.is_alive():
                # Died idle between calls: respawn before queueing so the
                # call doesn't burn its tasks just to notice.
                self._spawn(worker.index)
                worker = self._workers[worker.index]
            self._sync_dtype(worker)
            self._sync_model(worker)
            self._task_counter += 1
            task_id = self._task_counter
            pending[task_id] = position
            owners[task_id] = worker
            worker.task_queue.put(("run", task_id, kernel, payload))
        failure: Optional[BaseException] = None
        while pending:
            try:
                task_id, result, error = self._results.get(timeout=_POLL_SECONDS)
            except queue.Empty:
                died = self._reap_dead(pending, owners)
                if died is not None and failure is None:
                    failure = died
                if deadline is not None and pending and time.monotonic() > deadline:
                    self._fail_stuck(kernel, pending, owners)
                continue
            position = pending.pop(task_id, None)
            if position is None:
                # Late answer for a task already failed via a dead worker —
                # the collective was aborted once; never resurrect it.
                continue
            owners.pop(task_id, None)
            if error is not None and failure is None:
                failure = error
            ordered[position] = result
        if failure is not None:
            raise failure
        return ordered

    def _reap_dead(self, pending, owners) -> Optional[WorkerDiedError]:
        """Fail tasks owned by dead workers; respawn their slots.

        Matching is by worker *identity*: a slot respawned mid-call may own
        tasks under both the dead object and its replacement, and only the
        former's are failed.  Returns the typed error (the whole collective
        aborts) or ``None`` when everyone is alive.
        """
        dead = {
            id(worker): worker
            for worker in owners.values()
            if not worker.process.is_alive()
        }
        if not dead:
            return None
        error: Optional[WorkerDiedError] = None
        for task_id in [tid for tid, worker in owners.items() if id(worker) in dead]:
            pending.pop(task_id, None)
            worker = owners.pop(task_id)
            if error is None:
                error = WorkerDiedError(
                    f"shard worker {worker.index} (pid {worker.process.pid}) "
                    f"died mid-collective; the reduction is incomplete"
                )
        for worker in dead.values():
            if self._workers[worker.index] is worker:
                self._spawn(worker.index)
        return error

    def _fail_stuck(self, kernel: str, pending, owners) -> None:
        """Kill alive-but-wedged workers past the deadline; raise typed.

        The mirror of :meth:`_reap_dead` for the hang case: every worker
        still owning a task is terminated (a stuck process cannot be asked
        nicely), its slot respawned so the next collective finds a healthy
        world, and the whole call fails with :class:`~repro.exceptions
        .ExecutorError` — a silent infinite spin is strictly worse than a
        loud abort.
        """
        stuck = {id(worker): worker for worker in owners.values()}
        for worker in stuck.values():
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            if self._workers[worker.index] is worker:
                self._spawn(worker.index)
        indices = sorted({worker.index for worker in stuck.values()})
        pending.clear()
        owners.clear()
        raise ExecutorError(
            f"collective {kernel!r} exceeded its {self._timeout:.3f}s deadline "
            f"with {len(indices)} worker(s) unresponsive (shard indices "
            f"{indices}); the stuck workers were killed and respawned"
        )


#: Transport name → class, for building collectives by name.
COLLECTIVES = {
    SerialCollectives.name: SerialCollectives,
    ProcessCollectives.name: ProcessCollectives,
}


def make_collectives(
    spec: Union[str, Collectives, None],
    shards: int,
    backend_name: str = "numpy",
    timeout: Optional[float] = None,
) -> Collectives:
    """Resolve a transport from a name, an instance or ``None``.

    ``None`` picks ``"process"`` outside a shard worker and ``"serial"``
    inside one (nested pools are never spawned).  A one-shard world always
    gets the serial transport — there is nothing to parallelise.  ``timeout``
    bounds each process-transport collective call (see
    :class:`ProcessCollectives`); the serial transport ignores it.
    """
    if isinstance(spec, Collectives):
        return spec
    if spec is None:
        spec = "serial" if in_shard_worker() else "process"
    if spec == "process" and (shards <= 1 or in_shard_worker()):
        spec = "serial"
    try:
        transport = COLLECTIVES[spec]
    except (KeyError, TypeError):
        raise ConfigurationError(
            f"unknown collectives transport {spec!r}; expected one of "
            f"{sorted(COLLECTIVES)}"
        ) from None
    if transport is ProcessCollectives:
        return ProcessCollectives(shards, backend_name=backend_name, timeout=timeout)
    return transport(shards)
