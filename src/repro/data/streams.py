"""Class-incremental scenario construction.

The paper's evaluation protocol designates one activity as the *new class*:
the model is pre-trained on the remaining four activities on the cloud, and
then has to learn the held-out activity on the edge from a limited number of
samples.  :func:`build_incremental_scenario` packages all the pieces needed by
PILOTE and the baselines: the old-class training/validation data, the
new-class sample pool, and a test set covering *all* classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.dataset import DatasetSplits, HARDataset, train_val_test_split
from repro.exceptions import DataError
from repro.utils.rng import RandomState, resolve_rng


@dataclass
class IncrementalScenario:
    """All data partitions for one class-incremental experiment.

    Attributes
    ----------
    old_classes / new_classes:
        Class ids known at pre-training time vs introduced on the edge.
    old_train, old_validation:
        Cloud-side data for the old classes.
    new_train, new_validation:
        Edge-side data for the new classes (the paper's ``D_n``); typically far
        smaller than the old-class data.
    test:
        Test set covering old *and* new classes (the paper reports accuracy on
        the full five-activity test set).
    """

    old_classes: List[int]
    new_classes: List[int]
    old_train: HARDataset
    old_validation: HARDataset
    new_train: HARDataset
    new_validation: HARDataset
    test: HARDataset

    @property
    def all_classes(self) -> List[int]:
        return sorted(set(self.old_classes) | set(self.new_classes))

    def describe(self) -> Dict[str, object]:
        """Summary dictionary used by logs and experiment records."""
        return {
            "old_classes": list(self.old_classes),
            "new_classes": list(self.new_classes),
            "old_train_size": self.old_train.n_samples,
            "new_train_size": self.new_train.n_samples,
            "test_size": self.test.n_samples,
        }


def build_incremental_scenario(
    dataset: HARDataset,
    new_classes: Sequence[int],
    *,
    test_fraction: float = 0.3,
    validation_fraction: float = 0.2,
    new_class_samples: Optional[int] = None,
    rng: RandomState = None,
) -> IncrementalScenario:
    """Split ``dataset`` into the paper's incremental-learning protocol.

    Parameters
    ----------
    dataset:
        The full multi-class dataset.
    new_classes:
        Class ids treated as "new" (unseen during pre-training).
    test_fraction, validation_fraction:
        Split ratios (paper defaults: 30% test, 0.2 validation).
    new_class_samples:
        If given, the new-class training pool is randomly capped to this many
        samples per new class — this is how the extreme-edge scenarios
        (Figure 7) limit the available new-class data.
    rng:
        Seed or generator.
    """
    generator = resolve_rng(rng)
    new_set = {int(c) for c in new_classes}
    if not new_set:
        raise DataError("at least one new class is required")
    known = {int(c) for c in dataset.classes}
    unknown = new_set - known
    if unknown:
        raise DataError(f"new classes {sorted(unknown)} are not present in the dataset")
    old_set = known - new_set
    if not old_set:
        raise DataError("at least one old class must remain for pre-training")

    splits: DatasetSplits = train_val_test_split(
        dataset,
        test_fraction=test_fraction,
        validation_fraction=validation_fraction,
        rng=generator,
    )
    old_train = splits.train.select_classes(old_set)
    old_validation = splits.validation.select_classes(old_set)
    new_train = splits.train.select_classes(new_set)
    new_validation = splits.validation.select_classes(new_set)
    if new_class_samples is not None:
        new_train = new_train.subsample(new_class_samples, per_class=True, rng=generator)

    return IncrementalScenario(
        old_classes=sorted(old_set),
        new_classes=sorted(new_set),
        old_train=old_train,
        old_validation=old_validation,
        new_train=new_train,
        new_validation=new_validation,
        test=splits.test,
    )
