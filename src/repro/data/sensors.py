"""Mobile sensor suite model.

The paper records "roughly 120 sequential measurements from 22 mobile sensors,
e.g., accelerometer, gyroscope, and magnetometer" per one-second window.  The
default suite modelled here consists of six three-axis sensors (18 channels)
and four scalar channels, 22 channels in total; the triaxial group layout
drives both the synthetic generator and the 80-feature extractor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class SensorSuite:
    """Description of the channel layout of a device's sensor array.

    Attributes
    ----------
    channel_names:
        One name per channel, in column order.
    triaxial_groups:
        Index triples identifying the (x, y, z) channels of three-axis sensors.
    sampling_rate_hz:
        Nominal sampling rate of the suite.
    """

    channel_names: Tuple[str, ...]
    triaxial_groups: Tuple[Tuple[int, int, int], ...]
    sampling_rate_hz: float = 120.0

    def __post_init__(self) -> None:
        n = len(self.channel_names)
        if n == 0:
            raise ConfigurationError("a sensor suite needs at least one channel")
        if self.sampling_rate_hz <= 0:
            raise ConfigurationError("sampling_rate_hz must be positive")
        for group in self.triaxial_groups:
            if len(group) != 3:
                raise ConfigurationError(f"triaxial groups must have 3 channels, got {group}")
            if any(index < 0 or index >= n for index in group):
                raise ConfigurationError(
                    f"triaxial group {group} references channels outside 0..{n - 1}"
                )

    @property
    def n_channels(self) -> int:
        return len(self.channel_names)

    @property
    def window_length(self) -> int:
        """Samples per one-second window at the nominal rate."""
        return int(round(self.sampling_rate_hz))

    def scalar_channels(self) -> List[int]:
        """Indices of channels that are not part of any triaxial group."""
        triaxial = {index for group in self.triaxial_groups for index in group}
        return [i for i in range(self.n_channels) if i not in triaxial]


_TRIAXIAL_SENSORS = (
    "accelerometer",
    "gyroscope",
    "magnetometer",
    "gravity",
    "linear_acceleration",
    "rotation_vector",
)
_SCALAR_SENSORS = ("pressure", "light", "proximity", "ambient_temperature")


def default_sensor_suite(sampling_rate_hz: float = 120.0) -> SensorSuite:
    """The 22-channel suite used throughout the reproduction.

    Six triaxial sensors (accelerometer, gyroscope, magnetometer, gravity,
    linear acceleration, rotation vector = 18 channels) plus four scalar
    sensors (pressure, light, proximity, ambient temperature).
    """
    names: List[str] = []
    groups: List[Tuple[int, int, int]] = []
    for sensor in _TRIAXIAL_SENSORS:
        start = len(names)
        names.extend(f"{sensor}_{axis}" for axis in ("x", "y", "z"))
        groups.append((start, start + 1, start + 2))
    names.extend(_SCALAR_SENSORS)
    return SensorSuite(
        channel_names=tuple(names),
        triaxial_groups=tuple(groups),
        sampling_rate_hz=sampling_rate_hz,
    )
