"""Activity taxonomy.

The paper's data-collection campaign covers five physical activities:
*Drive*, *E-scooter*, *Run*, *Still* and *Walk*.  The integer values assigned
here are the canonical class identifiers used throughout the library.
"""

from __future__ import annotations

import enum
from typing import List

from repro.exceptions import DataError


class Activity(enum.IntEnum):
    """The five human physical activities studied in the paper."""

    DRIVE = 0
    ESCOOTER = 1
    RUN = 2
    STILL = 3
    WALK = 4

    @property
    def display_name(self) -> str:
        """Name as printed in the paper's tables/figures."""
        return _DISPLAY_NAMES[self]


_DISPLAY_NAMES = {
    Activity.DRIVE: "Drive",
    Activity.ESCOOTER: "E-scooter",
    Activity.RUN: "Run",
    Activity.STILL: "Still",
    Activity.WALK: "Walk",
}

#: Display names ordered by class id — handy for table headers.
ACTIVITY_NAMES: List[str] = [_DISPLAY_NAMES[a] for a in Activity]


def activity_names() -> List[str]:
    """Return the five activity display names in class-id order."""
    return list(ACTIVITY_NAMES)


def activity_from_name(name: str) -> Activity:
    """Look up an :class:`Activity` from its display name (case-insensitive)."""
    normalised = name.strip().lower().replace("_", "-")
    for activity, display in _DISPLAY_NAMES.items():
        if display.lower() == normalised:
            return activity
    aliases = {"e-scooter": Activity.ESCOOTER, "escooter": Activity.ESCOOTER}
    if normalised in aliases:
        return aliases[normalised]
    raise DataError(f"unknown activity {name!r}; expected one of {ACTIVITY_NAMES}")
