"""Dataset containers and splitting utilities."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DataError
from repro.utils.rng import RandomState, resolve_rng
from repro.utils.validation import check_feature_matrix


@dataclass
class HARDataset:
    """A labelled feature dataset (rows = windows, columns = features).

    Attributes
    ----------
    features:
        ``(n_samples, n_features)`` feature matrix.
    labels:
        ``(n_samples,)`` integer class ids.
    label_names:
        Optional mapping from class id to display name.
    """

    features: np.ndarray
    labels: np.ndarray
    label_names: Dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.features, self.labels = check_feature_matrix(self.features, self.labels)

    # ------------------------------------------------------------------ #
    @property
    def n_samples(self) -> int:
        return self.features.shape[0]

    @property
    def n_features(self) -> int:
        return self.features.shape[1]

    @property
    def classes(self) -> np.ndarray:
        """Sorted unique class ids present in the dataset."""
        return np.unique(self.labels)

    def __len__(self) -> int:
        return self.n_samples

    def class_name(self, class_id: int) -> str:
        """Display name of a class (falls back to ``class_<id>``)."""
        return self.label_names.get(int(class_id), f"class_{int(class_id)}")

    # ------------------------------------------------------------------ #
    def select_classes(self, classes: Iterable[int]) -> "HARDataset":
        """Return the sub-dataset containing only the given classes."""
        wanted = set(int(c) for c in classes)
        if not wanted:
            raise DataError("select_classes requires at least one class")
        mask = np.isin(self.labels, sorted(wanted))
        if not mask.any():
            raise DataError(f"none of the classes {sorted(wanted)} are present in the dataset")
        return HARDataset(
            features=self.features[mask],
            labels=self.labels[mask],
            label_names=dict(self.label_names),
        )

    def exclude_classes(self, classes: Iterable[int]) -> "HARDataset":
        """Return the sub-dataset without the given classes."""
        unwanted = set(int(c) for c in classes)
        keep = [int(c) for c in self.classes if int(c) not in unwanted]
        return self.select_classes(keep)

    def class_subset(self, class_id: int) -> np.ndarray:
        """Feature rows of a single class."""
        mask = self.labels == int(class_id)
        if not mask.any():
            raise DataError(f"class {class_id} is not present in the dataset")
        return self.features[mask]

    def subsample(
        self, n_samples: int, *, per_class: bool = False, rng: RandomState = None
    ) -> "HARDataset":
        """Random subsample of the dataset (optionally stratified per class)."""
        if n_samples <= 0:
            raise DataError(f"n_samples must be positive, got {n_samples}")
        generator = resolve_rng(rng)
        if per_class:
            indices: List[np.ndarray] = []
            for class_id in self.classes:
                class_indices = np.flatnonzero(self.labels == class_id)
                take = min(n_samples, class_indices.size)
                indices.append(generator.choice(class_indices, size=take, replace=False))
            chosen = np.concatenate(indices)
        else:
            take = min(n_samples, self.n_samples)
            chosen = generator.choice(self.n_samples, size=take, replace=False)
        chosen.sort()
        return HARDataset(
            features=self.features[chosen],
            labels=self.labels[chosen],
            label_names=dict(self.label_names),
        )

    def shuffled(self, rng: RandomState = None) -> "HARDataset":
        """Return a row-shuffled copy."""
        generator = resolve_rng(rng)
        order = generator.permutation(self.n_samples)
        return HARDataset(
            features=self.features[order],
            labels=self.labels[order],
            label_names=dict(self.label_names),
        )

    def merge(self, other: "HARDataset") -> "HARDataset":
        """Concatenate two datasets with the same feature dimensionality."""
        if self.n_features != other.n_features:
            raise DataError(
                f"cannot merge datasets with {self.n_features} and {other.n_features} features"
            )
        names = dict(self.label_names)
        names.update(other.label_names)
        return HARDataset(
            features=np.concatenate([self.features, other.features], axis=0),
            labels=np.concatenate([self.labels, other.labels], axis=0),
            label_names=names,
        )

    def class_distribution(self) -> Dict[int, int]:
        """Mapping ``class id -> sample count``."""
        values, counts = np.unique(self.labels, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}


@dataclass
class DatasetSplits:
    """Train / validation / test partition of a :class:`HARDataset`."""

    train: HARDataset
    validation: HARDataset
    test: HARDataset

    def sizes(self) -> Tuple[int, int, int]:
        return self.train.n_samples, self.validation.n_samples, self.test.n_samples


def train_val_test_split(
    dataset: HARDataset,
    *,
    test_fraction: float = 0.3,
    validation_fraction: float = 0.2,
    stratified: bool = True,
    rng: RandomState = None,
) -> DatasetSplits:
    """Split a dataset following the paper's protocol.

    The paper holds out 30% of the records as the test set and uses a 0.2
    validation split of the remaining data for both pre-training and
    incremental training.  ``validation_fraction`` is relative to the non-test
    portion.
    """
    if not 0.0 < test_fraction < 1.0:
        raise DataError(f"test_fraction must be in (0, 1), got {test_fraction}")
    if not 0.0 <= validation_fraction < 1.0:
        raise DataError(f"validation_fraction must be in [0, 1), got {validation_fraction}")
    generator = resolve_rng(rng)

    def split_indices(indices: np.ndarray, fraction: float) -> Tuple[np.ndarray, np.ndarray]:
        permuted = generator.permutation(indices)
        cut = int(round(fraction * indices.size))
        return permuted[cut:], permuted[:cut]

    if stratified:
        train_parts, val_parts, test_parts = [], [], []
        for class_id in dataset.classes:
            class_indices = np.flatnonzero(dataset.labels == class_id)
            remaining, test_idx = split_indices(class_indices, test_fraction)
            train_idx, val_idx = split_indices(remaining, validation_fraction)
            train_parts.append(train_idx)
            val_parts.append(val_idx)
            test_parts.append(test_idx)
        train_indices = np.concatenate(train_parts)
        val_indices = np.concatenate(val_parts)
        test_indices = np.concatenate(test_parts)
    else:
        all_indices = np.arange(dataset.n_samples)
        remaining, test_indices = split_indices(all_indices, test_fraction)
        train_indices, val_indices = split_indices(remaining, validation_fraction)

    def subset(indices: np.ndarray) -> HARDataset:
        indices = np.sort(indices)
        return HARDataset(
            features=dataset.features[indices],
            labels=dataset.labels[indices],
            label_names=dict(dataset.label_names),
        )

    if train_indices.size == 0 or test_indices.size == 0:
        raise DataError("split produced an empty train or test partition")
    if val_indices.size == 0:
        # Keep the validation set non-empty so early stopping always has data.
        val_indices, train_indices = train_indices[:1], train_indices[1:]
    return DatasetSplits(
        train=subset(train_indices),
        validation=subset(val_indices),
        test=subset(test_indices),
    )
