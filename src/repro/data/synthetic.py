"""Synthetic MAGNETO-like sensor data.

The original evaluation data (a >100 GB proprietary collection campaign) is not
available, so this module generates a synthetic substitute with the same shape
and — crucially — the same class-similarity topology:

* **Still** — near-constant signals with small sensor noise.
* **Walk** — periodic locomotion around 1.9 Hz with moderate amplitude.
* **Run** — periodic locomotion around 2.7 Hz with higher amplitude; the
  frequency/amplitude distributions deliberately overlap with *Walk* so the
  two classes are confusable, reproducing the paper's Run↔Walk confusion
  structure (Figure 4).
* **Drive** — low-frequency body motion plus high-frequency engine vibration,
  strong pressure/temperature signature.
* **E-scooter** — vibration-dominated like *Drive* but with more gyroscope
  activity and a different vibration band, making it well separated.

Each generated window is ``(window_length, n_channels)`` and is produced by a
harmonic locomotion component, a vibration component, per-window and per-user
random factors, sensor noise and slow drift.  Passing the windows through the
80-feature statistical extractor yields the feature vectors used everywhere
else in the library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.data.activities import Activity
from repro.data.sensors import SensorSuite, default_sensor_suite
from repro.exceptions import ConfigurationError, DataError
from repro.features.extractor import StatisticalFeatureExtractor
from repro.timeseries.normalize import z_score
from repro.utils.rng import RandomState, resolve_rng


@dataclass(frozen=True)
class ActivitySignature:
    """Parametric description of how one activity excites the sensor suite.

    All "mean/std" pairs describe per-window lognormal-ish variation: each
    window draws its own value, which is what creates intra-class variance and
    inter-class overlap.

    Attributes
    ----------
    locomotion_hz:
        Mean fundamental frequency of the body motion (steps, vehicle sway).
    locomotion_hz_std:
        Per-window standard deviation of that frequency.
    accel_amplitude / accel_amplitude_std:
        Amplitude of the locomotion component on the accelerometer-like sensors.
    gyro_amplitude / gyro_amplitude_std:
        Amplitude of the rotation component on the gyroscope-like sensors.
    vibration_level:
        Standard deviation of the high-frequency vibration component
        (engine/road vibration for Drive and E-scooter).
    vibration_hz:
        Centre frequency of the vibration band.
    noise_level:
        Standard deviation of white sensor noise added to every channel.
    drift_level:
        Magnitude of a slow random-walk drift (simulates sensor bias drift).
    scalar_levels:
        Mean values of the four scalar channels (pressure, light, proximity,
        temperature), expressed in normalised units.
    harmonic_ratio:
        Relative amplitude of the second harmonic of the locomotion component.
    """

    locomotion_hz: float
    locomotion_hz_std: float
    accel_amplitude: float
    accel_amplitude_std: float
    gyro_amplitude: float
    gyro_amplitude_std: float
    vibration_level: float
    vibration_hz: float
    noise_level: float
    drift_level: float
    scalar_levels: Tuple[float, float, float, float]
    harmonic_ratio: float = 0.35


def default_signatures() -> Dict[Activity, ActivitySignature]:
    """The calibrated per-activity signatures used by the reproduction.

    Run and Walk overlap on purpose (adjacent frequency bands, overlapping
    amplitude ranges); Still is nearly silent; Drive and E-scooter are
    vibration-dominated with distinct scalar-channel signatures.
    """
    return {
        Activity.STILL: ActivitySignature(
            locomotion_hz=0.2,
            locomotion_hz_std=0.08,
            accel_amplitude=0.05,
            accel_amplitude_std=0.03,
            gyro_amplitude=0.03,
            gyro_amplitude_std=0.02,
            vibration_level=0.02,
            vibration_hz=25.0,
            noise_level=0.05,
            drift_level=0.01,
            scalar_levels=(0.0, 0.6, 0.9, 0.5),
        ),
        Activity.WALK: ActivitySignature(
            locomotion_hz=2.05,
            locomotion_hz_std=0.50,
            accel_amplitude=1.35,
            accel_amplitude_std=0.60,
            gyro_amplitude=0.60,
            gyro_amplitude_std=0.30,
            vibration_level=0.06,
            vibration_hz=18.0,
            noise_level=0.14,
            drift_level=0.02,
            scalar_levels=(0.05, 0.7, 0.2, 0.45),
        ),
        Activity.RUN: ActivitySignature(
            locomotion_hz=2.55,
            locomotion_hz_std=0.60,
            accel_amplitude=1.85,
            accel_amplitude_std=0.85,
            gyro_amplitude=0.78,
            gyro_amplitude_std=0.40,
            vibration_level=0.08,
            vibration_hz=20.0,
            noise_level=0.15,
            drift_level=0.02,
            scalar_levels=(0.055, 0.72, 0.2, 0.5),
        ),
        Activity.DRIVE: ActivitySignature(
            locomotion_hz=0.50,
            locomotion_hz_std=0.20,
            accel_amplitude=0.28,
            accel_amplitude_std=0.14,
            gyro_amplitude=0.16,
            gyro_amplitude_std=0.10,
            vibration_level=0.52,
            vibration_hz=17.0,
            noise_level=0.12,
            drift_level=0.05,
            scalar_levels=(0.32, 0.42, 0.72, 0.62),
        ),
        Activity.ESCOOTER: ActivitySignature(
            locomotion_hz=0.75,
            locomotion_hz_std=0.28,
            accel_amplitude=0.42,
            accel_amplitude_std=0.20,
            gyro_amplitude=0.38,
            gyro_amplitude_std=0.20,
            vibration_level=0.70,
            vibration_hz=14.0,
            noise_level=0.12,
            drift_level=0.04,
            scalar_levels=(0.22, 0.58, 0.52, 0.48),
        ),
    }


class SyntheticSensorGenerator:
    """Generates raw sensor windows for each activity.

    Parameters
    ----------
    suite:
        Sensor layout (defaults to the 22-channel suite).
    signatures:
        Per-activity signal signatures (defaults to :func:`default_signatures`).
    n_users:
        Number of simulated users; each user gets a persistent random gain per
        sensor group, adding realistic between-subject variance.
    seed:
        Seed or generator for reproducibility.
    """

    def __init__(
        self,
        suite: Optional[SensorSuite] = None,
        signatures: Optional[Dict[Activity, ActivitySignature]] = None,
        n_users: int = 8,
        seed: RandomState = None,
    ) -> None:
        if n_users <= 0:
            raise ConfigurationError(f"n_users must be positive, got {n_users}")
        self.suite = suite or default_sensor_suite()
        self.signatures = signatures or default_signatures()
        self.n_users = int(n_users)
        self._rng = resolve_rng(seed)
        # Persistent per-user, per-triaxial-group gain factors.
        self._user_gains = self._rng.normal(
            1.0, 0.20, size=(self.n_users, len(self.suite.triaxial_groups))
        ).clip(0.5, 1.6)

    # ------------------------------------------------------------------ #
    def generate_windows(
        self,
        activity: Activity,
        n_windows: int,
        rng: RandomState = None,
    ) -> np.ndarray:
        """Generate ``n_windows`` raw windows ``(n, window_length, n_channels)``."""
        if n_windows <= 0:
            raise DataError(f"n_windows must be positive, got {n_windows}")
        activity = Activity(activity)
        if activity not in self.signatures:
            raise ConfigurationError(f"no signature registered for activity {activity!r}")
        generator = resolve_rng(rng) if rng is not None else self._rng
        signature = self.signatures[activity]
        suite = self.suite
        length = suite.window_length
        time_axis = np.arange(length) / suite.sampling_rate_hz  # seconds
        n_channels = suite.n_channels
        windows = np.zeros((n_windows, length, n_channels))

        users = generator.integers(0, self.n_users, size=n_windows)
        frequencies = generator.normal(
            signature.locomotion_hz, signature.locomotion_hz_std, size=n_windows
        ).clip(0.05, suite.sampling_rate_hz / 4)
        accel_amplitudes = generator.normal(
            signature.accel_amplitude, signature.accel_amplitude_std, size=n_windows
        ).clip(0.0, None)
        gyro_amplitudes = generator.normal(
            signature.gyro_amplitude, signature.gyro_amplitude_std, size=n_windows
        ).clip(0.0, None)
        phases = generator.uniform(0.0, 2 * np.pi, size=n_windows)

        for group_index, group in enumerate(suite.triaxial_groups):
            gains = self._user_gains[users, group_index]
            # Accelerometer-like groups (even index) move with locomotion;
            # gyroscope-like groups (odd index) follow rotation dynamics.
            is_accel_like = group_index % 2 == 0
            amplitude = (accel_amplitudes if is_accel_like else gyro_amplitudes) * gains
            # Random orientation of the motion axis per window.
            orientation = generator.normal(0.0, 1.0, size=(n_windows, 3))
            orientation /= np.linalg.norm(orientation, axis=1, keepdims=True) + 1e-12
            base = np.sin(
                2 * np.pi * frequencies[:, None] * time_axis[None, :] + phases[:, None]
            )
            harmonic = signature.harmonic_ratio * np.sin(
                4 * np.pi * frequencies[:, None] * time_axis[None, :] + 2 * phases[:, None]
            )
            locomotion = (base + harmonic) * amplitude[:, None]
            vibration = signature.vibration_level * np.sin(
                2 * np.pi * signature.vibration_hz * time_axis[None, :]
                + generator.uniform(0, 2 * np.pi, size=(n_windows, 1))
            )
            vibration = vibration * generator.normal(1.0, 0.3, size=(n_windows, 1)).clip(0.2, 2.0)
            drift = np.cumsum(
                generator.normal(0.0, signature.drift_level, size=(n_windows, length)), axis=1
            )
            group_signal = locomotion + vibration + drift
            for axis_position, channel in enumerate(group):
                noise = generator.normal(0.0, signature.noise_level, size=(n_windows, length))
                windows[:, :, channel] = (
                    group_signal * orientation[:, axis_position:axis_position + 1] + noise
                )
            # Gravity-like offset on the first accelerometer group's z axis.
            if group_index == 0:
                windows[:, :, group[2]] += 1.0

        for offset, channel in enumerate(suite.scalar_channels()):
            level = signature.scalar_levels[offset % len(signature.scalar_levels)]
            base_level = generator.normal(level, 0.05, size=(n_windows, 1))
            noise = generator.normal(0.0, signature.noise_level * 0.5, size=(n_windows, length))
            windows[:, :, channel] = base_level + noise
        return windows

    # ------------------------------------------------------------------ #
    def generate_dataset(
        self,
        samples_per_class,
        rng: RandomState = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Generate raw windows for several activities.

        Parameters
        ----------
        samples_per_class:
            Either an int (same count for every activity) or a mapping
            ``{Activity: count}``.

        Returns
        -------
        (windows, labels):
            ``windows`` has shape ``(n_total, window_length, n_channels)`` and
            ``labels`` contains the activity class ids.
        """
        generator = resolve_rng(rng) if rng is not None else self._rng
        if isinstance(samples_per_class, int):
            counts = {activity: samples_per_class for activity in self.signatures}
        else:
            counts = {Activity(key): int(value) for key, value in samples_per_class.items()}
        all_windows = []
        all_labels = []
        for activity in sorted(counts, key=lambda a: int(a)):
            count = counts[activity]
            if count <= 0:
                continue
            windows = self.generate_windows(activity, count, rng=generator)
            all_windows.append(windows)
            all_labels.append(np.full(count, int(activity), dtype=np.int64))
        if not all_windows:
            raise DataError("no samples requested")
        return np.concatenate(all_windows, axis=0), np.concatenate(all_labels, axis=0)


def make_feature_dataset(
    samples_per_class=400,
    *,
    suite: Optional[SensorSuite] = None,
    signatures: Optional[Dict[Activity, ActivitySignature]] = None,
    activities: Optional[Sequence[Activity]] = None,
    normalize: bool = True,
    seed: RandomState = None,
):
    """End-to-end synthetic pipeline: raw windows → 80 statistical features.

    Returns a :class:`repro.data.dataset.HARDataset` whose ``features`` matrix
    has one row per generated window.  When ``normalize`` is true the features
    are z-scored (statistics computed over the generated set, mimicking the
    cloud-side preprocessing).
    """
    from repro.data.dataset import HARDataset  # local import avoids a cycle

    suite = suite or default_sensor_suite()
    generator = SyntheticSensorGenerator(suite=suite, signatures=signatures, seed=seed)
    if activities is not None:
        requested = {Activity(a) for a in activities}
        generator.signatures = {
            a: s for a, s in generator.signatures.items() if a in requested
        }
    if isinstance(samples_per_class, dict):
        counts = samples_per_class
    else:
        counts = {activity: int(samples_per_class) for activity in generator.signatures}
    windows, labels = generator.generate_dataset(counts)
    extractor = StatisticalFeatureExtractor(
        triaxial_groups=suite.triaxial_groups, sampling_rate_hz=suite.sampling_rate_hz
    )
    features = extractor.transform(windows)
    if normalize:
        features = z_score(features)
    label_names = {int(activity): Activity(activity).display_name for activity in counts}
    return HARDataset(features=features, labels=labels, label_names=label_names)
