"""Class-imbalance utilities.

Activity data arriving on the edge is imbalanced by nature (new activities are
observed rarely at first); these helpers quantify and construct such
imbalance for the experiments.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.data.dataset import HARDataset
from repro.exceptions import DataError
from repro.utils.rng import RandomState, resolve_rng


def class_counts(labels: np.ndarray) -> Dict[int, int]:
    """Mapping ``class id -> count`` for a label vector."""
    labels = np.asarray(labels)
    values, counts = np.unique(labels, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def imbalance_ratio(labels: np.ndarray) -> float:
    """Ratio between the largest and the smallest class count (≥ 1)."""
    counts = class_counts(labels)
    if not counts:
        raise DataError("labels must not be empty")
    values = list(counts.values())
    return max(values) / max(min(values), 1)


def subsample_class(
    dataset: HARDataset,
    class_id: int,
    n_samples: int,
    rng: RandomState = None,
) -> HARDataset:
    """Cap one class at ``n_samples`` rows, leaving every other class untouched."""
    if n_samples <= 0:
        raise DataError(f"n_samples must be positive, got {n_samples}")
    generator = resolve_rng(rng)
    class_id = int(class_id)
    class_indices = np.flatnonzero(dataset.labels == class_id)
    if class_indices.size == 0:
        raise DataError(f"class {class_id} is not present in the dataset")
    keep_class = generator.choice(
        class_indices, size=min(n_samples, class_indices.size), replace=False
    )
    other_indices = np.flatnonzero(dataset.labels != class_id)
    chosen = np.sort(np.concatenate([other_indices, keep_class]))
    return HARDataset(
        features=dataset.features[chosen],
        labels=dataset.labels[chosen],
        label_names=dict(dataset.label_names),
    )


def make_imbalanced(
    dataset: HARDataset,
    proportions: Dict[int, float],
    rng: RandomState = None,
) -> HARDataset:
    """Downsample classes according to ``proportions`` (fraction of rows kept)."""
    generator = resolve_rng(rng)
    keep_indices = []
    for class_id in dataset.classes:
        class_indices = np.flatnonzero(dataset.labels == class_id)
        fraction = float(proportions.get(int(class_id), 1.0))
        if not 0.0 < fraction <= 1.0:
            raise DataError(f"proportion for class {class_id} must be in (0, 1], got {fraction}")
        take = max(int(round(fraction * class_indices.size)), 1)
        keep_indices.append(generator.choice(class_indices, size=take, replace=False))
    chosen = np.sort(np.concatenate(keep_indices))
    return HARDataset(
        features=dataset.features[chosen],
        labels=dataset.labels[chosen],
        label_names=dict(dataset.label_names),
    )
