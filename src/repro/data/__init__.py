"""HAR data substrate: activity taxonomy, sensor model, synthetic data, datasets, streams.

The paper's evaluation uses a proprietary data-collection campaign (MAGNETO,
>100 GB of raw sensor data over five activities).  This package provides a
faithful synthetic substitute: a 22-channel mobile-sensor suite model and a
parametric per-activity signal generator whose class-similarity structure
mirrors the paper's (Run and Walk are near neighbours, Drive and E-scooter are
easy), plus dataset containers and the class-incremental scenario builder used
by every experiment.
"""

from repro.data.activities import (
    ACTIVITY_NAMES,
    Activity,
    activity_from_name,
    activity_names,
)
from repro.data.sensors import SensorSuite, default_sensor_suite
from repro.data.synthetic import (
    ActivitySignature,
    SyntheticSensorGenerator,
    default_signatures,
    make_feature_dataset,
)
from repro.data.dataset import DatasetSplits, HARDataset, train_val_test_split
from repro.data.loaders import (
    load_dataset_csv,
    load_dataset_npz,
    save_dataset_csv,
    save_dataset_npz,
)
from repro.data.streams import IncrementalScenario, build_incremental_scenario
from repro.data.imbalance import class_counts, imbalance_ratio, make_imbalanced, subsample_class

__all__ = [
    "Activity",
    "ACTIVITY_NAMES",
    "activity_names",
    "activity_from_name",
    "SensorSuite",
    "default_sensor_suite",
    "ActivitySignature",
    "SyntheticSensorGenerator",
    "default_signatures",
    "make_feature_dataset",
    "HARDataset",
    "DatasetSplits",
    "train_val_test_split",
    "load_dataset_npz",
    "save_dataset_npz",
    "load_dataset_csv",
    "save_dataset_csv",
    "IncrementalScenario",
    "build_incremental_scenario",
    "class_counts",
    "imbalance_ratio",
    "make_imbalanced",
    "subsample_class",
]
