"""Loading real HAR datasets from files.

The experiments in this repository run on the synthetic MAGNETO-like
substitute, but the library is meant to be usable with real recordings.  Two
interchange formats are supported:

* **NPZ** — an archive with ``features`` (``n × d``) and ``labels`` (``n``)
  arrays, plus an optional ``label_names`` JSON-encoded mapping;
* **CSV** — one row per window, the label in a designated column and every
  other column treated as a feature (the layout produced by most public HAR
  feature dumps, e.g. UCI-HAR style exports).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.data.dataset import HARDataset
from repro.exceptions import DataError

PathLike = Union[str, Path]


def save_dataset_npz(dataset: HARDataset, path: PathLike) -> Path:
    """Persist a :class:`HARDataset` as an ``.npz`` archive."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    names_blob = np.frombuffer(
        json.dumps({str(k): v for k, v in dataset.label_names.items()}).encode("utf-8"),
        dtype=np.uint8,
    )
    np.savez_compressed(
        path, features=dataset.features, labels=dataset.labels, label_names=names_blob
    )
    return path


def load_dataset_npz(path: PathLike) -> HARDataset:
    """Load a dataset written by :func:`save_dataset_npz` (or any compatible archive)."""
    path = Path(path)
    if not path.exists():
        raise DataError(f"dataset file not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        if "features" not in archive.files or "labels" not in archive.files:
            raise DataError(f"{path} does not contain 'features' and 'labels' arrays")
        features = np.asarray(archive["features"], dtype=np.float64)
        labels = np.asarray(archive["labels"])
        label_names: Dict[int, str] = {}
        if "label_names" in archive.files:
            decoded = json.loads(bytes(archive["label_names"].tobytes()).decode("utf-8"))
            label_names = {int(key): str(value) for key, value in decoded.items()}
    return HARDataset(features=features, labels=labels, label_names=label_names)


def load_dataset_csv(
    path: PathLike,
    *,
    label_column: str = "label",
    feature_columns: Optional[Sequence[str]] = None,
    delimiter: str = ",",
    label_names: Optional[Dict[int, str]] = None,
) -> HARDataset:
    """Load a dataset from a headered CSV file.

    Parameters
    ----------
    path:
        CSV file with a header row.
    label_column:
        Name of the column holding the integer class id (or a class name that
        appears in ``label_names``' values).
    feature_columns:
        Columns to use as features; defaults to every column except the label.
    delimiter:
        Field separator.
    label_names:
        Optional ``{class id: display name}`` mapping; when the label column
        contains names, they are mapped back to ids through this dictionary.
    """
    path = Path(path)
    if not path.exists():
        raise DataError(f"dataset file not found: {path}")
    name_to_id = {}
    if label_names:
        name_to_id = {str(value): int(key) for key, value in label_names.items()}

    features = []
    labels = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        if reader.fieldnames is None or label_column not in reader.fieldnames:
            raise DataError(f"CSV file must contain a {label_column!r} column")
        columns = list(feature_columns) if feature_columns is not None else [
            name for name in reader.fieldnames if name != label_column
        ]
        missing = [c for c in columns if c not in reader.fieldnames]
        if missing:
            raise DataError(f"CSV file is missing feature columns: {missing}")
        for row in reader:
            raw_label = row[label_column].strip()
            if raw_label in name_to_id:
                labels.append(name_to_id[raw_label])
            else:
                try:
                    labels.append(int(float(raw_label)))
                except ValueError as exc:
                    raise DataError(
                        f"label {raw_label!r} is neither an integer nor a known class name"
                    ) from exc
            try:
                features.append([float(row[column]) for column in columns])
            except ValueError as exc:
                raise DataError(f"non-numeric feature value in row {reader.line_num}") from exc
    if not features:
        raise DataError(f"{path} contains no data rows")
    return HARDataset(
        features=np.asarray(features, dtype=np.float64),
        labels=np.asarray(labels, dtype=np.int64),
        label_names=dict(label_names or {}),
    )


def save_dataset_csv(dataset: HARDataset, path: PathLike, *, label_column: str = "label") -> Path:
    """Write a :class:`HARDataset` to a headered CSV file (inverse of :func:`load_dataset_csv`)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    columns = [f"f{i}" for i in range(dataset.n_features)]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns + [label_column])
        for row, label in zip(dataset.features, dataset.labels):
            writer.writerow([f"{value:.10g}" for value in row] + [int(label)])
    return path
