"""repro — a reproduction of PILOTE (EDBT 2023).

PILOTE pushes class-incremental learning of human physical activities to the
extreme edge: a Siamese embedding network trained with a supervised
contrastive loss, a herding-selected exemplar support set, a feature-space
distillation loss that prevents catastrophic forgetting, and a nearest-class
-mean classifier.

Quick start::

    from repro import PILOTE, PiloteConfig
    from repro.data import make_feature_dataset, build_incremental_scenario, Activity

    dataset = make_feature_dataset(samples_per_class=200, seed=0)
    scenario = build_incremental_scenario(dataset, [Activity.RUN], rng=0)

    learner = PILOTE(PiloteConfig.edge_lightweight(seed=0))
    learner.pretrain(scenario.old_train, scenario.old_validation)
    learner.learn_new_classes(scenario.new_train, scenario.new_validation)
    print("accuracy:", learner.evaluate(scenario.test))

Compute backend
---------------

All numerics run through the pluggable compute backend
(:mod:`repro.backend`), which owns three policy decisions:

* **dtype policy** — leaf tensors and backend arrays use the global compute
  dtype: ``float64`` in the default *reference* profile (seed-compatible,
  required by gradient checking), ``float32`` under the *edge* profile used
  by device profiles and benchmarks.  Switch with
  ``repro.backend.precision("edge")`` (scoped) or
  ``repro.backend.set_default_dtype`` (global); ``EdgeDevice.precision()``
  applies a device profile's dtype.
* **op registry** — every autodiff operation is a named forward/vjp record
  (:mod:`repro.autodiff.primitives`), so the tape is inspectable
  (``Tensor.trace()``) and ops are testable in isolation.
* **workspace** — reusable scratch buffers so steady-state training/serving
  steps stop allocating.

Batched serving goes through
:class:`repro.edge.inference.InferenceEngine` (also reachable as
``learner.inference_engine()``), which caches the prototype matrix and
invalidates it automatically when the learner integrates new classes.  The
backend is the extension point for future accelerator or multi-device
backends: implement :class:`repro.backend.Backend` and install it with
:func:`repro.backend.set_backend`.

Fleet serving
-------------

:mod:`repro.fleet` scales the single-device pipeline out to many devices
behind one cloud broadcast: :class:`~repro.fleet.FleetCoordinator` provisions
and deploys the fleet (``MagnetoPlatform.to_fleet(n)`` is the one-liner),
:class:`~repro.fleet.TrafficGenerator` replays seeded uniform/bursty/Zipf
workloads, and :class:`~repro.fleet.CheckpointStore` snapshots/restores
device state under a storage budget.  Run the end-to-end simulation with
``pilote fleet-sim``.

Unified serving API
-------------------

:mod:`repro.serving` is the single front door for predictions, whichever
layer answers them.  ``serve(obj)`` builds a :class:`~repro.serving
.ServingClient` from a bare :class:`PILOTE` learner, a
:class:`MagnetoPlatform` or a whole :class:`~repro.fleet.FleetCoordinator`;
every layer speaks the same typed protocol::

    from repro.serving import serve, PredictRequest

    client = serve(learner)                       # or serve(platform/fleet)
    class_ids = client.predict(windows)           # synchronous one-liner

    pending = client.submit(
        PredictRequest(user_id=7, features=windows, deadline_seconds=0.5)
    )
    client.drain()                                # event loop, simulated clock
    response = pending.result()                   # ids + device + latency

Fleet clients take a routing policy (``routing="hash" | "least-loaded" |
"p2c"``), and ``FleetCoordinator.deploy(package, rollout=...)`` stages
releases (all-at-once, canary fractions, A/B cohorts by user hash) with
per-cohort accuracy/latency reports.  The legacy entry points
(``MagnetoPlatform.edge_predict``, ``EdgeDevice.infer``, ``Router.submit``)
are deprecation shims over this client.  ``examples/quickstart.py`` and
``examples/serving_api.py`` walk through the API; ``pilote serve`` runs the
three-layer demonstration.
"""

from repro.backend import Backend, NumpyBackend, get_backend, precision, set_backend
from repro.core import PILOTE, PiloteConfig, EmbeddingNetwork, NCMClassifier
from repro.data import Activity, HARDataset, build_incremental_scenario, make_feature_dataset
from repro.baselines import PretrainedBaseline, RetrainedBaseline
from repro.edge import InferenceEngine, MagnetoPlatform
from repro.fleet import (
    CheckpointStore,
    FleetCoordinator,
    Router,
    TrafficGenerator,
    WorkloadSpec,
)
from repro.serving import (
    PendingResult,
    PredictRequest,
    PredictResponse,
    ServingClient,
    serve,
)

__version__ = "1.3.0"

__all__ = [
    "PILOTE",
    "PiloteConfig",
    "EmbeddingNetwork",
    "NCMClassifier",
    "Activity",
    "HARDataset",
    "make_feature_dataset",
    "build_incremental_scenario",
    "PretrainedBaseline",
    "RetrainedBaseline",
    "MagnetoPlatform",
    "InferenceEngine",
    "FleetCoordinator",
    "Router",
    "TrafficGenerator",
    "WorkloadSpec",
    "CheckpointStore",
    "serve",
    "ServingClient",
    "PredictRequest",
    "PredictResponse",
    "PendingResult",
    "Backend",
    "NumpyBackend",
    "get_backend",
    "set_backend",
    "precision",
    "__version__",
]
