"""repro — a reproduction of PILOTE (EDBT 2023).

PILOTE pushes class-incremental learning of human physical activities to the
extreme edge: a Siamese embedding network trained with a supervised
contrastive loss, a herding-selected exemplar support set, a feature-space
distillation loss that prevents catastrophic forgetting, and a nearest-class
-mean classifier.

Quick start::

    from repro import PILOTE, PiloteConfig
    from repro.data import make_feature_dataset, build_incremental_scenario, Activity

    dataset = make_feature_dataset(samples_per_class=200, seed=0)
    scenario = build_incremental_scenario(dataset, [Activity.RUN], rng=0)

    learner = PILOTE(PiloteConfig.edge_lightweight(seed=0))
    learner.pretrain(scenario.old_train, scenario.old_validation)
    learner.learn_new_classes(scenario.new_train, scenario.new_validation)
    print("accuracy:", learner.evaluate(scenario.test))

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured comparison of every table and figure.
"""

from repro.core import PILOTE, PiloteConfig, EmbeddingNetwork, NCMClassifier
from repro.data import Activity, HARDataset, build_incremental_scenario, make_feature_dataset
from repro.baselines import PretrainedBaseline, RetrainedBaseline
from repro.edge import MagnetoPlatform

__version__ = "1.0.0"

__all__ = [
    "PILOTE",
    "PiloteConfig",
    "EmbeddingNetwork",
    "NCMClassifier",
    "Activity",
    "HARDataset",
    "make_feature_dataset",
    "build_incremental_scenario",
    "PretrainedBaseline",
    "RetrainedBaseline",
    "MagnetoPlatform",
    "__version__",
]
