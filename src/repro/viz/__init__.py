"""Matplotlib-free visualisation: PCA projections, ASCII plots, CSV export."""

from repro.viz.projection import pca_project, project_embeddings_2d
from repro.viz.ascii import ascii_bar_chart, ascii_line_plot, ascii_scatter
from repro.viz.export import export_series_csv, export_table_csv

__all__ = [
    "pca_project",
    "project_embeddings_2d",
    "ascii_line_plot",
    "ascii_scatter",
    "ascii_bar_chart",
    "export_table_csv",
    "export_series_csv",
]
