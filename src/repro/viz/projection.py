"""Dimensionality reduction for embedding-space visualisation (Figure 5).

A plain PCA (via SVD) projects the 128-dimensional embeddings onto two
components; together with per-class separation metrics this is the library's
plotting-free stand-in for the paper's t-SNE style figures.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.exceptions import DataError


def pca_project(data: np.ndarray, n_components: int = 2) -> Tuple[np.ndarray, np.ndarray]:
    """Project ``data`` onto its top principal components.

    Returns ``(projected, explained_variance_ratio)``.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise DataError(f"data must be 2-D, got shape {data.shape}")
    if n_components <= 0 or n_components > min(data.shape):
        raise DataError(
            f"n_components must be in [1, {min(data.shape)}], got {n_components}"
        )
    centred = data - data.mean(axis=0, keepdims=True)
    _, singular_values, rows = np.linalg.svd(centred, full_matrices=False)
    components = rows[:n_components]
    projected = centred @ components.T
    variance = singular_values**2
    total = variance.sum()
    ratio = variance[:n_components] / total if total > 0 else np.zeros(n_components)
    return projected, ratio


def project_embeddings_2d(
    embeddings: np.ndarray, labels: np.ndarray
) -> Dict[int, np.ndarray]:
    """2-D PCA projection grouped by class (ready for scatter plotting/export)."""
    labels = np.asarray(labels).reshape(-1)
    if labels.shape[0] != np.asarray(embeddings).shape[0]:
        raise DataError("labels and embeddings must have the same length")
    projected, _ = pca_project(embeddings, n_components=2)
    return {int(class_id): projected[labels == class_id] for class_id in np.unique(labels)}
