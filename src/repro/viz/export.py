"""CSV export of experiment tables and series."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.exceptions import DataError

PathLike = Union[str, Path]


def export_table_csv(path: PathLike, rows: List[Dict[str, object]]) -> Path:
    """Write a list of homogeneous dictionaries as a CSV table."""
    if not rows:
        raise DataError("rows must not be empty")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fieldnames = list(rows[0].keys())
    for row in rows:
        if list(row.keys()) != fieldnames:
            raise DataError("all rows must share the same keys, in the same order")
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)
    return path


def export_series_csv(
    path: PathLike,
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    *,
    x_name: str = "x",
) -> Path:
    """Write named series sharing an x axis as a wide CSV."""
    if not series:
        raise DataError("series must not be empty")
    x_values = list(x_values)
    for name, values in series.items():
        if len(list(values)) != len(x_values):
            raise DataError(f"series {name!r} length does not match the x axis")
    rows = []
    for index, x in enumerate(x_values):
        row: Dict[str, object] = {x_name: x}
        for name, values in series.items():
            row[name] = list(values)[index]
        rows.append(row)
    return export_table_csv(path, rows)
