"""ASCII rendering of line plots, scatter plots and bar charts.

These renderers are what the benchmark harness prints instead of matplotlib
figures; they are intentionally simple but sufficient to see the shape of each
curve (who wins, where the crossovers are).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.exceptions import DataError

_MARKERS = "ox+*#@%&"


def ascii_line_plot(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    *,
    width: int = 70,
    height: int = 18,
    title: Optional[str] = None,
) -> str:
    """Render one or more named series over a shared x axis."""
    if not series:
        raise DataError("at least one series is required")
    x_values = np.asarray(list(x_values), dtype=np.float64)
    grid = [[" " for _ in range(width)] for _ in range(height)]
    all_y = np.concatenate([np.asarray(list(v), dtype=np.float64) for v in series.values()])
    y_min, y_max = float(all_y.min()), float(all_y.max())
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(x_values.min()), float(x_values.max())
    if x_max == x_min:
        x_max = x_min + 1.0

    def to_column(x: float) -> int:
        return int(round((x - x_min) / (x_max - x_min) * (width - 1)))

    def to_row(y: float) -> int:
        return height - 1 - int(round((y - y_min) / (y_max - y_min) * (height - 1)))

    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        values = np.asarray(list(values), dtype=np.float64)
        if values.shape[0] != x_values.shape[0]:
            raise DataError(f"series {name!r} length does not match the x axis")
        for x, y in zip(x_values, values):
            grid[to_row(y)][to_column(x)] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: [{y_min:.3f}, {y_max:.3f}]   x: [{x_min:g}, {x_max:g}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def ascii_scatter(
    points_by_class: Dict[int, np.ndarray],
    *,
    width: int = 70,
    height: int = 24,
    label_names: Optional[Dict[int, str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render 2-D points grouped by class (the Figure 5 stand-in)."""
    if not points_by_class:
        raise DataError("at least one class of points is required")
    label_names = label_names or {}
    everything = np.concatenate([np.asarray(p, dtype=np.float64) for p in points_by_class.values()])
    if everything.ndim != 2 or everything.shape[1] != 2:
        raise DataError("points must be 2-D (n, 2) arrays")
    x_min, y_min = everything.min(axis=0)
    x_max, y_max = everything.max(axis=0)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" " for _ in range(width)] for _ in range(height)]
    for index, (class_id, points) in enumerate(sorted(points_by_class.items())):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in np.asarray(points, dtype=np.float64):
            column = int((x - x_min) / x_span * (width - 1))
            row = height - 1 - int((y - y_min) / y_span * (height - 1))
            grid[row][column] = marker
    lines = []
    if title:
        lines.append(title)
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label_names.get(cid, cid)}"
        for i, cid in enumerate(sorted(points_by_class))
    )
    lines.append(legend)
    return "\n".join(lines)


def ascii_bar_chart(
    values: Dict[str, float], *, width: int = 50, title: Optional[str] = None
) -> str:
    """Render a horizontal bar chart of named values."""
    if not values:
        raise DataError("at least one value is required")
    maximum = max(abs(v) for v in values.values()) or 1.0
    label_width = max(len(name) for name in values)
    lines = [title] if title else []
    for name, value in values.items():
        bar = "#" * int(round(abs(value) / maximum * width))
        lines.append(f"{name:<{label_width}} | {bar} {value:.4f}")
    return "\n".join(lines)
