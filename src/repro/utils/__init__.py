"""Shared utilities: seeded RNG management, validation, serialization, logging."""

from repro.utils.clock import Stopwatch, perf_seconds
from repro.utils.rng import RandomState, resolve_rng, set_global_seed
from repro.utils.validation import (
    check_array,
    check_finite,
    check_labels,
    check_positive,
    check_probability,
)
from repro.utils.serialization import load_npz_state, save_npz_state, state_dict_nbytes
from repro.utils.logging import get_logger

__all__ = [
    "Stopwatch",
    "perf_seconds",
    "RandomState",
    "resolve_rng",
    "set_global_seed",
    "check_array",
    "check_finite",
    "check_labels",
    "check_positive",
    "check_probability",
    "save_npz_state",
    "load_npz_state",
    "state_dict_nbytes",
    "get_logger",
]
