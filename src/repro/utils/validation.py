"""Input validation helpers shared across the library.

These functions raise library exceptions (:class:`repro.exceptions.DataError`
and friends) with actionable messages instead of letting numpy errors leak out
of public entry points.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DataError, ShapeError


def check_array(
    values,
    *,
    name: str = "array",
    ndim: Optional[int] = None,
    dtype=np.float64,
    allow_empty: bool = False,
    copy: bool = False,
) -> np.ndarray:
    """Convert ``values`` to a numpy array and validate its basic structure.

    Parameters
    ----------
    values:
        Array-like input.
    name:
        Name used in error messages.
    ndim:
        Required number of dimensions, or ``None`` to accept any.
    dtype:
        Target dtype (``None`` keeps the input dtype).
    allow_empty:
        Whether a zero-sized array is acceptable.
    copy:
        Force a copy even when the input is already an ndarray.

    Returns
    -------
    numpy.ndarray
    """
    try:
        array = np.array(values, dtype=dtype, copy=copy) if copy else np.asarray(values, dtype=dtype)
    except (TypeError, ValueError) as exc:
        raise DataError(f"{name} could not be converted to a numeric array: {exc}") from exc
    if ndim is not None and array.ndim != ndim:
        raise ShapeError(f"{name} must be {ndim}-dimensional, got shape {array.shape}")
    if not allow_empty and array.size == 0:
        raise DataError(f"{name} must not be empty")
    return array


def check_finite(array: np.ndarray, *, name: str = "array") -> np.ndarray:
    """Raise :class:`DataError` if ``array`` contains NaN or infinity."""
    if not np.all(np.isfinite(array)):
        bad = int(np.sum(~np.isfinite(array)))
        raise DataError(f"{name} contains {bad} non-finite values (NaN or inf)")
    return array


def check_labels(labels, *, name: str = "labels", n_samples: Optional[int] = None) -> np.ndarray:
    """Validate a 1-D integer label vector.

    Parameters
    ----------
    labels:
        Array-like of integer class labels.
    name:
        Name used in error messages.
    n_samples:
        If given, the expected length of the label vector.
    """
    array = np.asarray(labels)
    if array.ndim != 1:
        raise ShapeError(f"{name} must be 1-dimensional, got shape {array.shape}")
    if array.size == 0:
        raise DataError(f"{name} must not be empty")
    if not np.issubdtype(array.dtype, np.integer):
        rounded = np.round(array)
        if not np.allclose(array, rounded):
            raise DataError(f"{name} must contain integer class identifiers")
        array = rounded.astype(np.int64)
    else:
        array = array.astype(np.int64)
    if n_samples is not None and array.shape[0] != n_samples:
        raise ShapeError(
            f"{name} has {array.shape[0]} entries but {n_samples} samples were provided"
        )
    return array


def check_positive(value: float, *, name: str = "value", strict: bool = True) -> float:
    """Validate a (strictly) positive scalar."""
    if strict and not value > 0:
        raise DataError(f"{name} must be strictly positive, got {value!r}")
    if not strict and value < 0:
        raise DataError(f"{name} must be non-negative, got {value!r}")
    return float(value)


def check_probability(value: float, *, name: str = "value") -> float:
    """Validate a scalar in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise DataError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_consistent_length(*arrays: Sequence, names: Optional[Iterable[str]] = None) -> None:
    """Raise :class:`ShapeError` unless all arrays share the same first dimension."""
    lengths = [len(a) for a in arrays]
    if len(set(lengths)) > 1:
        labels = list(names) if names is not None else [f"array{i}" for i in range(len(arrays))]
        detail = ", ".join(f"{n}={l}" for n, l in zip(labels, lengths))
        raise ShapeError(f"inconsistent first dimensions: {detail}")


def check_feature_matrix(
    features, labels=None, *, name: str = "X"
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Validate a 2-D feature matrix (and optionally its label vector)."""
    array = check_array(features, name=name, ndim=2)
    check_finite(array, name=name)
    if labels is None:
        return array, None
    label_array = check_labels(labels, n_samples=array.shape[0])
    return array, label_array
