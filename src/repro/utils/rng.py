"""Random number generation helpers.

Every stochastic component in the library accepts a ``seed`` argument that may
be ``None`` (non-deterministic), an ``int`` (deterministic), or an existing
:class:`numpy.random.Generator`.  :func:`resolve_rng` normalises all three into
a ``Generator`` so downstream code never has to branch on the type.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

# Public alias used in type hints across the library.
RandomState = Union[None, int, np.random.Generator]

_GLOBAL_SEED: Optional[int] = None


def set_global_seed(seed: Optional[int]) -> None:
    """Set a library-wide default seed used when ``resolve_rng(None)`` is called.

    Parameters
    ----------
    seed:
        Any integer, or ``None`` to restore non-deterministic behaviour.
    """
    global _GLOBAL_SEED
    _GLOBAL_SEED = seed


def get_global_seed() -> Optional[int]:
    """Return the library-wide default seed (or ``None`` if unset)."""
    return _GLOBAL_SEED


def resolve_rng(seed: RandomState = None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (use the global seed if set, otherwise OS entropy), an int,
        or an existing generator (returned unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = _GLOBAL_SEED
    return np.random.default_rng(seed)


def spawn_rngs(seed: RandomState, count: int) -> list:
    """Derive ``count`` independent generators from a single seed.

    Useful for giving each round of a repeated experiment its own stream while
    keeping the whole experiment reproducible from one integer.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = resolve_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
