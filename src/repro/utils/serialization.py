"""Serialization helpers for model state dictionaries.

Model parameters are stored as flat ``{name: ndarray}`` mappings (a "state
dict").  These helpers persist them as ``.npz`` archives and compute their
in-memory / on-wire footprint, which the edge-transfer accounting relies on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.exceptions import SerializationError

PathLike = Union[str, Path]


def save_npz_state(path: PathLike, state: Dict[str, np.ndarray], *, metadata: dict = None) -> Path:
    """Persist a state dict (plus optional JSON-encodable metadata) to ``path``.

    Returns the resolved path with a ``.npz`` suffix.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    payload = {key: np.asarray(value) for key, value in state.items()}
    if metadata is not None:
        try:
            payload["__metadata__"] = np.frombuffer(
                json.dumps(metadata).encode("utf-8"), dtype=np.uint8
            )
        except (TypeError, ValueError) as exc:
            raise SerializationError(f"metadata is not JSON-serialisable: {exc}") from exc
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **payload)
    return path


def load_npz_state(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a state dict previously written by :func:`save_npz_state`.

    The metadata entry, if present, is returned under the ``"__metadata__"``
    key as a decoded dictionary.
    """
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"state file not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        state: Dict[str, np.ndarray] = {}
        for key in archive.files:
            if key == "__metadata__":
                raw = bytes(archive[key].tobytes())
                state[key] = json.loads(raw.decode("utf-8"))
            else:
                state[key] = np.array(archive[key])
    return state


def state_dict_nbytes(state: Dict[str, np.ndarray]) -> int:
    """Return the total number of bytes occupied by the arrays in ``state``."""
    return int(sum(np.asarray(value).nbytes for value in state.values()))


def float32_nbytes(n_values: int) -> int:
    """Number of bytes needed to store ``n_values`` float32 scalars."""
    if n_values < 0:
        raise ValueError(f"n_values must be non-negative, got {n_values}")
    return int(n_values) * 4
