"""The library's single wall-clock seam.

Most of the system runs on *simulated* clocks — the scheduler's per-lane
``available_at`` timeline, the fleet's modeled device-seconds — and the
static linter (:mod:`repro.analysis`, rule ``repro-clock``) bans direct
``time.time``/``time.monotonic``/``time.perf_counter`` calls from those
modules so a wall-clock read can never silently leak into a simulated
quantity.  Code that *legitimately* measures elapsed wall time (executor
service timing, the concurrent drain's measured clock, profilers, training
epoch timing) goes through this module instead: one whitelisted seam,
greppable, and patchable in tests that need a deterministic clock.

``perf_seconds`` is the only primitive; everything else is sugar over it.
"""

from __future__ import annotations

import time as _time

__all__ = ["perf_seconds", "Stopwatch"]


def perf_seconds() -> float:
    """A monotonic high-resolution reading in seconds (``perf_counter``).

    Only differences are meaningful; the epoch is arbitrary.  This is the
    one sanctioned wall-clock read — simulated-clock modules import this
    instead of :mod:`time` so the ``repro-clock`` lint rule has a single
    whitelist.
    """
    return _time.perf_counter()


class Stopwatch:
    """Measure one elapsed interval: ``elapsed = Stopwatch().elapsed()``.

    >>> watch = Stopwatch()
    >>> ...            # doctest: +SKIP
    >>> watch.elapsed()  # seconds since construction  # doctest: +SKIP
    """

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = perf_seconds()

    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return perf_seconds() - self._start

    def restart(self) -> float:
        """Reset the origin; returns the interval that just ended."""
        now = perf_seconds()
        elapsed = now - self._start
        self._start = now
        return elapsed
