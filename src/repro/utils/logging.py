"""Minimal logging configuration for the library.

The library never configures the root logger; it only attaches a
``NullHandler`` to its own namespace so applications stay in control of log
output, and offers :func:`enable_console_logging` as an opt-in convenience for
scripts and examples.
"""

from __future__ import annotations

import logging

_LIBRARY_LOGGER_NAME = "repro"

logging.getLogger(_LIBRARY_LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(name: str = None) -> logging.Logger:
    """Return a logger under the library namespace.

    ``get_logger("core.pilote")`` returns the ``repro.core.pilote`` logger.
    """
    if not name:
        return logging.getLogger(_LIBRARY_LOGGER_NAME)
    if name.startswith(_LIBRARY_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_LIBRARY_LOGGER_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a stream handler to the library logger (idempotent)."""
    logger = logging.getLogger(_LIBRARY_LOGGER_NAME)
    logger.setLevel(level)
    has_stream = any(isinstance(h, logging.StreamHandler) for h in logger.handlers)
    if not has_stream:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
    return logger
