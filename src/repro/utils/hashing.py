"""Shared integer hashing used for user → device placement.

Both the legacy :class:`~repro.fleet.router.Router` sharding and the serving
layer's :class:`~repro.serving.routing.HashRouting` policy must produce
*bit-identical* placements from the same salt (the router's deprecated
``submit`` shim and several determinism tests rely on it), so the salted
splitmix64 finaliser lives here, in one cycle-free module, instead of being
duplicated in each layer.
"""

from __future__ import annotations

import numpy as np

__all__ = ["splitmix64"]

# 64-bit mixing constants (splitmix64 finaliser).
_MIX1 = np.uint64(0xFF51AFD7ED558CCD)
_MIX2 = np.uint64(0xC4CEB9FE1A85EC53)
_SHIFT = np.uint64(33)


def splitmix64(values, salt: np.uint64) -> np.ndarray:
    """Vectorised salted splitmix64 finaliser over an integer array.

    Uniform over 64 bits, stable per value, and reproducible from the salt —
    the properties user-id sharding needs.
    """
    v = np.atleast_1d(np.asarray(values)).astype(np.uint64) + salt
    v ^= v >> _SHIFT
    v *= _MIX1
    v ^= v >> _SHIFT
    v *= _MIX2
    v ^= v >> _SHIFT
    return v
