"""Naive fine-tuning baseline.

The classifier head is expanded for the new classes and the whole network is
fine-tuned on the new-class data only — the textbook recipe for catastrophic
forgetting, included as a lower bound for the related-work comparison.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import ClassifierIncrementalLearner, train_softmax_classifier
from repro.data.dataset import HARDataset


class FineTuneBaseline(ClassifierIncrementalLearner):
    """Cross-entropy fine-tuning on new-class data only (no memory, no penalty)."""

    name = "fine-tune"

    def learn_increment(
        self, new_train: HARDataset, new_validation: Optional[HARDataset] = None
    ) -> "FineTuneBaseline":
        self._register_new_classes(new_train.classes)
        validation_arrays = None
        if new_validation is not None and new_validation.n_samples > 1:
            validation_arrays = (
                new_validation.features,
                self._to_indices(new_validation.labels),
            )
        train_softmax_classifier(
            self.model,
            new_train.features,
            self._to_indices(new_train.labels),
            config=self.config,
            validation=validation_arrays,
            rng=self._rng,
        )
        return self
