"""The paper's *Re-trained* baseline.

"The pre-trained model is re-trained on the edge using the enriched support
set with new-class samples." (Section 6.1.3.)  This is PILOTE's incremental
update *without* the distillation term: the embedding space is rebuilt from the
support set plus the new-class samples using only the contrastive loss, which
is exactly what exposes it to catastrophic forgetting.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.base import IncrementalLearner, clone_pretrained
from repro.core.config import PiloteConfig
from repro.core.pilote import PILOTE
from repro.data.dataset import HARDataset
from repro.exceptions import NotFittedError
from repro.utils.rng import RandomState


class RetrainedBaseline(IncrementalLearner):
    """Edge re-training without forgetting mitigation (PILOTE with α = 0)."""

    name = "re-trained"

    def __init__(
        self,
        config: Optional[PiloteConfig] = None,
        *,
        pretrained: Optional[PILOTE] = None,
        seed: RandomState = None,
    ) -> None:
        if pretrained is not None:
            self._learner = clone_pretrained(pretrained)
        else:
            self._learner = PILOTE(config, seed=seed)

    @property
    def learner(self) -> PILOTE:
        """The wrapped PILOTE learner (exposed for inspection in experiments)."""
        return self._learner

    @property
    def known_classes(self) -> List[int]:
        return self._learner.classes_

    def fit_base(
        self, train: HARDataset, validation: Optional[HARDataset] = None
    ) -> "RetrainedBaseline":
        if not self._learner.is_pretrained:
            self._learner.pretrain(train, validation)
        return self

    def learn_increment(
        self, new_train: HARDataset, new_validation: Optional[HARDataset] = None
    ) -> "RetrainedBaseline":
        """Re-train on support set ∪ new samples with the contrastive loss only."""
        if not self._learner.is_pretrained:
            raise NotFittedError("fit_base() must run before learn_increment()")
        # Disable the distillation term: α = 0 turns the joint loss into the
        # pure contrastive objective on the enriched support set.
        self._learner.config = self._learner.config.with_overrides(alpha=0.0)
        self._learner.learn_new_classes(new_train, new_validation)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self._learner.inference_engine().predict(features)
