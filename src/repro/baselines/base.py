"""Shared infrastructure for incremental-learning baselines.

Two families of baselines exist in this reproduction:

* embedding-space methods built directly on the PILOTE machinery (the paper's
  *Pre-trained* and *Re-trained* strategies) — these reuse
  :class:`repro.core.pilote.PILOTE`;
* classifier-head methods from the continual-learning literature (fine-tuning,
  LwF, iCaRL, GDumb, EWC, joint training) — these use the
  :class:`SoftmaxClassifier` defined here (backbone + linear head trained with
  cross-entropy).
"""

from __future__ import annotations

import abc
import copy
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.autodiff.tensor import Tensor, no_grad
from repro.backend import get_backend
from repro.core.pilote import PILOTE
from repro.data.dataset import HARDataset
from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.nn.layers import Linear, Sequential, build_mlp
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.nn.schedulers import HalvingLR
from repro.nn.trainer import EarlyStopping, Trainer, TrainingHistory
from repro.utils.rng import RandomState, resolve_rng


def clone_pretrained(learner: PILOTE) -> PILOTE:
    """Deep copy of a pre-trained PILOTE learner.

    The paper evaluates the Re-trained baseline and PILOTE "based on the same
    pre-trained model"; cloning the pre-trained learner is how the experiment
    harness guarantees that.
    """
    return copy.deepcopy(learner)


class IncrementalLearner(abc.ABC):
    """Common interface of every incremental-learning method in the library."""

    #: Human-readable method name used in result tables.
    name: str = "incremental-learner"

    @abc.abstractmethod
    def fit_base(
        self, train: HARDataset, validation: Optional[HARDataset] = None
    ) -> "IncrementalLearner":
        """Train on the initially available (old-class) data."""

    @abc.abstractmethod
    def learn_increment(
        self, new_train: HARDataset, new_validation: Optional[HARDataset] = None
    ) -> "IncrementalLearner":
        """Integrate new-class data arriving after the base training."""

    @abc.abstractmethod
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict class ids for feature rows."""

    def evaluate(self, dataset: HARDataset) -> float:
        """Accuracy on a labelled dataset."""
        predictions = self.predict(dataset.features)
        return float(np.mean(predictions == dataset.labels))

    @property
    @abc.abstractmethod
    def known_classes(self) -> List[int]:
        """Class ids the learner can currently predict."""


@dataclass(frozen=True)
class ClassifierConfig:
    """Hyper-parameters of the classifier-head baselines."""

    hidden_dims: Tuple[int, ...] = (128, 64)
    embedding_dim: int = 32
    learning_rate: float = 0.01
    batch_size: int = 32
    max_epochs: int = 20
    early_stopping_threshold: float = 1e-4
    early_stopping_patience: int = 5
    batch_norm: bool = True
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.hidden_dims or any(h <= 0 for h in self.hidden_dims):
            raise ConfigurationError(f"hidden_dims must be positive, got {self.hidden_dims}")
        if self.embedding_dim <= 0:
            raise ConfigurationError(f"embedding_dim must be positive, got {self.embedding_dim}")
        if self.learning_rate <= 0 or self.batch_size <= 1 or self.max_epochs <= 0:
            raise ConfigurationError("learning_rate, batch_size and max_epochs must be positive")


class SoftmaxClassifier(Module):
    """Backbone MLP plus a linear classification head.

    The head can be expanded when new classes appear: existing class weights
    are preserved and new rows are initialised fresh, which is the standard
    construction used by LwF/iCaRL-style methods.
    """

    def __init__(
        self,
        input_dim: int,
        n_classes: int,
        config: Optional[ClassifierConfig] = None,
        rng: RandomState = None,
    ) -> None:
        super().__init__()
        self.config = config or ClassifierConfig()
        if input_dim <= 0 or n_classes <= 0:
            raise ConfigurationError("input_dim and n_classes must be positive")
        self.input_dim = int(input_dim)
        self.n_classes = int(n_classes)
        self._rng = resolve_rng(rng if rng is not None else self.config.seed)
        layer_sizes = (input_dim,) + tuple(self.config.hidden_dims) + (self.config.embedding_dim,)
        self.backbone: Sequential = build_mlp(
            layer_sizes,
            batch_norm=self.config.batch_norm,
            activation="relu",
            final_activation="relu",
            rng=self._rng,
        )
        self.head = Linear(self.config.embedding_dim, n_classes, rng=self._rng)

    # ------------------------------------------------------------------ #
    def forward(self, inputs) -> Tensor:
        tensor = inputs if isinstance(inputs, Tensor) else Tensor(inputs)
        return self.head(self.backbone(tensor))

    def embed(self, features: np.ndarray, batch_size: int = 512) -> np.ndarray:
        """Penultimate (backbone) representation, inference mode."""
        features = get_backend().asarray(features)
        if features.ndim == 1:
            features = features[None, :]
        was_training = self.training
        self.eval()
        chunks = []
        with no_grad():
            for start in range(0, features.shape[0], batch_size):
                chunks.append(self.backbone(Tensor(features[start:start + batch_size])).data.copy())
        if was_training:
            self.train()
        return np.concatenate(chunks, axis=0)

    def logits(self, features: np.ndarray, batch_size: int = 512) -> np.ndarray:
        """Class logits, inference mode."""
        features = get_backend().asarray(features)
        if features.ndim == 1:
            features = features[None, :]
        was_training = self.training
        self.eval()
        chunks = []
        with no_grad():
            for start in range(0, features.shape[0], batch_size):
                chunks.append(self.forward(Tensor(features[start:start + batch_size])).data.copy())
        if was_training:
            self.train()
        return np.concatenate(chunks, axis=0)

    def expand_classes(self, n_new_classes: int) -> None:
        """Grow the head by ``n_new_classes`` outputs, keeping existing weights."""
        if n_new_classes <= 0:
            raise ConfigurationError(f"n_new_classes must be positive, got {n_new_classes}")
        old_head = self.head
        new_head = Linear(
            self.config.embedding_dim, self.n_classes + n_new_classes, rng=self._rng
        )
        new_head.weight.data[:, : self.n_classes] = old_head.weight.data
        new_head.bias.data[: self.n_classes] = old_head.bias.data
        self.head = new_head
        self.n_classes += int(n_new_classes)


def train_softmax_classifier(
    model: SoftmaxClassifier,
    features: np.ndarray,
    labels: np.ndarray,
    *,
    config: ClassifierConfig,
    validation: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    extra_loss=None,
    rng: RandomState = None,
) -> TrainingHistory:
    """Train a :class:`SoftmaxClassifier` with cross-entropy (plus an optional extra term).

    ``extra_loss`` — when given — is a callable ``(model, batch_features,
    batch_labels) -> Tensor`` added to the cross-entropy of every mini-batch;
    LwF's logit distillation and EWC's quadratic penalty plug in through it.
    """
    criterion = CrossEntropyLoss()

    def batch_loss(batch_features: np.ndarray, batch_labels: np.ndarray) -> Tensor:
        logits = model(Tensor(batch_features))
        loss = criterion(logits, batch_labels)
        if extra_loss is not None:
            loss = loss + extra_loss(model, batch_features, batch_labels)
        return loss

    optimizer = Adam(model.parameters(), lr=config.learning_rate)
    trainer = Trainer(
        model,
        optimizer,
        scheduler=HalvingLR(optimizer),
        early_stopping=EarlyStopping(
            threshold=config.early_stopping_threshold,
            patience=config.early_stopping_patience,
        ),
        max_epochs=config.max_epochs,
        batch_size=config.batch_size,
        rng=rng if rng is not None else config.seed,
    )
    return trainer.fit(batch_loss, features, labels, validation=validation)


class ClassifierIncrementalLearner(IncrementalLearner):
    """Shared plumbing of the classifier-head baselines.

    Subclasses override :meth:`learn_increment`; the base class handles class
    -id remapping (class ids may be arbitrary integers while the head uses
    contiguous output indices), base training, and prediction.
    """

    name = "classifier-baseline"

    def __init__(self, config: Optional[ClassifierConfig] = None, seed: RandomState = None) -> None:
        self.config = config or ClassifierConfig()
        self._rng = resolve_rng(seed if seed is not None else self.config.seed)
        self.model: Optional[SoftmaxClassifier] = None
        self._class_order: List[int] = []

    # -- class-id mapping ------------------------------------------------ #
    @property
    def known_classes(self) -> List[int]:
        return sorted(self._class_order)

    def _to_indices(self, labels: np.ndarray) -> np.ndarray:
        mapping = {class_id: index for index, class_id in enumerate(self._class_order)}
        try:
            return np.asarray([mapping[int(label)] for label in labels], dtype=np.int64)
        except KeyError as exc:
            raise DataError(f"label {exc.args[0]} is unknown to this learner") from exc

    def _to_class_ids(self, indices: np.ndarray) -> np.ndarray:
        order = np.asarray(self._class_order, dtype=np.int64)
        return order[np.asarray(indices, dtype=np.int64)]

    # -- base phase ------------------------------------------------------ #
    def fit_base(
        self, train: HARDataset, validation: Optional[HARDataset] = None
    ) -> "ClassifierIncrementalLearner":
        self._class_order = [int(c) for c in train.classes]
        self.model = SoftmaxClassifier(
            train.n_features, len(self._class_order), config=self.config, rng=self._rng
        )
        validation_arrays = None
        if validation is not None and validation.n_samples > 1:
            validation_arrays = (validation.features, self._to_indices(validation.labels))
        train_softmax_classifier(
            self.model,
            train.features,
            self._to_indices(train.labels),
            config=self.config,
            validation=validation_arrays,
            rng=self._rng,
        )
        return self

    # -- prediction ------------------------------------------------------ #
    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.model is None:
            raise NotFittedError(f"{self.name} has not been trained")
        logits = self.model.logits(features)
        return self._to_class_ids(np.argmax(logits, axis=1))

    # -- helpers for subclasses ------------------------------------------ #
    def _register_new_classes(self, new_classes: Sequence[int]) -> None:
        fresh = [int(c) for c in new_classes if int(c) not in self._class_order]
        if not fresh:
            raise DataError("no genuinely new classes in the increment")
        if self.model is None:
            raise NotFittedError("fit_base() must run before learn_increment()")
        self.model.expand_classes(len(fresh))
        self._class_order.extend(fresh)
