"""The paper's *Pre-trained* baseline.

"The model is pre-trained on the cloud on four activities.  It is transferred
to the edge with a support set.  The model generates class prototypes for
new-class samples and enriches the support set with random new-class data."
(Section 6.1.3.)  In other words: the embedding network is never updated on
the edge; only a prototype for the new class is added to the NCM classifier.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.base import IncrementalLearner, clone_pretrained
from repro.core.config import PiloteConfig
from repro.core.pilote import PILOTE
from repro.data.dataset import HARDataset
from repro.exceptions import NotFittedError
from repro.utils.rng import RandomState


class PretrainedBaseline(IncrementalLearner):
    """Frozen pre-trained embedding + new-class prototypes (no edge training).

    Parameters
    ----------
    config:
        PILOTE configuration used if :meth:`fit_base` performs the
        pre-training itself.
    pretrained:
        An already pre-trained :class:`PILOTE` learner to start from (deep
        copied); this is how the experiment harness shares one pre-trained
        model between all compared methods.
    """

    name = "pre-trained"

    def __init__(
        self,
        config: Optional[PiloteConfig] = None,
        *,
        pretrained: Optional[PILOTE] = None,
        seed: RandomState = None,
    ) -> None:
        if pretrained is not None:
            self._learner = clone_pretrained(pretrained)
        else:
            self._learner = PILOTE(config, seed=seed)

    # ------------------------------------------------------------------ #
    @property
    def learner(self) -> PILOTE:
        """The wrapped PILOTE learner (exposed for inspection in experiments)."""
        return self._learner

    @property
    def known_classes(self) -> List[int]:
        return self._learner.classes_

    def fit_base(
        self, train: HARDataset, validation: Optional[HARDataset] = None
    ) -> "PretrainedBaseline":
        if not self._learner.is_pretrained:
            self._learner.pretrain(train, validation)
        return self

    def learn_increment(
        self, new_train: HARDataset, new_validation: Optional[HARDataset] = None
    ) -> "PretrainedBaseline":
        """Add new-class prototypes without touching the embedding network."""
        learner = self._learner
        if not learner.is_pretrained:
            raise NotFittedError("fit_base() must run before learn_increment()")
        counts = learner.exemplars.exemplars_per_class()
        budget = max(counts.values()) if counts else None
        for class_id in new_train.classes:
            rows = new_train.class_subset(int(class_id))
            embeddings = learner.model.embed(rows)
            # The paper's pre-trained strategy enriches the support set with
            # *random* new-class samples (no herding on the frozen model).
            original_strategy = learner.exemplars.strategy
            learner.exemplars.strategy = "random"
            try:
                learner.exemplars.select(int(class_id), rows, embeddings, n_exemplars=budget)
            finally:
                learner.exemplars.strategy = original_strategy
            learner._new_classes = sorted(set(learner._new_classes) | {int(class_id)})
        learner._refresh_prototypes()
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self._learner.inference_engine().predict(features)
