"""Baselines against which PILOTE is compared.

The paper's own comparison (Section 6.1.3) uses two strategies built on the
same pre-trained model:

* :class:`PretrainedBaseline` — the frozen cloud model, extended with
  new-class prototypes computed from the raw new samples;
* :class:`RetrainedBaseline` — the cloud model re-trained on the edge over the
  enriched support set, without any forgetting-mitigation term (i.e. PILOTE
  with α = 0).

For context with the related work discussed in Section 2, classifier-head
continual-learning methods are also provided: naive fine-tuning, Learning
without Forgetting (LwF), iCaRL, GDumb, EWC and the joint-training upper
bound.
"""

from repro.baselines.base import (
    ClassifierConfig,
    IncrementalLearner,
    SoftmaxClassifier,
    clone_pretrained,
)
from repro.baselines.pretrained import PretrainedBaseline
from repro.baselines.retrained import RetrainedBaseline
from repro.baselines.finetune import FineTuneBaseline
from repro.baselines.lwf import LwFBaseline
from repro.baselines.icarl import ICaRLBaseline
from repro.baselines.gdumb import GDumbBaseline
from repro.baselines.ewc import EWCBaseline
from repro.baselines.joint import JointTrainingBaseline

__all__ = [
    "IncrementalLearner",
    "SoftmaxClassifier",
    "ClassifierConfig",
    "clone_pretrained",
    "PretrainedBaseline",
    "RetrainedBaseline",
    "FineTuneBaseline",
    "LwFBaseline",
    "ICaRLBaseline",
    "GDumbBaseline",
    "EWCBaseline",
    "JointTrainingBaseline",
]
