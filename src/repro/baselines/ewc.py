"""Elastic Weight Consolidation (Kirkpatrick et al., 2017).

A regularisation-based method: after the base phase, the diagonal of the
Fisher information matrix is estimated on the old data; during the incremental
phase, parameters are anchored to their old values with a quadratic penalty
weighted by their Fisher importance.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.autodiff.tensor import Tensor
from repro.baselines.base import (
    ClassifierConfig,
    ClassifierIncrementalLearner,
    train_softmax_classifier,
)
from repro.data.dataset import HARDataset
from repro.exceptions import NotFittedError
from repro.nn.losses import CrossEntropyLoss
from repro.utils.rng import RandomState


class EWCBaseline(ClassifierIncrementalLearner):
    """Cross-entropy on new data + Fisher-weighted quadratic parameter anchoring."""

    name = "ewc"

    def __init__(
        self,
        config: Optional[ClassifierConfig] = None,
        *,
        ewc_lambda: float = 100.0,
        fisher_samples: int = 256,
        seed: RandomState = None,
    ) -> None:
        super().__init__(config, seed=seed)
        if ewc_lambda < 0:
            raise ValueError(f"ewc_lambda must be non-negative, got {ewc_lambda}")
        if fisher_samples <= 0:
            raise ValueError(f"fisher_samples must be positive, got {fisher_samples}")
        self.ewc_lambda = float(ewc_lambda)
        self.fisher_samples = int(fisher_samples)
        self._fisher: Dict[str, np.ndarray] = {}
        self._anchor: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    def fit_base(
        self, train: HARDataset, validation: Optional[HARDataset] = None
    ) -> "EWCBaseline":
        super().fit_base(train, validation)
        self._estimate_fisher(train)
        return self

    def learn_increment(
        self, new_train: HARDataset, new_validation: Optional[HARDataset] = None
    ) -> "EWCBaseline":
        if self.model is None:
            raise NotFittedError("fit_base() must run before learn_increment()")
        if not self._fisher:
            raise NotFittedError("the Fisher information has not been estimated")
        self._register_new_classes(new_train.classes)
        fisher = self._fisher
        anchor = self._anchor
        strength = self.ewc_lambda

        def extra_loss(model, batch_features: np.ndarray, batch_labels: np.ndarray) -> Tensor:
            penalty: Optional[Tensor] = None
            for name, parameter in model.named_parameters():
                if name not in fisher:
                    continue  # Newly added head columns have no anchor.
                if fisher[name].shape != parameter.data.shape:
                    continue  # The expanded head is not anchored.
                delta = parameter - Tensor(anchor[name])
                term = (Tensor(fisher[name]) * delta * delta).sum()
                penalty = term if penalty is None else penalty + term
            if penalty is None:
                return Tensor(0.0)
            return penalty * (strength / 2.0)

        validation_arrays = None
        if new_validation is not None and new_validation.n_samples > 1:
            validation_arrays = (
                new_validation.features,
                self._to_indices(new_validation.labels),
            )
        train_softmax_classifier(
            self.model,
            new_train.features,
            self._to_indices(new_train.labels),
            config=self.config,
            validation=validation_arrays,
            extra_loss=extra_loss,
            rng=self._rng,
        )
        return self

    # ------------------------------------------------------------------ #
    def _estimate_fisher(self, dataset: HARDataset) -> None:
        """Diagonal Fisher estimate from per-sample log-likelihood gradients."""
        model = self.model
        criterion = CrossEntropyLoss(reduction="sum")
        take = min(self.fisher_samples, dataset.n_samples)
        indices = self._rng.choice(dataset.n_samples, size=take, replace=False)
        accumulators = {
            name: np.zeros_like(parameter.data) for name, parameter in model.named_parameters()
        }
        model.eval()
        for index in indices:
            features = dataset.features[index:index + 1]
            labels = self._to_indices(dataset.labels[index:index + 1])
            model.zero_grad()
            loss = criterion(model(Tensor(features)), labels)
            loss.backward()
            for name, parameter in model.named_parameters():
                if parameter.grad is not None:
                    accumulators[name] += parameter.grad**2
        self._fisher = {name: value / take for name, value in accumulators.items()}
        self._anchor = {
            name: parameter.data.copy() for name, parameter in model.named_parameters()
        }
