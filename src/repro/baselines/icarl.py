"""iCaRL (Rebuffi et al., 2017): incremental classifier and representation learning.

Reproduced ingredients: herding-selected exemplar memory, representation
update with classification + distillation losses on (new data ∪ exemplars),
and nearest-mean-of-exemplars classification on the backbone representation.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional

import numpy as np

from repro.autodiff.tensor import Tensor, no_grad
from repro.baselines.base import (
    ClassifierConfig,
    ClassifierIncrementalLearner,
    train_softmax_classifier,
)
from repro.core.exemplars import ExemplarStore
from repro.core.ncm import NCMClassifier
from repro.core.prototypes import PrototypeStore
from repro.data.dataset import HARDataset
from repro.exceptions import NotFittedError
from repro.nn.losses import LogitDistillationLoss
from repro.utils.rng import RandomState


class ICaRLBaseline(ClassifierIncrementalLearner):
    """Exemplar memory + distillation + nearest-mean-of-exemplars prediction."""

    name = "icarl"

    def __init__(
        self,
        config: Optional[ClassifierConfig] = None,
        *,
        memory_size: int = 800,
        distillation_weight: float = 1.0,
        temperature: float = 2.0,
        seed: RandomState = None,
    ) -> None:
        super().__init__(config, seed=seed)
        if memory_size <= 0:
            raise ValueError(f"memory_size must be positive, got {memory_size}")
        self.memory_size = int(memory_size)
        self.distillation_weight = float(distillation_weight)
        self.temperature = float(temperature)
        self.memory = ExemplarStore(capacity=self.memory_size, strategy="herding", rng=self._rng)
        self._prototypes = PrototypeStore()
        self._ncm = NCMClassifier()

    # ------------------------------------------------------------------ #
    def fit_base(
        self, train: HARDataset, validation: Optional[HARDataset] = None
    ) -> "ICaRLBaseline":
        super().fit_base(train, validation)
        self._rebuild_memory(train)
        self._refresh_prototypes()
        return self

    def learn_increment(
        self, new_train: HARDataset, new_validation: Optional[HARDataset] = None
    ) -> "ICaRLBaseline":
        if self.model is None:
            raise NotFittedError("fit_base() must run before learn_increment()")
        old_model = copy.deepcopy(self.model)
        old_model.eval()
        n_old_outputs = old_model.n_classes
        self._register_new_classes(new_train.classes)

        memory_features, memory_labels = self.memory.as_dataset()
        combined_features = np.concatenate([memory_features, new_train.features], axis=0)
        combined_labels = np.concatenate([memory_labels, new_train.labels], axis=0)
        distillation = LogitDistillationLoss(temperature=self.temperature)

        def extra_loss(model, batch_features: np.ndarray, batch_labels: np.ndarray) -> Tensor:
            with no_grad():
                old_logits = old_model(Tensor(batch_features)).data
            new_logits = model(Tensor(batch_features))
            return distillation(
                new_logits[:, :n_old_outputs], Tensor(old_logits)
            ) * self.distillation_weight

        validation_arrays = None
        if new_validation is not None and new_validation.n_samples > 1:
            validation_arrays = (
                new_validation.features,
                self._to_indices(new_validation.labels),
            )
        train_softmax_classifier(
            self.model,
            combined_features,
            self._to_indices(combined_labels),
            config=self.config,
            validation=validation_arrays,
            extra_loss=extra_loss,
            rng=self._rng,
        )
        # Update the memory: trim old classes, add herded exemplars of new ones.
        per_class = max(self.memory_size // len(self._class_order), 1)
        self.memory.rebalance(per_class)
        for class_id in new_train.classes:
            rows = new_train.class_subset(int(class_id))
            embeddings = self.model.embed(rows)
            self.memory.select(int(class_id), rows, embeddings, n_exemplars=per_class)
        self._refresh_prototypes()
        return self

    # ------------------------------------------------------------------ #
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Nearest-mean-of-exemplars prediction (iCaRL's classification rule)."""
        if self.model is None:
            raise NotFittedError("fit_base() must run before predict()")
        embeddings = self.model.embed(features)
        return self._ncm.predict(embeddings)

    # ------------------------------------------------------------------ #
    def _rebuild_memory(self, dataset: HARDataset) -> None:
        per_class = max(self.memory_size // max(len(dataset.classes), 1), 1)
        for class_id in dataset.classes:
            rows = dataset.class_subset(int(class_id))
            embeddings = self.model.embed(rows)
            self.memory.select(int(class_id), rows, embeddings, n_exemplars=per_class)

    def _refresh_prototypes(self) -> None:
        self._prototypes = PrototypeStore()
        for class_id in self.memory.classes:
            rows = self.memory.get(class_id)
            embeddings = self.model.embed(rows)
            self._prototypes.set(class_id, embeddings.mean(axis=0))
        self._ncm = NCMClassifier().fit(self._prototypes)
