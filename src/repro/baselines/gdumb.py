"""GDumb (Prabhu et al., 2020).

GDumb greedily maintains a class-balanced memory and, at evaluation time,
simply retrains the model from scratch on the memory alone.  Despite its
simplicity it is a strong sanity-check baseline for continual learning.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.baselines.base import (
    ClassifierConfig,
    ClassifierIncrementalLearner,
    SoftmaxClassifier,
    train_softmax_classifier,
)
from repro.data.dataset import HARDataset
from repro.exceptions import NotFittedError
from repro.utils.rng import RandomState, resolve_rng


class GDumbBaseline(ClassifierIncrementalLearner):
    """Greedy class-balanced memory + retraining from scratch on the memory."""

    name = "gdumb"

    def __init__(
        self,
        config: Optional[ClassifierConfig] = None,
        *,
        memory_size: int = 800,
        seed: RandomState = None,
    ) -> None:
        super().__init__(config, seed=seed)
        if memory_size <= 0:
            raise ValueError(f"memory_size must be positive, got {memory_size}")
        self.memory_size = int(memory_size)
        self._memory: Dict[int, np.ndarray] = {}
        self._input_dim: Optional[int] = None

    # ------------------------------------------------------------------ #
    def fit_base(
        self, train: HARDataset, validation: Optional[HARDataset] = None
    ) -> "GDumbBaseline":
        self._input_dim = train.n_features
        self._class_order = [int(c) for c in train.classes]
        self._update_memory(train)
        self._retrain_from_memory()
        return self

    def learn_increment(
        self, new_train: HARDataset, new_validation: Optional[HARDataset] = None
    ) -> "GDumbBaseline":
        if self._input_dim is None:
            raise NotFittedError("fit_base() must run before learn_increment()")
        for class_id in new_train.classes:
            if int(class_id) not in self._class_order:
                self._class_order.append(int(class_id))
        self._update_memory(new_train)
        self._retrain_from_memory()
        return self

    # ------------------------------------------------------------------ #
    def _per_class_budget(self) -> int:
        return max(self.memory_size // max(len(self._class_order), 1), 1)

    def _update_memory(self, dataset: HARDataset) -> None:
        """Greedy balanced sampling: fill each class up to the per-class budget."""
        budget = self._per_class_budget()
        generator = resolve_rng(self._rng)
        for class_id in dataset.classes:
            rows = dataset.class_subset(int(class_id))
            existing = self._memory.get(int(class_id))
            if existing is not None:
                rows = np.concatenate([existing, rows], axis=0)
            if rows.shape[0] > budget:
                chosen = generator.choice(rows.shape[0], size=budget, replace=False)
                rows = rows[chosen]
            self._memory[int(class_id)] = rows
        # Re-trim previously stored classes so the total stays within budget.
        for class_id, rows in list(self._memory.items()):
            if rows.shape[0] > budget:
                self._memory[class_id] = rows[:budget]

    def _retrain_from_memory(self) -> None:
        features = np.concatenate(list(self._memory.values()), axis=0)
        labels = np.concatenate(
            [np.full(rows.shape[0], class_id, dtype=np.int64) for class_id, rows in self._memory.items()]
        )
        self.model = SoftmaxClassifier(
            self._input_dim, len(self._class_order), config=self.config, rng=self._rng
        )
        train_softmax_classifier(
            self.model,
            features,
            self._to_indices(labels),
            config=self.config,
            rng=self._rng,
        )

    def memory_counts(self) -> Dict[int, int]:
        """Number of stored samples per class (for tests and diagnostics)."""
        return {class_id: rows.shape[0] for class_id, rows in self._memory.items()}
