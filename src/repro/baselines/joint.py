"""Joint-training upper bound.

Training a fresh model on all data seen so far (old and new classes together)
is the standard continual-learning upper bound: it ignores the edge storage
constraint entirely, but bounds the accuracy achievable by any incremental
method.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.base import (
    ClassifierConfig,
    ClassifierIncrementalLearner,
    SoftmaxClassifier,
    train_softmax_classifier,
)
from repro.data.dataset import HARDataset
from repro.exceptions import NotFittedError
from repro.utils.rng import RandomState


class JointTrainingBaseline(ClassifierIncrementalLearner):
    """Retrains from scratch on the union of all data seen so far."""

    name = "joint"

    def __init__(self, config: Optional[ClassifierConfig] = None, seed: RandomState = None) -> None:
        super().__init__(config, seed=seed)
        self._seen: Optional[HARDataset] = None

    def fit_base(
        self, train: HARDataset, validation: Optional[HARDataset] = None
    ) -> "JointTrainingBaseline":
        self._seen = train
        super().fit_base(train, validation)
        return self

    def learn_increment(
        self, new_train: HARDataset, new_validation: Optional[HARDataset] = None
    ) -> "JointTrainingBaseline":
        if self._seen is None:
            raise NotFittedError("fit_base() must run before learn_increment()")
        self._seen = self._seen.merge(new_train)
        self._class_order = [int(c) for c in self._seen.classes]
        self.model = SoftmaxClassifier(
            self._seen.n_features, len(self._class_order), config=self.config, rng=self._rng
        )
        train_softmax_classifier(
            self.model,
            self._seen.features,
            self._to_indices(self._seen.labels),
            config=self.config,
            rng=self._rng,
        )
        return self
