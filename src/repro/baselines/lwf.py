"""Learning without Forgetting (Li & Hoiem, 2017).

A regularisation-based method: when learning the new classes, the old model's
(temperature-softened) predictions on the incoming data act as soft targets
for the old-class outputs, so no old data needs to be stored.
"""

from __future__ import annotations

import copy
from typing import Optional

import numpy as np

from repro.autodiff.tensor import Tensor, no_grad
from repro.baselines.base import ClassifierIncrementalLearner, train_softmax_classifier
from repro.data.dataset import HARDataset
from repro.nn.losses import LogitDistillationLoss


class LwFBaseline(ClassifierIncrementalLearner):
    """Cross-entropy on new data + logit distillation toward the previous model."""

    name = "lwf"

    def __init__(self, *args, distillation_weight: float = 1.0, temperature: float = 2.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if distillation_weight < 0:
            raise ValueError(f"distillation_weight must be non-negative, got {distillation_weight}")
        self.distillation_weight = float(distillation_weight)
        self.temperature = float(temperature)

    def learn_increment(
        self, new_train: HARDataset, new_validation: Optional[HARDataset] = None
    ) -> "LwFBaseline":
        old_model = copy.deepcopy(self.model)
        old_model.eval()
        n_old_outputs = old_model.n_classes
        self._register_new_classes(new_train.classes)
        distillation = LogitDistillationLoss(temperature=self.temperature)

        def extra_loss(model, batch_features: np.ndarray, batch_labels: np.ndarray) -> Tensor:
            with no_grad():
                old_logits = old_model(Tensor(batch_features)).data
            new_logits = model(Tensor(batch_features))
            # Only the outputs corresponding to previously known classes are distilled.
            return distillation(
                new_logits[:, :n_old_outputs], Tensor(old_logits)
            ) * self.distillation_weight

        validation_arrays = None
        if new_validation is not None and new_validation.n_samples > 1:
            validation_arrays = (
                new_validation.features,
                self._to_indices(new_validation.labels),
            )
        train_softmax_classifier(
            self.model,
            new_train.features,
            self._to_indices(new_train.labels),
            config=self.config,
            validation=validation_arrays,
            extra_loss=extra_loss,
            rng=self._rng,
        )
        return self
