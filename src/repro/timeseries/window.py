"""Segmentation of continuous sensor streams into fixed-length windows.

The paper splits the sensory data into one-second recording windows of roughly
120 sequential measurements across 22 sensors.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import DataError, ShapeError
from repro.utils.validation import check_array


def segment_windows(
    stream: np.ndarray,
    window_length: int,
    *,
    drop_last: bool = True,
) -> np.ndarray:
    """Split a ``(time, channels)`` stream into non-overlapping windows.

    Parameters
    ----------
    stream:
        Continuous recording of shape ``(time, channels)``.
    window_length:
        Number of consecutive measurements per window (≈ 120 at 120 Hz for the
        one-second windows used by the paper).
    drop_last:
        Drop the final, incomplete window (default) instead of raising.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n_windows, window_length, channels)``.
    """
    stream = check_array(stream, name="stream", ndim=2)
    if window_length <= 0:
        raise DataError(f"window_length must be positive, got {window_length}")
    total = stream.shape[0]
    n_windows = total // window_length
    if n_windows == 0:
        raise DataError(
            f"stream of length {total} is shorter than one window ({window_length})"
        )
    if not drop_last and total % window_length != 0:
        raise DataError(
            f"stream length {total} is not a multiple of window_length {window_length}"
        )
    usable = n_windows * window_length
    return stream[:usable].reshape(n_windows, window_length, stream.shape[1])


def sliding_windows(
    stream: np.ndarray,
    window_length: int,
    step: int,
) -> np.ndarray:
    """Split a ``(time, channels)`` stream into overlapping windows with ``step`` stride."""
    stream = check_array(stream, name="stream", ndim=2)
    if window_length <= 0 or step <= 0:
        raise DataError(
            f"window_length and step must be positive, got {window_length} and {step}"
        )
    total = stream.shape[0]
    if total < window_length:
        raise DataError(
            f"stream of length {total} is shorter than one window ({window_length})"
        )
    starts = range(0, total - window_length + 1, step)
    return np.stack([stream[s:s + window_length] for s in starts], axis=0)


def windows_per_second(sampling_rate_hz: float, window_seconds: float = 1.0) -> int:
    """Number of measurements in a window of ``window_seconds`` at a sampling rate."""
    if sampling_rate_hz <= 0 or window_seconds <= 0:
        raise DataError("sampling rate and window duration must be positive")
    return int(round(sampling_rate_hz * window_seconds))


def validate_window_batch(windows: np.ndarray) -> Tuple[int, int, int]:
    """Check a ``(n_windows, window_length, channels)`` batch and return its shape."""
    windows = np.asarray(windows)
    if windows.ndim != 3:
        raise ShapeError(
            f"expected a 3-D (windows, time, channels) array, got shape {windows.shape}"
        )
    return windows.shape
