"""Normalisation utilities for sensor streams and feature matrices."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.validation import check_array


def z_score(
    values: np.ndarray,
    *,
    mean: Optional[np.ndarray] = None,
    std: Optional[np.ndarray] = None,
    epsilon: float = 1e-8,
    return_stats: bool = False,
):
    """Standardise columns to zero mean / unit variance.

    When ``mean``/``std`` are provided they are used instead of the input's own
    statistics — this is how edge-side data reuses the normalisation fitted on
    the cloud.
    """
    values = check_array(values, name="values")
    if mean is None:
        mean = values.mean(axis=0)
    if std is None:
        std = values.std(axis=0)
    std_safe = np.where(np.asarray(std) < epsilon, 1.0, std)
    normalised = (values - mean) / std_safe
    if return_stats:
        return normalised, np.asarray(mean), np.asarray(std)
    return normalised


def min_max_scale(
    values: np.ndarray,
    *,
    minimum: Optional[np.ndarray] = None,
    maximum: Optional[np.ndarray] = None,
    feature_range: Tuple[float, float] = (0.0, 1.0),
    epsilon: float = 1e-12,
) -> np.ndarray:
    """Scale columns into ``feature_range`` (default [0, 1])."""
    values = check_array(values, name="values")
    low, high = feature_range
    if high <= low:
        raise ValueError(f"feature_range must be increasing, got {feature_range}")
    if minimum is None:
        minimum = values.min(axis=0)
    if maximum is None:
        maximum = values.max(axis=0)
    span = np.asarray(maximum) - np.asarray(minimum)
    span = np.where(span < epsilon, 1.0, span)
    unit = (values - minimum) / span
    return unit * (high - low) + low


def per_window_normalize(windows: np.ndarray, epsilon: float = 1e-8) -> np.ndarray:
    """Z-score each window independently along its time axis.

    Input shape ``(n_windows, window_length, channels)``; output has the same
    shape.  Constant channels within a window map to zero.
    """
    windows = check_array(windows, name="windows", ndim=3)
    mean = windows.mean(axis=1, keepdims=True)
    std = windows.std(axis=1, keepdims=True)
    std = np.where(std < epsilon, 1.0, std)
    return (windows - mean) / std


class StandardScaler:
    """Fit/transform wrapper around :func:`z_score` for pipeline use."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, values: np.ndarray) -> "StandardScaler":
        values = check_array(values, name="values", ndim=2)
        self.mean_ = values.mean(axis=0)
        self.std_ = values.std(axis=0)
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("StandardScaler must be fitted before transform()")
        return z_score(values, mean=self.mean_, std=self.std_)

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)
