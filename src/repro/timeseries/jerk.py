"""Jerk (time derivative) computation.

The paper's 80-dimensional feature vector includes "the average jerk, and the
variance of the jerk for each three-dimensional feature sensor"; jerk here is
the discrete time derivative of a sensor signal scaled by the sampling rate.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError
from repro.utils.validation import check_array


def jerk(values: np.ndarray, sampling_rate_hz: float = 1.0) -> np.ndarray:
    """First-order difference along the time axis, scaled to physical units.

    Accepts ``(time,)``, ``(time, channels)`` or ``(windows, time, channels)``
    arrays; the output is one sample shorter along the time axis.
    """
    values = check_array(values, name="values")
    if sampling_rate_hz <= 0:
        raise DataError(f"sampling_rate_hz must be positive, got {sampling_rate_hz}")
    if values.ndim == 1:
        return np.diff(values) * sampling_rate_hz
    if values.ndim == 2:
        return np.diff(values, axis=0) * sampling_rate_hz
    if values.ndim == 3:
        return np.diff(values, axis=1) * sampling_rate_hz
    raise DataError(f"jerk expects 1-D, 2-D or 3-D input, got {values.ndim}-D")


def jerk_magnitude(triaxial: np.ndarray, sampling_rate_hz: float = 1.0) -> np.ndarray:
    """Euclidean norm of the jerk of a three-axis sensor.

    ``triaxial`` has shape ``(time, 3)`` (or ``(windows, time, 3)``); the result
    drops the axis dimension.
    """
    triaxial = check_array(triaxial, name="triaxial")
    if triaxial.shape[-1] != 3:
        raise DataError(f"expected a 3-axis signal on the last dimension, got {triaxial.shape}")
    derivative = jerk(triaxial, sampling_rate_hz=sampling_rate_hz)
    return np.linalg.norm(derivative, axis=-1)
