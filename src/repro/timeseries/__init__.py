"""Multivariate time-series preprocessing.

The paper's preprocessing pipeline (Section 5, Figure 3) — denoising,
segmentation into one-second windows and normalisation — is implemented here
with linear-time operations so that it can run identically on the cloud and on
the edge device.
"""

from repro.timeseries.window import segment_windows, sliding_windows
from repro.timeseries.denoise import denoise, low_pass_filter, median_filter, moving_average
from repro.timeseries.normalize import min_max_scale, per_window_normalize, z_score
from repro.timeseries.jerk import jerk, jerk_magnitude
from repro.timeseries.resample import linear_resample

__all__ = [
    "segment_windows",
    "sliding_windows",
    "denoise",
    "moving_average",
    "median_filter",
    "low_pass_filter",
    "z_score",
    "min_max_scale",
    "per_window_normalize",
    "jerk",
    "jerk_magnitude",
    "linear_resample",
]
