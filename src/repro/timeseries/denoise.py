"""Denoising filters for raw sensor streams (linear-time operations)."""

from __future__ import annotations

import numpy as np
from scipy import signal as _signal

from repro.exceptions import DataError
from repro.utils.validation import check_array


def moving_average(stream: np.ndarray, window: int = 5) -> np.ndarray:
    """Centered moving-average filter applied per channel.

    Edges are handled with reflective padding so the output keeps the input
    length.
    """
    stream = check_array(stream, name="stream")
    if window <= 0:
        raise DataError(f"window must be positive, got {window}")
    if window == 1:
        return stream.copy()
    original_ndim = stream.ndim
    if original_ndim == 1:
        stream = stream[:, None]
    kernel = np.ones(window) / window
    pad = window // 2
    padded = np.pad(stream, ((pad, window - 1 - pad), (0, 0)), mode="reflect")
    smoothed = np.stack(
        [np.convolve(padded[:, c], kernel, mode="valid") for c in range(stream.shape[1])],
        axis=1,
    )
    return smoothed[:, 0] if original_ndim == 1 else smoothed


def median_filter(stream: np.ndarray, window: int = 5) -> np.ndarray:
    """Median filter per channel (robust to impulsive sensor glitches)."""
    stream = check_array(stream, name="stream")
    if window <= 0:
        raise DataError(f"window must be positive, got {window}")
    if window % 2 == 0:
        window += 1  # scipy requires an odd kernel size
    original_ndim = stream.ndim
    if original_ndim == 1:
        stream = stream[:, None]
    filtered = np.stack(
        [_signal.medfilt(stream[:, c], kernel_size=window) for c in range(stream.shape[1])],
        axis=1,
    )
    return filtered[:, 0] if original_ndim == 1 else filtered


def low_pass_filter(
    stream: np.ndarray,
    cutoff_hz: float,
    sampling_rate_hz: float,
    order: int = 4,
) -> np.ndarray:
    """Zero-phase Butterworth low-pass filter per channel."""
    stream = check_array(stream, name="stream")
    if cutoff_hz <= 0 or sampling_rate_hz <= 0:
        raise DataError("cutoff and sampling rate must be positive")
    nyquist = sampling_rate_hz / 2.0
    if cutoff_hz >= nyquist:
        raise DataError(
            f"cutoff {cutoff_hz} Hz must be below the Nyquist frequency {nyquist} Hz"
        )
    b, a = _signal.butter(order, cutoff_hz / nyquist, btype="low")
    return _signal.filtfilt(b, a, stream, axis=0)


def denoise(
    stream: np.ndarray,
    method: str = "moving_average",
    **kwargs,
) -> np.ndarray:
    """Dispatch to one of the denoising filters by name.

    ``method`` is one of ``"moving_average"``, ``"median"``, ``"low_pass"`` or
    ``"none"``.
    """
    methods = {
        "moving_average": moving_average,
        "median": median_filter,
        "low_pass": low_pass_filter,
        "none": lambda s, **_: check_array(s, name="stream").copy(),
    }
    if method not in methods:
        raise DataError(f"unknown denoising method {method!r}; choose from {sorted(methods)}")
    return methods[method](stream, **kwargs)
