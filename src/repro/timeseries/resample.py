"""Resampling of sensor streams to a common rate."""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError
from repro.utils.validation import check_array


def linear_resample(stream: np.ndarray, target_length: int) -> np.ndarray:
    """Linearly interpolate a ``(time, channels)`` stream to ``target_length`` samples.

    Used to align sensors reporting at slightly different rates onto the
    nominal 120 Hz grid before windowing.
    """
    stream = check_array(stream, name="stream")
    if target_length <= 1:
        raise DataError(f"target_length must be at least 2, got {target_length}")
    original_ndim = stream.ndim
    if original_ndim == 1:
        stream = stream[:, None]
    source_length = stream.shape[0]
    if source_length < 2:
        raise DataError("stream must contain at least two samples to resample")
    source_positions = np.linspace(0.0, 1.0, source_length)
    target_positions = np.linspace(0.0, 1.0, target_length)
    resampled = np.stack(
        [
            np.interp(target_positions, source_positions, stream[:, channel])
            for channel in range(stream.shape[1])
        ],
        axis=1,
    )
    return resampled[:, 0] if original_ndim == 1 else resampled


def resample_to_rate(
    stream: np.ndarray, source_rate_hz: float, target_rate_hz: float
) -> np.ndarray:
    """Resample a stream recorded at ``source_rate_hz`` to ``target_rate_hz``."""
    if source_rate_hz <= 0 or target_rate_hz <= 0:
        raise DataError("sampling rates must be positive")
    stream = check_array(stream, name="stream")
    length = stream.shape[0]
    target_length = max(int(round(length * target_rate_hz / source_rate_hz)), 2)
    return linear_resample(stream, target_length)
