"""The paper's evaluation protocol: repeated rounds with mean ± standard deviation.

"We execute each model in five rounds and report the average accuracy and the
standard deviations."  :class:`RepeatedRounds` runs an arbitrary round function
with independent random streams and aggregates whatever scalar quantities it
returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Union

import numpy as np

from repro.exceptions import DataError
from repro.utils.rng import RandomState, spawn_rngs


@dataclass(frozen=True)
class AggregateResult:
    """Mean ± std of a repeated measurement."""

    mean: float
    std: float
    values: tuple

    @property
    def n_rounds(self) -> int:
        return len(self.values)

    def __str__(self) -> str:  # e.g. "0.9372 ±0.0319" as in the paper's Table 2
        return f"{self.mean:.4f} ±{self.std:.4f}"


def aggregate_values(values: Sequence[float]) -> AggregateResult:
    """Aggregate a sequence of scalars into mean/std (population std, like the paper)."""
    values = [float(v) for v in values]
    if not values:
        raise DataError("cannot aggregate an empty sequence")
    array = np.asarray(values, dtype=np.float64)
    return AggregateResult(mean=float(array.mean()), std=float(array.std()), values=tuple(values))


RoundFn = Callable[[np.random.Generator, int], Union[float, Dict[str, float]]]


class RepeatedRounds:
    """Run a round function ``n_rounds`` times with independent seeds and aggregate.

    The round function receives ``(rng, round_index)`` and returns either a
    scalar or a ``{name: value}`` dictionary; dictionaries are aggregated key
    by key.
    """

    def __init__(self, n_rounds: int = 5, seed: RandomState = None) -> None:
        if n_rounds <= 0:
            raise DataError(f"n_rounds must be positive, got {n_rounds}")
        self.n_rounds = int(n_rounds)
        self.seed = seed

    def run(self, round_fn: RoundFn) -> Dict[str, AggregateResult]:
        """Execute all rounds and aggregate the returned quantities."""
        rngs = spawn_rngs(self.seed, self.n_rounds)
        collected: Dict[str, List[float]] = {}
        for round_index, rng in enumerate(rngs):
            outcome = round_fn(rng, round_index)
            if isinstance(outcome, dict):
                items = outcome.items()
            else:
                items = [("value", float(outcome))]
            for key, value in items:
                collected.setdefault(key, []).append(float(value))
        return {key: aggregate_values(values) for key, values in collected.items()}
