"""Named scenario definitions for every table and figure of the paper.

Each definition records the workload parameters of one experiment so the
benchmark harness, the examples and EXPERIMENTS.md all refer to a single
source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.activities import Activity


@dataclass(frozen=True)
class ScenarioSpec:
    """Description of one experiment (table or figure) of the paper."""

    experiment_id: str
    description: str
    new_classes: Tuple[Activity, ...]
    exemplars_per_class: Optional[int] = 200
    new_class_samples: Optional[int] = None
    exemplar_strategies: Tuple[str, ...] = ("herding",)
    sweep_name: Optional[str] = None
    sweep_values: Tuple[int, ...] = ()


#: Table 2 — one scenario per held-out activity, 200 exemplars per class.
TABLE2_SCENARIOS: Tuple[ScenarioSpec, ...] = tuple(
    ScenarioSpec(
        experiment_id="table2",
        description=f"Accuracy with '{activity.display_name}' as the new class",
        new_classes=(activity,),
        exemplars_per_class=200,
    )
    for activity in Activity
)

#: Figure 4 — confusion matrices for the Run scenario.
FIGURE4_SCENARIO = ScenarioSpec(
    experiment_id="figure4",
    description="Confusion matrices, new class 'Run', 200 exemplars per class",
    new_classes=(Activity.RUN,),
    exemplars_per_class=200,
)

#: Figure 5 — embedding-space visualisation for the Run scenario.
FIGURE5_SCENARIO = ScenarioSpec(
    experiment_id="figure5",
    description="Embedding-space separation, new class 'Run', 200 representative exemplars",
    new_classes=(Activity.RUN,),
    exemplars_per_class=200,
)

#: Figure 6 — accuracy vs. support-set size, representative vs. random exemplars.
FIGURE6_SCENARIO = ScenarioSpec(
    experiment_id="figure6",
    description="Accuracy vs. exemplars per class (Run held out), herding vs. random",
    new_classes=(Activity.RUN,),
    exemplar_strategies=("herding", "random"),
    sweep_name="exemplars_per_class",
    sweep_values=(10, 25, 50, 100, 200, 350, 500),
)

#: Figure 7 — accuracy vs. number of new-class exemplars (extreme edge).
FIGURE7_SCENARIO = ScenarioSpec(
    experiment_id="figure7",
    description="Accuracy vs. new-class ('Run') exemplar count, 200 old-class exemplars",
    new_classes=(Activity.RUN,),
    exemplars_per_class=200,
    sweep_name="new_class_samples",
    sweep_values=(10, 25, 50, 75, 100, 150, 200),
)


@dataclass(frozen=True)
class FleetScenarioSpec:
    """A fleet-level serving scenario (beyond the paper's single device).

    One cloud broadcast is deployed to ``n_devices`` edge devices; an
    open-loop traffic stream is sharded across them by user id, and each
    device integrates the held-out activity at its own staggered tick with
    its own share of the new-class data.  The reported quantity is the
    per-device accuracy divergence after the staggered increments, alongside
    the fleet's routing statistics.
    """

    experiment_id: str
    description: str
    n_devices: int
    new_classes: Tuple[Activity, ...]
    traffic_pattern: str = "zipf"
    n_users: int = 512
    requests_per_tick: int = 128
    n_ticks: int = 12
    stagger_start_tick: int = 1
    stagger_spacing_ticks: int = 1
    min_increment_fraction: float = 0.4
    #: Serving-client routing policy ("hash", "least-loaded" or "p2c");
    #: overridable from the CLI via ``pilote fleet-sim --routing ...``.
    routing_policy: str = "hash"


#: Fleet simulation — 8 devices, Zipf-skewed users, staggered 'Run' arrival.
FLEET_SCENARIO = FleetScenarioSpec(
    experiment_id="fleet",
    description="8-device fleet, Zipf traffic, staggered arrival of 'Run'",
    n_devices=8,
    new_classes=(Activity.RUN,),
)


def all_scenarios() -> Dict[str, Sequence[object]]:
    """Every experiment id mapped to its scenario definitions."""
    return {
        "table2": TABLE2_SCENARIOS,
        "figure4": (FIGURE4_SCENARIO,),
        "figure5": (FIGURE5_SCENARIO,),
        "figure6": (FIGURE6_SCENARIO,),
        "figure7": (FIGURE7_SCENARIO,),
        "fleet": (FLEET_SCENARIO,),
    }
