"""Evaluation harness: the paper's repeated-rounds protocol, scenario runners and result tables."""

from repro.evaluation.protocol import AggregateResult, RepeatedRounds, aggregate_values
from repro.evaluation.results import MethodResult, ResultTable
from repro.evaluation.runner import ComparisonResult, ExperimentRunner

__all__ = [
    "RepeatedRounds",
    "AggregateResult",
    "aggregate_values",
    "ResultTable",
    "MethodResult",
    "ExperimentRunner",
    "ComparisonResult",
]
