"""Scenario runner: pre-train once, compare methods that share the warm start.

The paper compares the *Pre-trained*, *Re-trained* and *PILOTE* strategies,
all built "based on the same pre-trained model" (Section 6.2).  The
:class:`ExperimentRunner` reproduces that protocol for one scenario (one
held-out new activity) and returns per-method accuracies, predictions and the
learners themselves so downstream experiments can inspect embeddings or
confusion matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.base import clone_pretrained
from repro.baselines.pretrained import PretrainedBaseline
from repro.baselines.retrained import RetrainedBaseline
from repro.core.config import PiloteConfig
from repro.core.pilote import PILOTE
from repro.data.dataset import HARDataset
from repro.data.streams import IncrementalScenario, build_incremental_scenario
from repro.evaluation.results import MethodResult
from repro.exceptions import ConfigurationError
from repro.metrics.classification import accuracy
from repro.utils.rng import RandomState, resolve_rng

#: Methods compared in the paper's experiments.
PAPER_METHODS = ("pre-trained", "re-trained", "pilote")


@dataclass
class ComparisonResult:
    """Per-method outcomes of one scenario run."""

    scenario: IncrementalScenario
    methods: Dict[str, MethodResult]
    pretrained_learner: Optional[PILOTE] = None
    learners: Dict[str, PILOTE] = field(default_factory=dict)

    def accuracy_of(self, method: str) -> float:
        return self.methods[method].accuracy

    def summary(self) -> Dict[str, float]:
        return {name: result.accuracy for name, result in self.methods.items()}


class ExperimentRunner:
    """Runs the paper's three-way comparison for one incremental scenario."""

    def __init__(
        self,
        config: Optional[PiloteConfig] = None,
        *,
        methods: Sequence[str] = PAPER_METHODS,
        keep_learners: bool = False,
    ) -> None:
        self.config = config or PiloteConfig()
        unknown = set(methods) - set(PAPER_METHODS)
        if unknown:
            raise ConfigurationError(
                f"unknown methods {sorted(unknown)}; supported: {PAPER_METHODS}"
            )
        self.methods = tuple(methods)
        self.keep_learners = bool(keep_learners)

    # ------------------------------------------------------------------ #
    def pretrain(
        self,
        scenario: IncrementalScenario,
        *,
        exemplars_per_class: Optional[int] = None,
        exemplar_strategy: Optional[str] = None,
        rng: RandomState = None,
    ) -> PILOTE:
        """Cloud pre-training on the scenario's old classes."""
        config = self.config
        if exemplar_strategy is not None:
            config = config.with_overrides(exemplar_strategy=exemplar_strategy)
        learner = PILOTE(config, seed=resolve_rng(rng))
        learner.pretrain(
            scenario.old_train,
            scenario.old_validation,
            exemplars_per_class=exemplars_per_class,
        )
        return learner

    def compare(
        self,
        scenario: IncrementalScenario,
        *,
        pretrained: Optional[PILOTE] = None,
        exemplars_per_class: Optional[int] = None,
        exemplar_strategy: Optional[str] = None,
        new_class_samples: Optional[int] = None,
        rng: RandomState = None,
    ) -> ComparisonResult:
        """Run the requested methods on one scenario and score them on the test set.

        Parameters
        ----------
        scenario:
            The incremental scenario (old/new splits plus the full test set).
        pretrained:
            An existing pre-trained learner to share; pre-training is run here
            when omitted.
        exemplars_per_class:
            Support-set size per old class (Figure 6's x axis).
        exemplar_strategy:
            ``"herding"`` (representative) or ``"random"`` exemplars.
        new_class_samples:
            Cap on the number of new-class samples available on the edge
            (Figure 7's x axis).
        """
        generator = resolve_rng(rng)
        if pretrained is None:
            pretrained = self.pretrain(
                scenario,
                exemplars_per_class=exemplars_per_class,
                exemplar_strategy=exemplar_strategy,
                rng=generator,
            )
        elif exemplars_per_class is not None or exemplar_strategy is not None:
            pretrained = clone_pretrained(pretrained)
            pretrained.build_support_set(
                per_class=exemplars_per_class, strategy=exemplar_strategy
            )

        new_train = scenario.new_train
        if new_class_samples is not None:
            new_train = new_train.subsample(new_class_samples, per_class=True, rng=generator)
        new_validation = scenario.new_validation
        test = scenario.test

        results: Dict[str, MethodResult] = {}
        learners: Dict[str, PILOTE] = {}

        if "pre-trained" in self.methods:
            baseline = PretrainedBaseline(pretrained=pretrained)
            baseline.learn_increment(new_train)
            predictions = baseline.predict(test.features)
            results["pre-trained"] = MethodResult(
                method="pre-trained",
                accuracy=accuracy(test.labels, predictions),
                predictions=predictions,
            )
            if self.keep_learners:
                learners["pre-trained"] = baseline.learner

        if "re-trained" in self.methods:
            baseline = RetrainedBaseline(pretrained=pretrained)
            baseline.learn_increment(new_train, new_validation)
            predictions = baseline.predict(test.features)
            results["re-trained"] = MethodResult(
                method="re-trained",
                accuracy=accuracy(test.labels, predictions),
                predictions=predictions,
            )
            if self.keep_learners:
                learners["re-trained"] = baseline.learner

        if "pilote" in self.methods:
            learner = clone_pretrained(pretrained)
            learner.learn_new_classes(new_train, new_validation)
            # Test-set scoring goes through the batched serving engine — the
            # same path the deployed edge device uses.
            predictions = learner.inference_engine().predict(test.features)
            results["pilote"] = MethodResult(
                method="pilote",
                accuracy=accuracy(test.labels, predictions),
                predictions=predictions,
            )
            if self.keep_learners:
                learners["pilote"] = learner

        return ComparisonResult(
            scenario=scenario,
            methods=results,
            pretrained_learner=pretrained if self.keep_learners else None,
            learners=learners,
        )

    # ------------------------------------------------------------------ #
    def run_scenario(
        self,
        dataset: HARDataset,
        new_class: int,
        *,
        exemplars_per_class: Optional[int] = None,
        exemplar_strategy: Optional[str] = None,
        new_class_samples: Optional[int] = None,
        rng: RandomState = None,
    ) -> ComparisonResult:
        """Convenience wrapper: build the scenario from a dataset, then compare."""
        generator = resolve_rng(rng)
        scenario = build_incremental_scenario(dataset, [int(new_class)], rng=generator)
        return self.compare(
            scenario,
            exemplars_per_class=exemplars_per_class,
            exemplar_strategy=exemplar_strategy,
            new_class_samples=new_class_samples,
            rng=generator,
        )
